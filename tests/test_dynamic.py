"""Tests for the versioned mutation layer and incremental index repair.

Covers ``GraphDelta``/``apply_delta`` semantics (validation, copy-on-write
adoption, lineage fingerprints), the PowCov repair paths (decrease-only
insertion repair, dirty-landmark re-sweeps for deletions/relabels, all
three storage layouts), ChromLand per-sweep repair (undirected and
directed), the differential harness itself, and a hypothesis-driven
randomized mutation-sequence check asserting bit-identity with a
from-scratch rebuild after every delta — the PR's acceptance bar.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ChromLandIndex, PowCovIndex
from repro.core.dynamic import (
    RepairStats,
    assert_repair_matches_rebuild,
    rebuild_reference,
    repair_chromland,
    repair_index,
    repair_powcov,
)
from repro.engine import QuerySession, execute_batch
from repro.graph.delta import GraphDelta, apply_delta
from repro.graph.fingerprint import delta_fingerprint, graph_fingerprint
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import full_mask

DYNAMIC = settings(
    max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "10")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def undirected_edge_set(graph: EdgeLabeledGraph) -> set[tuple[int, int, int]]:
    """The ``(u < v, label)`` edge set of an undirected graph."""
    edges = set()
    for u in range(graph.num_vertices):
        for neighbor, label in zip(graph.neighbors_of(u), graph.labels_of(u)):
            if u < int(neighbor):
                edges.add((u, int(neighbor), int(label)))
    return edges


def sample_queries(
    graph: EdgeLabeledGraph, count: int = 30, seed: int = 0
) -> list[tuple[int, int, int]]:
    rng = np.random.default_rng(seed)
    top = full_mask(graph.num_labels)
    return [
        (
            int(rng.integers(graph.num_vertices)),
            int(rng.integers(graph.num_vertices)),
            1 + int(rng.integers(top)),
        )
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def base_graph() -> EdgeLabeledGraph:
    return labeled_erdos_renyi(40, 110, num_labels=4, seed=11)


@pytest.fixture(scope="module")
def landmarks(base_graph) -> list[int]:
    from repro.landmarks import select_landmarks

    return select_landmarks(base_graph, 4, strategy="greedy-mvc", seed=1)


# ----------------------------------------------------------------------
# GraphDelta / apply_delta semantics
# ----------------------------------------------------------------------
class TestGraphDelta:
    def test_insertion_versions_and_parent_untouched(self, base_graph):
        edges_before = undirected_edge_set(base_graph)
        missing = next(
            (u, v, 0)
            for u in range(base_graph.num_vertices)
            for v in range(u + 1, base_graph.num_vertices)
            if (u, v, 0) not in edges_before
        )
        delta = GraphDelta(insertions=(missing,))
        child = apply_delta(base_graph, delta)
        assert child.version == base_graph.version + 1
        assert child.parent_fingerprint == graph_fingerprint(base_graph)
        assert child.applied_delta is delta
        assert child.num_edges == base_graph.num_edges + 1
        assert undirected_edge_set(child) == edges_before | {missing}
        # The parent is untouched.
        assert undirected_edge_set(base_graph) == edges_before
        assert base_graph.applied_delta is None

    def test_deletion_and_relabel(self, base_graph):
        u, v, label = min(undirected_edge_set(base_graph))
        removed = apply_delta(base_graph, GraphDelta(deletions=((u, v, label),)))
        assert removed.num_edges == base_graph.num_edges - 1
        assert (u, v, label) not in undirected_edge_set(removed)

        new_label = (label + 1) % base_graph.num_labels
        relabeled = apply_delta(
            base_graph, GraphDelta(relabels=((u, v, label, new_label),))
        )
        edges = undirected_edge_set(relabeled)
        assert (u, v, label) not in edges
        assert (u, v, new_label) in edges

    def test_relabel_only_shares_csr_zero_copy(self, base_graph):
        u, v, label = min(undirected_edge_set(base_graph))
        new_label = (label + 1) % base_graph.num_labels
        child = apply_delta(
            base_graph, GraphDelta(relabels=((u, v, label, new_label),))
        )
        assert child.indptr is base_graph.indptr
        assert child.neighbors is base_graph.neighbors
        assert child.edge_labels is not base_graph.edge_labels

    def test_apply_edges_convenience_matches_apply_delta(self, base_graph):
        u, v, label = min(undirected_edge_set(base_graph))
        via_method = base_graph.apply_edges(deletions=[(u, v, label)])
        via_delta = apply_delta(
            base_graph, GraphDelta(deletions=((u, v, label),))
        )
        assert graph_fingerprint(via_method) == graph_fingerprint(via_delta)
        assert undirected_edge_set(via_method) == undirected_edge_set(via_delta)

    def test_validation_errors(self, base_graph):
        u, v, label = min(undirected_edge_set(base_graph))
        with pytest.raises(ValueError, match="already exists"):
            apply_delta(base_graph, GraphDelta(insertions=((u, v, label),)))
        with pytest.raises(ValueError, match="does not exist"):
            apply_delta(base_graph, GraphDelta(deletions=((u, v, label + 1),)))
        with pytest.raises(ValueError, match="self-loop"):
            apply_delta(base_graph, GraphDelta(insertions=((3, 3, 0),)))
        with pytest.raises(ValueError, match="out of range"):
            apply_delta(base_graph, GraphDelta(insertions=((0, 10_000, 0),)))
        with pytest.raises(ValueError, match="same label"):
            apply_delta(base_graph, GraphDelta(relabels=((u, v, label, label),)))
        with pytest.raises(ValueError, match="more than once"):
            apply_delta(
                base_graph,
                GraphDelta(
                    deletions=((u, v, label),),
                    insertions=((u, v, (label + 1) % base_graph.num_labels),),
                ),
            )

    def test_lineage_fingerprint_is_deterministic_and_discriminating(
        self, base_graph
    ):
        u, v, label = min(undirected_edge_set(base_graph))
        delta = GraphDelta(deletions=((u, v, label),))
        once = apply_delta(base_graph, delta)
        twice = apply_delta(base_graph, delta)
        assert graph_fingerprint(once) == graph_fingerprint(twice)
        assert graph_fingerprint(once) == delta_fingerprint(
            graph_fingerprint(base_graph), delta
        )
        assert graph_fingerprint(once) != graph_fingerprint(base_graph)
        other = apply_delta(
            base_graph,
            GraphDelta(relabels=((u, v, label, (label + 1) % 4),)),
        )
        assert graph_fingerprint(other) != graph_fingerprint(once)

    def test_touched_label_mask(self):
        delta = GraphDelta(
            insertions=((0, 1, 0),),
            deletions=((2, 3, 1),),
            relabels=((4, 5, 2, 3),),
        )
        assert delta.touched_label_mask() == 0b1111
        assert delta.num_ops == 3
        assert not delta.is_empty
        assert GraphDelta().is_empty


# ----------------------------------------------------------------------
# PowCov repair
# ----------------------------------------------------------------------
class TestPowCovRepair:
    @pytest.mark.parametrize("storage", ["flat", "packed", "trie"])
    def test_insertion_repair_matches_rebuild(
        self, base_graph, landmarks, storage
    ):
        index = PowCovIndex(base_graph, landmarks, storage=storage).build()
        missing = next(
            (u, v, 1)
            for u in range(base_graph.num_vertices)
            for v in range(u + 1, base_graph.num_vertices)
            if (u, v, 1) not in undirected_edge_set(base_graph)
        )
        new_graph = apply_delta(base_graph, GraphDelta(insertions=(missing,)))
        stats = repair_powcov(index, new_graph)
        assert index.graph is new_graph
        assert stats.kind == "powcov"
        assert not stats.full_rebuild
        assert_repair_matches_rebuild(index, queries=sample_queries(new_graph))

    def test_insertion_repair_lazy_fallback_matches_rebuild(
        self, base_graph, landmarks, monkeypatch
    ):
        # Force the stacked subset-min lattice over its memory budget so
        # the repair takes the lazy per-mask reconstruction path instead;
        # the answers must be bit-identical either way.
        import repro.core.dynamic as dynamic

        monkeypatch.setattr(dynamic, "_SOS_TABLE_CELLS", 0)
        index = PowCovIndex(base_graph, landmarks).build()
        missing = next(
            (u, v, 1)
            for u in range(base_graph.num_vertices)
            for v in range(u + 1, base_graph.num_vertices)
            if (u, v, 1) not in undirected_edge_set(base_graph)
        )
        new_graph = apply_delta(base_graph, GraphDelta(insertions=(missing,)))
        stats = repair_powcov(index, new_graph)
        assert stats.landmarks_repaired >= 1
        assert_repair_matches_rebuild(index, queries=sample_queries(new_graph))

    def test_deletion_triggers_resweep_and_matches_rebuild(
        self, base_graph, landmarks
    ):
        index = PowCovIndex(base_graph, landmarks).build()
        u, v, label = min(undirected_edge_set(base_graph))
        new_graph = apply_delta(
            base_graph, GraphDelta(deletions=((u, v, label),))
        )
        stats = repair_powcov(index, new_graph)
        assert stats.landmarks_clean + stats.landmarks_repaired + (
            stats.landmarks_resweep
        ) == len(landmarks)
        assert_repair_matches_rebuild(index, queries=sample_queries(new_graph))

    def test_multi_op_delta_matches_rebuild(self, base_graph, landmarks):
        index = PowCovIndex(base_graph, landmarks).build()
        edges = sorted(undirected_edge_set(base_graph))
        (du, dv, dl), (ru, rv, rl) = edges[0], edges[1]
        missing = next(
            (u, v, 2)
            for u in range(base_graph.num_vertices)
            for v in range(u + 1, base_graph.num_vertices)
            if (u, v, 2) not in undirected_edge_set(base_graph)
            and (u, v) not in {(du, dv), (ru, rv)}
        )
        new_graph = apply_delta(
            base_graph,
            GraphDelta(
                insertions=(missing,),
                deletions=((du, dv, dl),),
                relabels=((ru, rv, rl, (rl + 1) % base_graph.num_labels),),
            ),
        )
        repair_powcov(index, new_graph)
        assert_repair_matches_rebuild(index, queries=sample_queries(new_graph))

    def test_repair_refuses_non_descendant(self, base_graph, landmarks):
        index = PowCovIndex(base_graph, landmarks).build()
        stranger = labeled_erdos_renyi(40, 110, num_labels=4, seed=99)
        with pytest.raises(ValueError, match="descendant|delta|lineage"):
            repair_powcov(index, stranger)
        # Two versions ahead is also refused: repairs span exactly one delta.
        u, v, label = min(undirected_edge_set(base_graph))
        one = apply_delta(base_graph, GraphDelta(deletions=((u, v, label),)))
        two = apply_delta(one, GraphDelta(insertions=((u, v, label),)))
        with pytest.raises(ValueError):
            repair_powcov(index, two)

    def test_engine_paths_agree_after_repair(self, base_graph, landmarks):
        # Regression: the engine memoizes its packed executor on the
        # oracle's table identity; repair must invalidate it.
        index = PowCovIndex(base_graph, landmarks, storage="packed").build()
        queries = sample_queries(base_graph, seed=3)
        session = QuerySession(index)
        session.run(queries)
        u, v, label = min(undirected_edge_set(base_graph))
        new_graph = apply_delta(
            base_graph, GraphDelta(deletions=((u, v, label),))
        )
        repair_powcov(index, new_graph)
        session.rebind(index)
        scalar = [index.query(s, t, m) for s, t, m in queries]
        assert execute_batch(index, queries) == scalar
        assert session.run(queries) == scalar

    def test_directed_falls_back_to_full_rebuild(self):
        rng = np.random.default_rng(7)
        edges = {
            (int(rng.integers(18)), int(rng.integers(18)), int(rng.integers(3)))
            for _ in range(60)
        }
        edges = [(u, v, l) for u, v, l in edges if u != v]
        graph = EdgeLabeledGraph.from_edges(
            18, edges, num_labels=3, directed=True
        )
        index = PowCovIndex(graph, [0, 5]).build()
        u, v, label = edges[0]
        new_graph = apply_delta(graph, GraphDelta(deletions=((u, v, label),)))
        stats = repair_powcov(index, new_graph)
        assert stats.full_rebuild
        assert_repair_matches_rebuild(index, queries=sample_queries(new_graph))


# ----------------------------------------------------------------------
# ChromLand repair
# ----------------------------------------------------------------------
class TestChromLandRepair:
    def test_each_op_kind_matches_rebuild(self, base_graph):
        colors = [0, 1, 0, 1]
        for mutate in ("insert", "delete", "relabel"):
            index = ChromLandIndex(base_graph, [0, 10, 20, 30], colors).build()
            u, v, label = min(undirected_edge_set(base_graph))
            if mutate == "insert":
                op = GraphDelta(
                    insertions=(
                        next(
                            (a, b, 0)
                            for a in range(base_graph.num_vertices)
                            for b in range(a + 1, base_graph.num_vertices)
                            if (a, b, 0) not in undirected_edge_set(base_graph)
                        ),
                    )
                )
            elif mutate == "delete":
                op = GraphDelta(deletions=((u, v, label),))
            else:
                op = GraphDelta(
                    relabels=((u, v, label, (label + 1) % base_graph.num_labels),)
                )
            new_graph = apply_delta(base_graph, op)
            stats = repair_chromland(index, new_graph)
            assert stats.kind == "chromland"
            assert stats.sweeps_rerun + stats.sweeps_kept > 0
            assert_repair_matches_rebuild(
                index, queries=sample_queries(new_graph)
            )

    def test_untouched_sweeps_are_kept(self, base_graph):
        index = ChromLandIndex(base_graph, [0, 10, 20, 30], [0, 1, 2, 3]).build()
        # A relabel between labels 2 and 3 leaves label-{0,1} sweeps alone.
        edge = next(
            (u, v, l) for (u, v, l) in sorted(undirected_edge_set(base_graph))
            if l == 2
        )
        u, v, label = edge
        new_graph = apply_delta(
            base_graph, GraphDelta(relabels=((u, v, 2, 3),))
        )
        stats = repair_chromland(index, new_graph)
        assert stats.sweeps_kept > 0
        assert_repair_matches_rebuild(index, queries=sample_queries(new_graph))

    def test_directed_repairs_mono_in(self):
        rng = np.random.default_rng(3)
        edges = {
            (int(rng.integers(16)), int(rng.integers(16)), int(rng.integers(3)))
            for _ in range(55)
        }
        edges = [(u, v, l) for u, v, l in edges if u != v]
        graph = EdgeLabeledGraph.from_edges(
            16, edges, num_labels=3, directed=True
        )
        index = ChromLandIndex(graph, [0, 4], [0, 1]).build()
        assert index.mono_in is not None
        u, v, label = edges[0]
        new_graph = apply_delta(graph, GraphDelta(deletions=((u, v, label),)))
        repair_chromland(index, new_graph)
        assert_repair_matches_rebuild(index, queries=sample_queries(new_graph))


# ----------------------------------------------------------------------
# repair_index dispatch + RepairStats
# ----------------------------------------------------------------------
class TestRepairDispatch:
    def test_dispatches_by_index_type(self, base_graph, landmarks):
        u, v, label = min(undirected_edge_set(base_graph))
        new_graph = apply_delta(
            base_graph, GraphDelta(deletions=((u, v, label),))
        )
        powcov = PowCovIndex(base_graph, landmarks).build()
        assert repair_index(powcov, new_graph).kind == "powcov"
        chrom = ChromLandIndex(base_graph, landmarks, [0, 1, 0, 1]).build()
        assert repair_index(chrom, new_graph).kind == "chromland"

    def test_rebuild_reference_answers_like_fresh_build(
        self, base_graph, landmarks
    ):
        index = PowCovIndex(base_graph, landmarks).build()
        reference = rebuild_reference(index)
        for s, t, m in sample_queries(base_graph, count=10):
            assert index.query(s, t, m) == reference.query(s, t, m)

    def test_stats_combine_and_describe(self):
        a = RepairStats(kind="powcov", landmarks_repaired=2, rows_relaxed=7)
        b = RepairStats(kind="powcov", landmarks_resweep=1, rows_relaxed=3)
        merged = a.combine(b)
        assert merged.landmarks_repaired == 2
        assert merged.landmarks_resweep == 1
        assert merged.rows_relaxed == 10
        assert "repair" in merged.describe() or "powcov" in merged.describe()


# ----------------------------------------------------------------------
# Hypothesis-driven randomized mutation sequences (the acceptance bar)
# ----------------------------------------------------------------------
@st.composite
def graph_and_ops(draw):
    """A small graph plus a raw op tape to replay against it.

    Ops are drawn blind — each ``(kind, u, v, label, alt)`` tuple is
    resolved against the *evolving* edge set at replay time and skipped if
    invalid — which keeps the strategy shrinkable while still exercising
    arbitrary insert/delete/relabel interleavings.
    """
    n = draw(st.integers(min_value=5, max_value=9))
    num_labels = draw(st.integers(min_value=2, max_value=3))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=n - 1,
            max_size=min(2 * n, len(pairs)),
            unique=True,
        )
    )
    labels = draw(
        st.lists(
            st.integers(0, num_labels - 1),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    edges = [(u, v, lab) for (u, v), lab in zip(chosen, labels)]
    graph = EdgeLabeledGraph.from_edges(n, edges, num_labels=num_labels)
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.sampled_from(pairs),
                st.integers(0, num_labels - 1),
                st.integers(0, num_labels - 1),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return graph, ops


def resolve_op(
    edges: set[tuple[int, int, int]],
    op: tuple[int, tuple[int, int], int, int],
) -> GraphDelta | None:
    """Turn a raw op tuple into a valid single-op delta, or ``None``."""
    kind, (u, v), label, alt = op
    if kind == 0 and (u, v, label) not in edges:
        edges.add((u, v, label))
        return GraphDelta(insertions=((u, v, label),))
    if kind == 1 and (u, v, label) in edges:
        edges.remove((u, v, label))
        return GraphDelta(deletions=((u, v, label),))
    if (
        kind == 2
        and alt != label
        and (u, v, label) in edges
        and (u, v, alt) not in edges
    ):
        edges.remove((u, v, label))
        edges.add((u, v, alt))
        return GraphDelta(relabels=((u, v, label, alt),))
    return None


class TestRandomizedMutationSequences:
    @DYNAMIC
    @given(graph_and_ops())
    def test_powcov_repair_stays_bit_identical(self, case):
        graph, ops = case
        landmarks = list(range(min(3, graph.num_vertices)))
        index = PowCovIndex(graph, landmarks).build()
        edges = undirected_edge_set(graph)
        for op in ops:
            delta = resolve_op(edges, op)
            if delta is None:
                continue
            graph = apply_delta(graph, delta)
            repair_index(index, graph)
            assert_repair_matches_rebuild(
                index, queries=sample_queries(graph, count=15)
            )

    @DYNAMIC
    @given(graph_and_ops())
    def test_chromland_repair_stays_bit_identical(self, case):
        graph, ops = case
        landmarks = list(range(min(3, graph.num_vertices)))
        colors = [i % 2 for i in range(len(landmarks))]
        index = ChromLandIndex(graph, landmarks, colors).build()
        edges = undirected_edge_set(graph)
        for op in ops:
            delta = resolve_op(edges, op)
            if delta is None:
                continue
            graph = apply_delta(graph, delta)
            repair_index(index, graph)
            assert_repair_matches_rebuild(index)

    @DYNAMIC
    @given(graph_and_ops())
    def test_untouched_masks_keep_distances(self, case):
        """The soundness condition behind answer migration: a mask that
        avoids every touched label answers identically across the delta."""
        graph, ops = case
        index = PowCovIndex(graph, list(range(min(3, graph.num_vertices)))).build()
        edges = undirected_edge_set(graph)
        top = full_mask(graph.num_labels)
        for op in ops:
            delta = resolve_op(edges, op)
            if delta is None:
                continue
            untouched = top & ~delta.touched_label_mask()
            before = {}
            if untouched:
                before = {
                    (s, t): index.query(s, t, untouched)
                    for s in range(graph.num_vertices)
                    for t in range(graph.num_vertices)
                }
            graph = apply_delta(graph, delta)
            repair_index(index, graph)
            for (s, t), want in before.items():
                got = index.query(s, t, untouched)
                assert got == want or (math.isinf(got) and math.isinf(want))
