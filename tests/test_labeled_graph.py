"""Tests for the CSR edge-labeled graph type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import LabelUniverse


def simple_graph() -> EdgeLabeledGraph:
    return EdgeLabeledGraph.from_edges(
        4, [(0, 1, 0), (1, 2, 1), (2, 3, 0), (0, 3, 2)], num_labels=3
    )


class TestConstruction:
    def test_counts(self):
        g = simple_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4
        assert g.num_arcs == 8  # undirected: two arcs per edge
        assert g.num_labels == 3

    def test_directed_counts(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0), (1, 2, 0)], directed=True)
        assert g.num_arcs == 2
        assert g.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            EdgeLabeledGraph.from_edges(2, [(1, 1, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            EdgeLabeledGraph.from_edges(2, [(0, 5, 0)])

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError, match="negative label"):
            EdgeLabeledGraph.from_edges(2, [(0, 1, -1)])

    def test_num_labels_inferred(self):
        g = EdgeLabeledGraph.from_edges(2, [(0, 1, 4)])
        assert g.num_labels == 5

    def test_zero_labels_rejected(self):
        with pytest.raises(ValueError):
            EdgeLabeledGraph(
                np.array([0, 0]), np.array([], dtype=np.int32),
                np.array([], dtype=np.int16), num_labels=0,
            )

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            EdgeLabeledGraph.from_edges(2, [(0, 1, 3)], num_labels=2)

    def test_isolated_vertices_allowed(self):
        g = EdgeLabeledGraph.from_edges(5, [(0, 1, 0)], num_labels=1)
        assert g.degree(4) == 0


class TestAccessors:
    def test_degrees(self):
        g = simple_graph()
        assert g.degree(0) == 2
        assert g.degrees().tolist() == [2, 2, 2, 2]

    def test_neighbors_and_labels(self):
        g = simple_graph()
        pairs = sorted(zip(g.neighbors_of(0).tolist(), g.labels_of(0).tolist()))
        assert pairs == [(1, 0), (3, 2)]

    def test_iter_neighbors(self):
        g = simple_graph()
        assert sorted(g.iter_neighbors(2)) == [(1, 1), (3, 0)]

    def test_iter_edges_each_once(self):
        g = simple_graph()
        edges = sorted(g.iter_edges())
        assert edges == [(0, 1, 0), (0, 3, 2), (1, 2, 1), (2, 3, 0)]

    def test_edge_label(self):
        g = simple_graph()
        assert g.edge_label(0, 3) == 2
        assert g.edge_label(3, 0) == 2
        assert g.edge_label(0, 2) is None

    def test_has_edge(self):
        g = simple_graph()
        assert g.has_edge(1, 2)
        assert not g.has_edge(1, 3)

    def test_label_frequencies(self):
        g = simple_graph()
        assert g.label_frequencies().tolist() == [2, 1, 1]

    def test_incident_label_mask(self):
        g = simple_graph()
        assert g.incident_label_mask(0) == 0b101  # labels 0 and 2
        assert g.incident_label_mask(1) == 0b011

    def test_incident_label_masks_directed_includes_in_arcs(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0), (1, 2, 1)], directed=True)
        assert g.incident_label_mask(2) == 0b10

    def test_mask_with_universe(self):
        universe = LabelUniverse(["r", "g", "b"])
        g = EdgeLabeledGraph.from_edges(
            2, [(0, 1, 0)], num_labels=3, label_universe=universe
        )
        assert g.mask(["r", "b"]) == 5
        assert g.mask([0, 2]) == 5
        assert g.mask([]) == 0


class TestDerivedGraphs:
    def test_subgraph_by_mask(self):
        g = simple_graph()
        sub = g.subgraph_by_mask(0b001)  # keep label 0 only
        assert sub.num_edges == 2
        assert sorted(sub.iter_edges()) == [(0, 1, 0), (2, 3, 0)]
        assert sub.num_vertices == g.num_vertices  # vertex space preserved

    def test_subgraph_full_mask_is_identity(self):
        g = simple_graph()
        sub = g.subgraph_by_mask(0b111)
        assert sub == g

    def test_subgraph_empty_mask(self):
        g = simple_graph()
        sub = g.subgraph_by_mask(0)
        assert sub.num_edges == 0

    def test_reversed_undirected_is_self(self):
        g = simple_graph()
        assert g.reversed() is g

    def test_reversed_directed(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0), (1, 2, 1)], directed=True)
        r = g.reversed()
        assert sorted(r.iter_edges()) == [(1, 0, 0), (2, 1, 1)]
        assert r.num_edges == 2


class TestEquality:
    def test_equal_graphs(self):
        assert simple_graph() == simple_graph()

    def test_unequal_graphs(self):
        g1 = simple_graph()
        g2 = EdgeLabeledGraph.from_edges(4, [(0, 1, 0)], num_labels=3)
        assert g1 != g2

    def test_not_equal_to_other_types(self):
        assert simple_graph().__eq__(42) is NotImplemented

    def test_repr(self):
        assert "n=4" in repr(simple_graph())


class TestMalformedCSR:
    def test_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            EdgeLabeledGraph(
                np.array([1, 2]), np.array([0], dtype=np.int32),
                np.array([0], dtype=np.int16), num_labels=1,
            )

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError, match="parallel"):
            EdgeLabeledGraph(
                np.array([0, 1]), np.array([0], dtype=np.int32),
                np.array([], dtype=np.int16), num_labels=1,
            )
