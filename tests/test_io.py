"""Tests for edge-list and NPZ persistence."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz


def sample_graph():
    builder = GraphBuilder()
    builder.add_edge("a", "b", "red")
    builder.add_edge("b", "c", "green")
    builder.add_edge("c", "a", "red")
    return builder.build()


class TestEdgeListRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges
        assert sorted(loaded.label_universe.names) == sorted(
            g.label_universe.names
        )

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 red\n1 2 blue\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0 red\n0 1 red\n")
        g = load_edge_list(path)
        assert g.num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 red\n0 1\n")
        with pytest.raises(ValueError, match="expected 'u v label'"):
            load_edge_list(path)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("0,1,red\n1,2,blue\n")
        g = load_edge_list(path, delimiter=",")
        assert g.num_edges == 2

    def test_directed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 red\n1 0 red\n")
        g = load_edge_list(path, directed=True)
        assert g.directed
        assert g.num_edges == 2


class TestNpzRoundtrip:
    def test_roundtrip_named_labels(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded == g
        assert loaded.label_universe.names == g.label_universe.names

    def test_roundtrip_generated(self, tmp_path):
        g = labeled_erdos_renyi(80, 200, 5, seed=0)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded == g
        assert loaded.num_edges == g.num_edges
        assert not loaded.directed

    def test_archive_needs_no_pickle(self, tmp_path):
        # label_names is stored as fixed-width unicode, never as a
        # pickled object array, so an untrusted file cannot smuggle in
        # arbitrary code through np.load.
        import numpy as np

        g = sample_graph()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        with np.load(path, allow_pickle=False) as data:
            assert data["label_names"].dtype.kind == "U"
            assert list(data["label_names"]) == g.label_universe.names

    def test_roundtrip_without_label_universe(self, tmp_path):
        import numpy as np

        from repro.graph.labeled_graph import EdgeLabeledGraph

        g = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 1)], num_labels=2
        )
        assert g.label_universe is None
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded == g
        assert loaded.label_universe is None
        with np.load(path, allow_pickle=False) as data:
            assert data["label_names"].size == 0
