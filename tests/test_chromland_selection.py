"""Tests for ChromLand landmark/color selection (k-median local search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chromland.selection import (
    local_search_selection,
    majority_colors,
    objective_value,
    random_selection,
)
from repro.graph.generators import labeled_erdos_renyi

from conftest import make_line


class TestObjective:
    def test_single_landmark_line(self):
        g = make_line([0, 0, 0], num_labels=2)
        # Landmark at vertex 0 colored 0: sims are [self, 1, 1/2, 1/3].
        value = objective_value(g, [0], [0])
        assert value == pytest.approx(2.0 + 1.0 + 0.5 + 1.0 / 3.0)

    def test_wrong_color_scores_low(self):
        g = make_line([0, 0, 0], num_labels=2)
        # Color 1 appears on no edge: only the self term remains.
        assert objective_value(g, [0], [1]) == pytest.approx(2.0)

    def test_max_over_landmarks(self):
        g = make_line([0, 0], num_labels=1)
        both_ends = objective_value(g, [0, 2], [0, 0])
        # vertex 1 is at distance 1 from either: max is 1.0 (not 2.0)
        assert both_ends == pytest.approx(2.0 + 2.0 + 1.0)


class TestMajorityColors:
    def test_majority(self):
        g = make_line([0, 0, 1], num_labels=2)
        assert majority_colors(g, [1]) == [0]  # both incident edges label 0
        assert majority_colors(g, [3]) == [1]

    def test_isolated_vertex_fallback(self):
        from repro.graph.labeled_graph import EdgeLabeledGraph
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 1)], num_labels=2)
        assert majority_colors(g, [2]) == [0]


class TestRandomSelection:
    def test_basic(self, random_graph):
        sel = random_selection(random_graph, 8, seed=1)
        assert len(sel.landmarks) == 8
        assert len(set(sel.landmarks)) == 8
        assert len(sel.colors) == 8
        assert all(0 <= c < random_graph.num_labels for c in sel.colors)
        assert sel.objective > 0

    def test_majority_mode(self, random_graph):
        sel = random_selection(random_graph, 5, seed=2, color_mode="majority")
        assert sel.colors == majority_colors(random_graph, sel.landmarks)

    def test_validation(self, random_graph):
        with pytest.raises(ValueError):
            random_selection(random_graph, 0)
        with pytest.raises(ValueError):
            random_selection(random_graph, 3, color_mode="rainbow")

    def test_deterministic(self, random_graph):
        a = random_selection(random_graph, 6, seed=7)
        b = random_selection(random_graph, 6, seed=7)
        assert a.landmarks == b.landmarks and a.colors == b.colors


class TestLocalSearch:
    def test_objective_never_decreases_vs_start(self):
        g = labeled_erdos_renyi(60, 180, num_labels=4, seed=3)
        start = random_selection(g, 8, seed=11)
        improved = local_search_selection(g, 8, iterations=60, seed=11)
        # Same seed reproduces the same random start, so the searched
        # solution can only be at least as good.
        assert improved.objective >= start.objective

    def test_reported_objective_is_correct(self):
        g = labeled_erdos_renyi(40, 120, num_labels=3, seed=5)
        sel = local_search_selection(g, 5, iterations=40, seed=5)
        assert sel.objective == pytest.approx(
            objective_value(g, sel.landmarks, sel.colors), rel=1e-6
        )

    def test_landmarks_stay_distinct(self):
        g = labeled_erdos_renyi(30, 90, num_labels=3, seed=6)
        sel = local_search_selection(g, 6, iterations=80, seed=6)
        assert len(set(sel.landmarks)) == 6

    def test_zero_iterations_is_random_start(self):
        g = labeled_erdos_renyi(30, 90, num_labels=3, seed=8)
        sel = local_search_selection(g, 4, iterations=0, seed=8)
        assert len(sel.landmarks) == 4

    def test_validation(self, random_graph):
        with pytest.raises(ValueError):
            local_search_selection(random_graph, 0)
        with pytest.raises(ValueError):
            local_search_selection(random_graph, 2, iterations=-1)

    def test_improves_query_accuracy_over_random(self):
        """The headline Figure 6 claim at miniature scale."""
        from repro.core.chromland import ChromLandIndex
        from conftest import exact_constrained_distance
        import math

        g = labeled_erdos_renyi(80, 320, num_labels=3, seed=9)
        rng = np.random.default_rng(0)
        queries = []
        while len(queries) < 60:
            s, t = int(rng.integers(80)), int(rng.integers(80))
            mask = int(rng.integers(1, 8))
            exact = exact_constrained_distance(g, s, t, mask)
            if s != t and not math.isinf(exact):
                queries.append((s, t, mask, exact))

        def total_error(selection):
            index = ChromLandIndex(g, selection.landmarks, selection.colors).build()
            total = 0.0
            for s, t, mask, exact in queries:
                estimate = index.query(s, t, mask)
                total += (estimate - exact) if not math.isinf(estimate) else 10.0
            return total

        rand_err = np.mean([
            total_error(random_selection(g, 10, seed=s)) for s in range(3)
        ])
        ls_err = total_error(local_search_selection(g, 10, iterations=150, seed=0))
        assert ls_err <= rand_err * 1.05  # allow a little noise
