"""Tests for the naive powerset index."""

from __future__ import annotations

import math

import pytest

from repro.core.naive import NaivePowersetIndex
from repro.core.powcov import PowCovIndex
from repro.graph.generators import labeled_erdos_renyi


@pytest.fixture(scope="module")
def setup():
    graph = labeled_erdos_renyi(40, 100, num_labels=3, seed=13)
    landmarks = [0, 10, 20, 30]
    naive = NaivePowersetIndex(graph, landmarks).build()
    powcov = PowCovIndex(graph, landmarks).build()
    return graph, landmarks, naive, powcov


class TestConstruction:
    def test_too_many_labels_refused(self):
        graph = labeled_erdos_renyi(10, 20, num_labels=4, seed=0)
        graph.num_labels = 20  # simulate a wide-label graph
        with pytest.raises(ValueError, match="exponential"):
            NaivePowersetIndex(graph, [0])

    def test_duplicates_rejected(self):
        graph = labeled_erdos_renyi(10, 20, num_labels=3, seed=0)
        with pytest.raises(ValueError, match="distinct"):
            NaivePowersetIndex(graph, [0, 0])

    def test_query_before_build(self):
        graph = labeled_erdos_renyi(10, 20, num_labels=3, seed=0)
        index = NaivePowersetIndex(graph, [0])
        with pytest.raises(RuntimeError):
            index.query(0, 1, 1)


class TestEquivalenceWithPowCov:
    """Both indexes use exact landmark distances + triangle inequality,
    so they must agree on every query — the key Table 2 sanity check."""

    def test_all_queries_agree(self, setup):
        graph, _, naive, powcov = setup
        for s in range(0, graph.num_vertices, 4):
            for t in range(1, graph.num_vertices, 5):
                for mask in range(1, 1 << graph.num_labels):
                    a = naive.query_answer(s, t, mask)
                    b = powcov.query_answer(s, t, mask)
                    assert a.estimate == b.estimate, (s, t, mask)
                    assert a.lower == b.lower, (s, t, mask)

    def test_same_vertex_and_empty_mask(self, setup):
        _, _, naive, _ = setup
        assert naive.query(3, 3, 5) == 0.0
        assert math.isinf(naive.query(0, 1, 0))


class TestSizeAccounting:
    def test_exponential_footprint(self, setup):
        graph, landmarks, naive, powcov = setup
        # The naive index must store at least 2^{|L|-1} distances per
        # reachable pair (the introduction's lower bound) when the graph's
        # big component is connected under most label subsets.
        assert naive.average_entries_per_pair() > powcov.average_entries_per_pair()

    def test_counts_shape(self, setup):
        graph, landmarks, naive, _ = setup
        counts = naive.finite_counts_per_vertex()
        assert counts.shape == (len(landmarks), graph.num_vertices)
        # Landmarks never count themselves.
        for i, x in enumerate(landmarks):
            assert counts[i, x] == 0
        assert naive.index_size_entries() == int(counts.sum())

    def test_per_pair_counts_match_direct_bfs(self, setup):
        graph, landmarks, naive, _ = setup
        from repro.graph.traversal import UNREACHABLE, constrained_bfs

        counts = naive.finite_counts_per_vertex()
        x = landmarks[1]
        u = 7
        expected = 0
        for mask in range(1, 1 << graph.num_labels):
            if constrained_bfs(graph, x, mask)[u] != UNREACHABLE:
                expected += 1
        assert counts[1, u] == expected
