"""Tests for the top-k nearest-neighbor helpers."""

from __future__ import annotations

import pytest

from repro.core.exact import ExactOracle
from repro.core.nearest import constrained_nearest, rank_candidates
from repro.core.powcov import PowCovIndex
from repro.graph.traversal import UNREACHABLE, constrained_bfs

from conftest import make_line


class TestConstrainedNearest:
    def test_line_graph(self):
        g = make_line([0, 0, 0, 0], num_labels=1)
        nearest = constrained_nearest(g, 0, k=2)
        assert nearest == [(1, 1), (2, 2)]

    def test_respects_constraint(self):
        g = make_line([0, 1, 0], num_labels=2)
        nearest = constrained_nearest(g, 0, label_mask=0b01, k=5)
        assert nearest == [(1, 1)]  # label 1 blocks the rest

    def test_ties_at_cutoff_kept(self):
        # star: all leaves at distance 1; k=2 must return all 4 ties
        from repro.graph.labeled_graph import EdgeLabeledGraph
        g = EdgeLabeledGraph.from_edges(
            5, [(0, i, 0) for i in range(1, 5)], num_labels=1
        )
        nearest = constrained_nearest(g, 0, k=2)
        assert len(nearest) == 4
        assert all(d == 1 for _, d in nearest)

    def test_matches_full_bfs(self, random_graph):
        mask = 0b0111
        nearest = constrained_nearest(random_graph, 3, label_mask=mask, k=12)
        dist = constrained_bfs(random_graph, 3, mask)
        cutoff = nearest[-1][1]
        expected = sorted(
            (int(d), v) for v, d in enumerate(dist)
            if 0 < d <= cutoff and d != UNREACHABLE
        )
        assert [(v, d) for d, v in expected] == nearest

    def test_include_source(self, random_graph):
        nearest = constrained_nearest(random_graph, 0, k=3, include_source=True)
        assert nearest[0] == (0, 0)

    def test_validation(self, random_graph):
        with pytest.raises(ValueError):
            constrained_nearest(random_graph, 0, k=0)


class TestRankCandidates:
    def test_exact_ranking(self, random_graph):
        oracle = ExactOracle(random_graph)
        candidates = list(range(1, 30))
        ranking = rank_candidates(oracle, 0, candidates, 0b1111, k=5)
        assert len(ranking) <= 5
        distances = [d for _, d in ranking]
        assert distances == sorted(distances)

    def test_source_excluded(self, random_graph):
        oracle = ExactOracle(random_graph)
        ranking = rank_candidates(oracle, 0, [0, 1, 2], 0b1111)
        assert all(c != 0 for c, _ in ranking)

    def test_index_ranking_close_to_exact(self, random_graph):
        exact = ExactOracle(random_graph)
        index = PowCovIndex(
            random_graph, list(range(0, 60, 6))
        ).build()
        candidates = list(range(1, 59))
        truth = {c for c, _ in rank_candidates(exact, 0, candidates, 0b11, k=10)}
        approx = {c for c, _ in rank_candidates(index, 0, candidates, 0b11, k=10)}
        assert len(truth & approx) >= 5  # substantial top-10 overlap

    def test_unreachable_dropped(self):
        g = make_line([0, 1], num_labels=2)
        oracle = ExactOracle(g)
        ranking = rank_candidates(oracle, 0, [1, 2], 0b01)
        assert ranking == [(1, 1.0)]
