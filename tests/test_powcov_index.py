"""Tests for the PowCov index: Theorem 1 reconstruction + query bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.powcov import PowCovIndex
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.traversal import UNREACHABLE, constrained_bfs

from conftest import all_pairs_all_masks, exact_constrained_distance


@pytest.fixture(scope="module")
def built_index():
    graph = labeled_erdos_renyi(45, 110, num_labels=3, seed=21)
    landmarks = [0, 9, 18, 27, 36]
    return graph, landmarks, PowCovIndex(graph, landmarks).build()


class TestConstruction:
    def test_duplicate_landmarks_rejected(self, random_graph):
        with pytest.raises(ValueError, match="distinct"):
            PowCovIndex(random_graph, [1, 1, 2])

    def test_out_of_range_landmark(self, random_graph):
        with pytest.raises(ValueError, match="out of range"):
            PowCovIndex(random_graph, [random_graph.num_vertices])

    def test_bad_builder(self, random_graph):
        with pytest.raises(ValueError, match="builder"):
            PowCovIndex(random_graph, [0], builder="magic")

    def test_bad_storage(self, random_graph):
        with pytest.raises(ValueError, match="storage"):
            PowCovIndex(random_graph, [0], storage="csv")

    def test_bad_estimator(self, random_graph):
        with pytest.raises(ValueError, match="estimator"):
            PowCovIndex(random_graph, [0], estimator="mean")

    def test_query_before_build(self, random_graph):
        index = PowCovIndex(random_graph, [0])
        with pytest.raises(RuntimeError, match="build"):
            index.query(0, 1, 1)

    def test_describe(self, built_index):
        _, _, index = built_index
        assert "powcov" in index.describe()


class TestTheorem1Reconstruction:
    """Stored SP-minimal sets reconstruct exact landmark distances."""

    def test_exhaustive(self, built_index):
        graph, landmarks, index = built_index
        for i, x in enumerate(landmarks):
            for mask in range(1, 1 << graph.num_labels):
                exact = constrained_bfs(graph, x, mask)
                for u in range(graph.num_vertices):
                    expected = (
                        float(exact[u]) if exact[u] != UNREACHABLE else math.inf
                    )
                    assert index.landmark_distance(i, u, mask) == expected, (
                        x, u, mask,
                    )

    def test_landmark_to_itself(self, built_index):
        _, landmarks, index = built_index
        for i in range(len(landmarks)):
            assert index.landmark_distance(i, landmarks[i], 1) == 0.0


class TestQueryBounds:
    def test_sandwich(self, built_index):
        """lower <= exact <= estimate for every finite query."""
        graph, _, index = built_index
        for s, t, mask, exact in all_pairs_all_masks(graph):
            if s == t:
                continue
            answer = index.query_answer(s, t, mask)
            if math.isinf(exact):
                assert math.isinf(answer.estimate)  # no false positives
            else:
                assert answer.estimate >= exact
                assert answer.lower <= exact

    def test_same_vertex(self, built_index):
        _, _, index = built_index
        assert index.query(7, 7, 1) == 0.0

    def test_empty_mask(self, built_index):
        _, _, index = built_index
        assert math.isinf(index.query(0, 1, 0))

    def test_query_through_landmark_is_exact(self, built_index):
        """If s is itself a landmark, the estimate equals the exact distance."""
        graph, landmarks, index = built_index
        s = landmarks[0]
        for t in range(graph.num_vertices):
            if t == s:
                continue
            for mask in (1, 3, 7):
                exact = exact_constrained_distance(graph, s, t, mask)
                assert index.query(s, t, mask) == exact


class TestStorageVariants:
    def test_trie_and_packed_match_flat(self):
        graph = labeled_erdos_renyi(35, 90, num_labels=4, seed=5)
        landmarks = [0, 10, 20]
        flat = PowCovIndex(graph, landmarks, storage="flat").build()
        trie = PowCovIndex(graph, landmarks, storage="trie").build()
        packed = PowCovIndex(graph, landmarks, storage="packed").build()
        for s in range(0, 35, 3):
            for t in range(1, 35, 4):
                for mask in range(1, 16):
                    reference = flat.query_answer(s, t, mask)
                    for other in (trie, packed):
                        answer = other.query_answer(s, t, mask)
                        assert answer.estimate == reference.estimate
                        assert answer.upper == reference.upper
                    assert packed.query_answer(s, t, mask).lower == reference.lower

    def test_packed_landmark_distance_matches_flat(self):
        graph = labeled_erdos_renyi(30, 80, num_labels=3, seed=9)
        landmarks = [0, 15, 29]
        flat = PowCovIndex(graph, landmarks, storage="flat").build()
        packed = PowCovIndex(graph, landmarks, storage="packed").build()
        for i in range(3):
            for u in range(30):
                for mask in range(1, 8):
                    assert packed.landmark_distance(i, u, mask) == (
                        flat.landmark_distance(i, u, mask)
                    )

    def test_packed_median_matches_flat_median(self):
        graph = labeled_erdos_renyi(30, 90, num_labels=3, seed=10)
        landmarks = [0, 7, 14, 21, 28]
        flat = PowCovIndex(graph, landmarks, storage="flat",
                           estimator="median").build()
        packed = PowCovIndex(graph, landmarks, storage="packed",
                             estimator="median").build()
        for s in range(0, 30, 4):
            for t in range(1, 30, 5):
                for mask in (1, 3, 7):
                    assert flat.query(s, t, mask) == packed.query(s, t, mask)

    def test_builders_match(self):
        graph = labeled_erdos_renyi(30, 70, num_labels=3, seed=6)
        landmarks = [0, 15]
        results = {}
        for builder in ("traverse", "traverse-paper", "brute"):
            index = PowCovIndex(graph, landmarks, builder=builder).build()
            results[builder] = [
                index.query(s, t, m)
                for s in range(0, 30, 5)
                for t in range(1, 30, 7)
                for m in range(1, 8)
            ]
        assert results["traverse"] == results["brute"]
        assert results["traverse"] == results["traverse-paper"]

    def test_median_estimator_between_bounds(self):
        graph = labeled_erdos_renyi(40, 120, num_labels=3, seed=7)
        landmarks = list(range(0, 40, 5))
        upper = PowCovIndex(graph, landmarks, estimator="upper").build()
        median = PowCovIndex(graph, landmarks, estimator="median").build()
        for s in range(0, 40, 7):
            for t in range(1, 40, 6):
                for mask in (1, 3, 7):
                    mu = upper.query_answer(s, t, mask)
                    mm = median.query_answer(s, t, mask)
                    if math.isinf(mu.upper):
                        assert math.isinf(mm.estimate)
                    else:
                        assert mm.estimate >= mu.upper  # median >= min


class TestSizeAccounting:
    def test_counts_consistent(self, built_index):
        _, _, index = built_index
        assert index.index_size_entries() > 0
        assert index.reachable_pairs() > 0
        avg = index.average_entries_per_pair()
        assert avg == pytest.approx(
            index.index_size_entries() / index.reachable_pairs()
        )
        assert index.max_entries_per_pair() >= math.ceil(avg)
