"""Tests for index serialization (save/load without rebuilding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chromland import ChromLandIndex
from repro.core.powcov import PowCovIndex
from repro.core.serialize import (
    graph_fingerprint,
    load_chromland,
    load_powcov,
    save_chromland,
    save_powcov,
)
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph


@pytest.fixture(scope="module")
def graph():
    return labeled_erdos_renyi(40, 110, num_labels=3, seed=19)


class TestFingerprint:
    def test_stable(self, graph):
        assert graph_fingerprint(graph) == graph_fingerprint(graph)

    def test_memoized_per_instance(self, monkeypatch):
        # The CSR arrays are immutable, so the hash is computed once and
        # cached on the graph; a second call must not touch the arrays.
        from repro.graph import fingerprint

        g = labeled_erdos_renyi(30, 80, num_labels=3, seed=4)
        first = graph_fingerprint(g)
        assert g._fingerprint is not None

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("fingerprint was recomputed")

        monkeypatch.setattr(fingerprint, "_fold_array", boom)
        assert graph_fingerprint(g) == first

    def test_distinguishes_graphs(self, graph):
        other = labeled_erdos_renyi(40, 110, num_labels=3, seed=20)
        assert graph_fingerprint(graph) != graph_fingerprint(other)

    def test_distinguishes_same_counts_different_content(self):
        # Identical n, m, |L| — only the adjacency differs.  The old
        # summary-stat fingerprint could collide here; the CSR content
        # sample must not.
        a = labeled_erdos_renyi(40, 110, num_labels=3, seed=1)
        b = labeled_erdos_renyi(40, 110, num_labels=3, seed=2)
        assert (a.num_vertices, a.num_edges, a.num_labels) == (
            b.num_vertices, b.num_edges, b.num_labels
        )
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_distinguishes_relabeled_edges(self, graph):
        # Same topology, one edge label flipped deep in the arrays —
        # beyond the first-64-entries window the old hash sampled.
        edges = []
        seen = set()
        for u in range(graph.num_vertices):
            for i in range(int(graph.indptr[u]), int(graph.indptr[u + 1])):
                v = int(graph.neighbors[i])
                label = int(graph.edge_labels[i])
                key = (min(u, v), max(u, v), label)
                if key not in seen:
                    seen.add(key)
                    edges.append((u, v, label))
        flipped = list(edges)
        u, v, label = flipped[-1]
        flipped[-1] = (u, v, (label + 1) % graph.num_labels)
        base = EdgeLabeledGraph.from_edges(
            graph.num_vertices, edges, num_labels=graph.num_labels
        )
        other = EdgeLabeledGraph.from_edges(
            graph.num_vertices, flipped, num_labels=graph.num_labels
        )
        assert graph_fingerprint(base) != graph_fingerprint(other)


class TestPowCovRoundtrip:
    def test_queries_identical(self, graph, tmp_path):
        original = PowCovIndex(graph, [0, 13, 26]).build()
        path = tmp_path / "powcov.npz"
        save_powcov(original, path)
        loaded = load_powcov(path, graph)
        for s in range(0, 40, 4):
            for t in range(1, 40, 5):
                for mask in range(1, 8):
                    assert loaded.query(s, t, mask) == original.query(s, t, mask)
        assert loaded.index_size_entries() == original.index_size_entries()

    def test_unbuilt_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError, match="build"):
            save_powcov(PowCovIndex(graph, [0]), tmp_path / "x.npz")

    def test_wrong_graph_rejected(self, graph, tmp_path):
        index = PowCovIndex(graph, [0, 10]).build()
        path = tmp_path / "powcov.npz"
        save_powcov(index, path)
        other = labeled_erdos_renyi(40, 110, num_labels=3, seed=99)
        with pytest.raises(ValueError, match="different graph"):
            load_powcov(path, other)

    def test_wrong_kind_rejected(self, graph, tmp_path):
        index = ChromLandIndex(graph, [0, 10], [0, 1]).build()
        path = tmp_path / "c.npz"
        save_chromland(index, path)
        with pytest.raises(ValueError, match="not a PowCov"):
            load_powcov(path, graph)

    def test_directed_roundtrip(self, tmp_path):
        rng = np.random.default_rng(5)
        edges = {(int(rng.integers(20)), int(rng.integers(20)),
                  int(rng.integers(3))) for _ in range(70)}
        edges = [(u, v, l) for u, v, l in edges if u != v]
        digraph = EdgeLabeledGraph.from_edges(20, edges, num_labels=3,
                                              directed=True)
        original = PowCovIndex(digraph, [0, 7, 14]).build()
        path = tmp_path / "d.npz"
        save_powcov(original, path)
        loaded = load_powcov(path, digraph)
        for s in range(0, 20, 2):
            for t in range(1, 20, 3):
                for mask in range(1, 8):
                    assert loaded.query(s, t, mask) == original.query(s, t, mask)


class TestChromLandRoundtrip:
    def test_queries_identical(self, graph, tmp_path):
        original = ChromLandIndex(graph, [0, 10, 20, 30], [0, 1, 2, 0]).build()
        path = tmp_path / "chromland.npz"
        save_chromland(original, path)
        loaded = load_chromland(path, graph)
        for s in range(0, 40, 4):
            for t in range(1, 40, 5):
                for mask in range(1, 8):
                    assert loaded.query(s, t, mask) == original.query(s, t, mask)

    def test_query_mode_preserved(self, graph, tmp_path):
        original = ChromLandIndex(graph, [0, 10], [0, 1],
                                  query_mode="simple").build()
        path = tmp_path / "c.npz"
        save_chromland(original, path)
        assert load_chromland(path, graph).query_mode == "simple"

    def test_unbuilt_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError, match="build"):
            save_chromland(ChromLandIndex(graph, [0], [0]), tmp_path / "x.npz")

    def test_wrong_kind_rejected(self, graph, tmp_path):
        index = PowCovIndex(graph, [0]).build()
        path = tmp_path / "p.npz"
        save_powcov(index, path)
        with pytest.raises(ValueError, match="not a ChromLand"):
            load_chromland(path, graph)
