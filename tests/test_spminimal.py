"""Tests for SP-minimal enumeration (Algorithms 1 & 2, Observations 1-4)."""

from __future__ import annotations


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.powcov.spminimal import (
    brute_force_sp_minimal,
    generate_candidates,
    generate_candidates_apriori,
    traverse_powerset,
)
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import iter_submasks, popcount
from repro.graph.traversal import UNREACHABLE, constrained_bfs

from conftest import make_line


def definition_sp_minimal(graph, landmark):
    """SP-minimality straight from Definitions 1-2 (all-subsets check)."""
    num_masks = (1 << graph.num_labels) - 1
    dist = {
        mask: constrained_bfs(graph, landmark, mask)
        for mask in range(1, num_masks + 1)
    }
    entries: dict[int, list[tuple[int, int]]] = {}
    for mask in range(1, num_masks + 1):
        for u in range(graph.num_vertices):
            if u == landmark or dist[mask][u] == UNREACHABLE:
                continue
            subsumed = False
            for sub in iter_submasks(mask):
                if sub in (0, mask):
                    continue
                if dist[sub][u] != UNREACHABLE and dist[sub][u] == dist[mask][u]:
                    subsumed = True
                    break
            if not subsumed:
                entries.setdefault(u, []).append((int(dist[mask][u]), mask))
    for pairs in entries.values():
        pairs.sort()
    return entries


class TestAgainstDefinition:
    """Theorem 2's one-removed test must agree with the full definition."""

    @pytest.mark.parametrize("seed", range(4))
    def test_brute_force_matches_definition(self, seed):
        g = labeled_erdos_renyi(22, 45, num_labels=3, seed=seed)
        assert brute_force_sp_minimal(g, 0).entries == definition_sp_minimal(g, 0)

    def test_on_figure2(self, figure2):
        g, x, u = figure2
        result = brute_force_sp_minimal(g, x)
        # labels: o=0, r=1, g=2 — the paper's Figure 2 claims {o} and
        # {r,g} are SP-minimal w.r.t. (x, u) and {r,o} is not.
        assert result.entries[u] == [(2, 0b001), (2, 0b110)]


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(10, 35), st.integers(10, 70), st.integers(2, 5),
        st.integers(0, 500),
    )
    def test_traverse_equals_brute(self, n, m, labels, seed):
        g = labeled_erdos_renyi(n, m, num_labels=labels, seed=seed)
        landmark = seed % n
        brute = brute_force_sp_minimal(g, landmark)
        traverse = traverse_powerset(g, landmark)
        assert traverse.entries == brute.entries

    @pytest.mark.parametrize(
        "flags",
        [
            dict(use_obs1=False),
            dict(use_obs2=False),
            dict(use_obs3=False),
            dict(use_obs4=False),
            dict(use_obs1=False, use_obs2=False, use_obs3=False, use_obs4=False),
            dict(use_obs2=False, use_obs4=False),
        ],
    )
    def test_every_pruning_combination_is_equivalent(self, flags):
        g = labeled_erdos_renyi(30, 70, num_labels=4, seed=11)
        expected = brute_force_sp_minimal(g, 3).entries
        assert traverse_powerset(g, 3, **flags).entries == expected

    def test_pruning_reduces_tests(self):
        g = labeled_erdos_renyi(60, 180, num_labels=5, seed=2)
        brute = brute_force_sp_minimal(g, 0)
        traverse = traverse_powerset(g, 0)
        assert traverse.num_full_tests < brute.num_full_tests
        assert traverse.num_sssp <= brute.num_sssp


class TestCandidates:
    @pytest.mark.parametrize("seed", range(5))
    def test_apriori_equals_direct(self, seed):
        g = labeled_erdos_renyi(25, 60, num_labels=4, seed=seed)
        for landmark in (0, 7, 13):
            assert generate_candidates_apriori(g, landmark) == sorted(
                generate_candidates(g, landmark)
            )

    def test_observation1_pruned_masks_are_unreachable(self):
        """Masks skipped by Observation 1 reach nothing from the landmark."""
        g = make_line([0, 1, 0], num_labels=3)  # label 2 unused at vertex 0
        candidates = set(generate_candidates(g, 0))
        for mask in range(1, 8):
            if mask in candidates:
                continue
            dist = constrained_bfs(g, 0, mask)
            assert (dist[1:] == UNREACHABLE).all(), mask

    def test_isolated_landmark_has_no_candidates(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0)], num_labels=2)
        assert generate_candidates(g, 2) == []
        assert generate_candidates_apriori(g, 2) == []
        assert traverse_powerset(g, 2).entries == {}
        assert brute_force_sp_minimal(g, 2).entries == {}


class TestStructuralProperties:
    def test_proposition1_size_bound(self):
        """|C| <= d_C(x, u) for every stored SP-minimal set (Prop. 1 core)."""
        g = labeled_erdos_renyi(40, 100, num_labels=4, seed=9)
        result = brute_force_sp_minimal(g, 5)
        for _u, pairs in result.entries.items():
            for dist, mask in pairs:
                assert popcount(mask) <= dist

    def test_singletons_always_minimal_when_reachable(self):
        g = labeled_erdos_renyi(30, 80, num_labels=3, seed=4)
        result = brute_force_sp_minimal(g, 0)
        for label in range(3):
            dist = constrained_bfs(g, 0, 1 << label)
            for u in range(1, g.num_vertices):
                if dist[u] != UNREACHABLE:
                    assert (int(dist[u]), 1 << label) in result.entries.get(u, [])

    def test_entries_sorted_by_distance(self):
        g = labeled_erdos_renyi(30, 80, num_labels=4, seed=6)
        result = traverse_powerset(g, 1)
        for pairs in result.entries.values():
            assert pairs == sorted(pairs)

    def test_every_reachable_vertex_has_entries(self):
        g = labeled_erdos_renyi(30, 90, num_labels=3, seed=8)
        result = traverse_powerset(g, 2)
        full = constrained_bfs(g, 2, 0b111)
        for u in range(g.num_vertices):
            if u == 2:
                assert u not in result.entries
            elif full[u] != UNREACHABLE:
                assert u in result.entries

    def test_stats_fields(self):
        g = labeled_erdos_renyi(30, 80, num_labels=3, seed=1)
        result = traverse_powerset(g, 0)
        assert result.total_entries == sum(
            len(p) for p in result.entries.values()
        )
        assert result.max_entries_per_vertex() == max(
            len(p) for p in result.entries.values()
        )
        empty = traverse_powerset(
            EdgeLabeledGraph.from_edges(2, [(0, 1, 0)], num_labels=1), 0
        )
        assert empty.max_entries_per_vertex() >= 0
