"""Tests for traversal primitives, cross-checked against networkx."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import full_mask
from repro.graph.traversal import (
    UNREACHABLE,
    bfs,
    bidirectional_constrained_bfs,
    connected_components,
    constrained_bfs,
    constrained_bfs_levels,
    constrained_bfs_tree,
    constrained_dijkstra,
    eccentricity_lower_bound,
    estimate_diameter,
    label_filter,
    largest_component_vertices,
    monochromatic_sp_labels,
)

from conftest import make_line


def to_networkx(graph: EdgeLabeledGraph, mask: int | None = None) -> nx.Graph:
    nxg = nx.DiGraph() if graph.directed else nx.Graph()
    nxg.add_nodes_from(range(graph.num_vertices))
    for u, v, label in graph.iter_edges():
        if mask is None or mask & (1 << label):
            nxg.add_edge(u, v)
    return nxg


def graph_strategy():
    return st.builds(
        labeled_erdos_renyi,
        num_vertices=st.integers(10, 40),
        num_edges=st.integers(10, 80),
        num_labels=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )


class TestConstrainedBFS:
    def test_source_distance_zero(self, random_graph):
        dist = constrained_bfs(random_graph, 0, full_mask(4))
        assert dist[0] == 0

    def test_matches_networkx_unconstrained(self, random_graph):
        dist = bfs(random_graph, 0)
        expected = nx.single_source_shortest_path_length(to_networkx(random_graph), 0)
        for v in range(random_graph.num_vertices):
            if v in expected:
                assert dist[v] == expected[v]
            else:
                assert dist[v] == UNREACHABLE

    @pytest.mark.parametrize("mask", [1, 2, 3, 5, 15])
    def test_matches_networkx_constrained(self, random_graph, mask):
        dist = constrained_bfs(random_graph, 3, mask)
        expected = nx.single_source_shortest_path_length(
            to_networkx(random_graph, mask), 3
        )
        for v in range(random_graph.num_vertices):
            got = dist[v] if dist[v] != UNREACHABLE else None
            assert got == expected.get(v), (v, mask)

    def test_constrained_equals_subgraph_bfs(self, random_graph):
        for mask in (1, 6, 9):
            direct = constrained_bfs(random_graph, 5, mask)
            via_subgraph = bfs(random_graph.subgraph_by_mask(mask), 5)
            assert np.array_equal(direct, via_subgraph)

    def test_empty_mask_isolates_source(self, random_graph):
        dist = constrained_bfs(random_graph, 0, 0)
        assert dist[0] == 0
        assert (dist[1:] == UNREACHABLE).all()

    def test_monotonicity_in_labels(self, random_graph):
        """C ⊆ C' implies d_{C'} <= d_C pointwise (with -1 as infinity)."""
        small = constrained_bfs(random_graph, 2, 0b01)
        large = constrained_bfs(random_graph, 2, 0b11)
        small_inf = np.where(small == UNREACHABLE, 10**6, small)
        large_inf = np.where(large == UNREACHABLE, 10**6, large)
        assert (large_inf <= small_inf).all()

    def test_precomputed_allowed_table(self, random_graph):
        allowed = label_filter(random_graph, 0b101)
        a = constrained_bfs(random_graph, 1, allowed=allowed)
        b = constrained_bfs(random_graph, 1, 0b101)
        assert np.array_equal(a, b)

    def test_directed_respects_orientation(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0), (1, 2, 0)], directed=True)
        assert constrained_bfs(g, 0, 1).tolist() == [0, 1, 2]
        assert constrained_bfs(g, 2, 1).tolist() == [UNREACHABLE, UNREACHABLE, 0]


class TestBFSLevels:
    def test_levels_partition_reachable(self, random_graph):
        dist, levels = constrained_bfs_levels(random_graph, 0, 0b1111)
        seen = np.concatenate(levels)
        assert len(seen) == len(set(seen.tolist()))
        for t, level in enumerate(levels):
            assert (dist[level] == t).all()
        assert len(seen) == int((dist != UNREACHABLE).sum())

    def test_levels_match_plain_bfs(self, random_graph):
        dist_a, _levels = constrained_bfs_levels(random_graph, 7, 0b11)
        dist_b = constrained_bfs(random_graph, 7, 0b11)
        assert np.array_equal(dist_a, dist_b)


class TestBFSTree:
    def test_tree_arcs_connect_consecutive_levels(self, random_graph):
        dist, tree = constrained_bfs_tree(random_graph, 0, 0b111)
        for t, (src, tgt, labels) in enumerate(tree):
            if t == 0:
                assert len(src) == 0
                continue
            assert (dist[src] == t - 1).all()
            assert (dist[tgt] == t).all()
            assert len(src) == len(tgt) == len(labels)

    def test_tree_contains_every_dag_arc(self, random_graph):
        mask = 0b101
        dist, tree = constrained_bfs_tree(random_graph, 4, mask)
        got = set()
        for src, tgt, labels in tree:
            got.update(zip(src.tolist(), tgt.tolist(), labels.tolist()))
        expected = set()
        for u, v, label in random_graph.iter_edges():
            if not mask & (1 << label):
                continue
            for a, b in ((u, v), (v, u)):
                if dist[a] != UNREACHABLE and dist[b] == dist[a] + 1:
                    expected.add((a, b, label))
        assert got == expected

    def test_tree_dist_matches_bfs(self, random_graph):
        dist_a, _ = constrained_bfs_tree(random_graph, 9, 0b11)
        dist_b = constrained_bfs(random_graph, 9, 0b11)
        assert np.array_equal(dist_a, dist_b)


class TestBidirectional:
    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(), st.integers(0, 9), st.integers(0, 9),
           st.integers(1, 15))
    def test_matches_unidirectional(self, graph, s, t, mask):
        mask &= full_mask(graph.num_labels)
        if mask == 0:
            mask = 1
        s %= graph.num_vertices
        t %= graph.num_vertices
        expected = constrained_bfs(graph, s, mask)[t]
        expected = math.inf if expected == UNREACHABLE else float(expected)
        assert bidirectional_constrained_bfs(graph, s, t, mask) == expected

    def test_same_vertex(self, random_graph):
        assert bidirectional_constrained_bfs(random_graph, 5, 5, 1) == 0.0

    def test_unreachable(self):
        g = EdgeLabeledGraph.from_edges(4, [(0, 1, 0), (2, 3, 0)], num_labels=1)
        assert math.isinf(bidirectional_constrained_bfs(g, 0, 3, 1))

    def test_directed(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0), (1, 2, 0)], directed=True)
        assert bidirectional_constrained_bfs(g, 0, 2, 1) == 2.0
        assert math.isinf(bidirectional_constrained_bfs(g, 2, 0, 1))

    def test_exhaustive_small_graph(self, small_graphs):
        for g in small_graphs[:2]:
            for mask in range(1, 1 << g.num_labels):
                full = {
                    s: constrained_bfs(g, s, mask) for s in range(0, g.num_vertices, 5)
                }
                for s, dist in full.items():
                    for t in range(0, g.num_vertices, 3):
                        expected = dist[t]
                        expected = (
                            math.inf if expected == UNREACHABLE else float(expected)
                        )
                        got = bidirectional_constrained_bfs(g, s, t, mask)
                        assert got == expected, (s, t, mask)


class TestDijkstra:
    def test_unit_weights_match_bfs(self, random_graph):
        for mask in (1, 7, 15):
            dij = constrained_dijkstra(random_graph, 0, mask)
            bfs_dist = constrained_bfs(random_graph, 0, mask)
            for v in range(random_graph.num_vertices):
                if bfs_dist[v] == UNREACHABLE:
                    assert math.isinf(dij[v])
                else:
                    assert dij[v] == bfs_dist[v]

    def test_weighted(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0), (1, 2, 0), (0, 2, 1)])
        # give every label-1 arc weight 5
        weights = np.where(g.edge_labels == 1, 5.0, 1.0)
        dist = constrained_dijkstra(g, 0, 0b11, weights=weights)
        assert dist[2] == 2.0  # through vertex 1, not the direct label-1 edge

    def test_target_early_exit(self, random_graph):
        full = constrained_dijkstra(random_graph, 0, 15)
        single = constrained_dijkstra(random_graph, 0, 15, target=13)
        assert single == full[13]

    def test_bad_weights_length(self, random_graph):
        with pytest.raises(ValueError, match="parallel"):
            constrained_dijkstra(random_graph, 0, 1, weights=np.ones(3))


class TestMonochromatic:
    def test_line_single_color(self):
        g = make_line([0, 0, 0], num_labels=2)
        mono = monochromatic_sp_labels(g, 0)
        assert mono.tolist() == [0b11, 0b01, 0b01, 0b01]

    def test_line_color_change_blocks(self):
        g = make_line([0, 1, 0], num_labels=2)
        mono = monochromatic_sp_labels(g, 0)
        assert mono[1] == 0b01
        assert mono[2] == 0  # path uses two colors
        assert mono[3] == 0

    def test_parallel_monochromatic_paths(self, figure2):
        g, x, u = figure2
        mono = monochromatic_sp_labels(g, x)
        # u has the all-orange shortest path; orange is dense label 0.
        assert mono[u] == 0b001

    def test_definition_against_bruteforce(self, small_graphs):
        """mono bit l set iff d_{l}(x,u) equals the unconstrained distance."""
        for g in small_graphs[:3]:
            x = 0
            base = bfs(g, x)
            mono = monochromatic_sp_labels(g, x)
            for label in range(g.num_labels):
                single = constrained_bfs(g, x, 1 << label)
                for u in range(g.num_vertices):
                    if u == x:
                        continue
                    expected = (
                        base[u] != UNREACHABLE
                        and single[u] == base[u]
                    )
                    assert bool(mono[u] & (1 << label)) == bool(expected), (u, label)


class TestComponents:
    def test_single_component(self, random_graph):
        comp = connected_components(random_graph)
        # The generator's graph may have isolated vertices; the big
        # component must contain the majority.
        assert np.bincount(comp).max() >= random_graph.num_vertices // 2

    def test_two_components(self):
        g = EdgeLabeledGraph.from_edges(5, [(0, 1, 0), (2, 3, 0)], num_labels=1)
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert comp[4] not in (comp[0], comp[2])

    def test_directed_weak_components(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0)], directed=True)
        comp = connected_components(g)
        assert comp[0] == comp[1] != comp[2]

    def test_largest_component(self):
        g = EdgeLabeledGraph.from_edges(6, [(0, 1, 0), (1, 2, 0), (3, 4, 0)])
        assert sorted(largest_component_vertices(g).tolist()) == [0, 1, 2]


class TestDiameter:
    def test_path_graph_exact(self):
        g = make_line([0] * 9, num_labels=1)
        assert estimate_diameter(g) == 9

    def test_eccentricity(self):
        g = make_line([0] * 4, num_labels=1)
        ecc, far = eccentricity_lower_bound(g, 0)
        assert ecc == 4 and far == 4

    def test_lower_bound_property(self, random_graph):
        est = estimate_diameter(random_graph, sweeps=2)
        nxg = to_networkx(random_graph)
        giant = max(nx.connected_components(nxg), key=len)
        true = nx.diameter(nxg.subgraph(giant))
        assert est <= true
        assert est >= max(1, true - 2)  # double sweep is near-tight in practice
