"""Tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder


class TestBuilder:
    def test_basic_build(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", "red")
        builder.add_edge("b", "c", "green")
        g = builder.build()
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.num_labels == 2
        assert g.label_universe.names == ["red", "green"]

    def test_vertex_ids_first_seen_order(self):
        builder = GraphBuilder()
        builder.add_edge("x", "y", "l")
        builder.add_edge("y", "z", "l")
        assert builder.vertex_names == ["x", "y", "z"]

    def test_duplicate_edges_dropped(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", "red")
        builder.add_edge("a", "b", "red")
        builder.add_edge("b", "a", "red")  # reversed duplicate (undirected)
        assert builder.num_edges_added == 1

    def test_directed_keeps_both_orientations(self):
        builder = GraphBuilder(directed=True)
        builder.add_edge("a", "b", "l")
        builder.add_edge("b", "a", "l")
        assert builder.num_edges_added == 2
        g = builder.build()
        assert g.directed

    def test_parallel_edges_with_distinct_labels_kept(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", "red")
        builder.add_edge("a", "b", "green")
        assert builder.num_edges_added == 2

    def test_self_loop_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError, match="self-loop"):
            builder.add_edge("a", "a", "l")

    def test_integer_labels(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", 3)
        g = builder.build()
        assert g.num_labels == 4  # ids 0..3 materialized
        assert g.edge_label(0, 1) == 3

    def test_negative_integer_label_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError):
            builder.add_edge("a", "b", -2)

    def test_add_isolated_vertex(self):
        builder = GraphBuilder()
        builder.add_vertex("lonely")
        builder.add_edge("a", "b", "l")
        g = builder.build()
        assert g.num_vertices == 3
        assert g.degree(0) == 0  # "lonely" was added first

    def test_build_with_explicit_num_labels(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", "red")
        g = builder.build(num_labels=5)
        assert g.num_labels == 5

    def test_empty_builder(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_arbitrary_hashable_vertex_names(self):
        builder = GraphBuilder()
        builder.add_edge((1, 2), (3, 4), "l")
        assert builder.vertex_id((1, 2)) == 0
