"""Tests for the weighted-graph PowCov extension."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import ExactDijkstraOracle
from repro.core.powcov import (
    PowCovIndex,
    WeightedPowCovIndex,
    brute_force_sp_minimal,
    weighted_sp_minimal,
)
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph


def integer_weights(graph, seed=0, low=1, high=5) -> np.ndarray:
    """Symmetric integer arc weights (same weight on both arc directions)."""
    rng = np.random.default_rng(seed)
    weights = np.zeros(graph.num_arcs, dtype=np.float64)
    pair_weight: dict[tuple[int, int, int], float] = {}
    for u in range(graph.num_vertices):
        start, stop = graph.indptr[u], graph.indptr[u + 1]
        for i in range(start, stop):
            v = int(graph.neighbors[i])
            label = int(graph.edge_labels[i])
            key = (min(u, v), max(u, v), label)
            if key not in pair_weight:
                pair_weight[key] = float(rng.integers(low, high + 1))
            weights[i] = pair_weight[key]
    return weights


@pytest.fixture(scope="module")
def weighted_setup():
    graph = labeled_erdos_renyi(35, 90, num_labels=3, seed=12)
    weights = integer_weights(graph, seed=12)
    landmarks = [0, 12, 24]
    index = WeightedPowCovIndex(graph, landmarks, weights).build()
    exact = ExactDijkstraOracle(graph, weights=weights)
    return graph, weights, landmarks, index, exact


class TestWeightedSPMinimal:
    def test_unit_weights_match_unweighted(self):
        graph = labeled_erdos_renyi(30, 70, num_labels=3, seed=4)
        unit = np.ones(graph.num_arcs)
        weighted = weighted_sp_minimal(graph, 0, unit)
        unweighted = brute_force_sp_minimal(graph, 0)
        got = {
            u: [(int(d), m) for d, m in pairs]
            for u, pairs in weighted.entries.items()
        }
        assert got == unweighted.entries

    def test_validation(self):
        graph = labeled_erdos_renyi(20, 40, num_labels=2, seed=1)
        with pytest.raises(ValueError, match="parallel"):
            weighted_sp_minimal(graph, 0, np.ones(3))
        with pytest.raises(ValueError, match="non-negative"):
            weighted_sp_minimal(graph, 0, -np.ones(graph.num_arcs))

    def test_obs1_equivalence(self):
        graph = labeled_erdos_renyi(25, 60, num_labels=3, seed=6)
        weights = integer_weights(graph, seed=6)
        with_obs1 = weighted_sp_minimal(graph, 3, weights, use_obs1=True)
        without = weighted_sp_minimal(graph, 3, weights, use_obs1=False)
        assert with_obs1.entries == without.entries


class TestWeightedIndex:
    def test_landmark_distances_exact(self, weighted_setup):
        graph, weights, landmarks, index, exact = weighted_setup
        for i, x in enumerate(landmarks):
            for u in range(0, graph.num_vertices, 4):
                for mask in range(1, 8):
                    want = exact.query(x, u, mask)
                    assert index.landmark_distance(i, u, mask) == want

    def test_upper_bound_no_false_positives(self, weighted_setup):
        graph, weights, _, index, exact = weighted_setup
        for s in range(0, graph.num_vertices, 3):
            for t in range(1, graph.num_vertices, 4):
                if s == t:
                    continue
                for mask in range(1, 8):
                    truth = exact.query(s, t, mask)
                    estimate = index.query(s, t, mask)
                    if math.isinf(truth):
                        assert math.isinf(estimate)
                    else:
                        assert estimate >= truth - 1e-9

    def test_exact_through_landmark(self, weighted_setup):
        graph, weights, landmarks, index, exact = weighted_setup
        s = landmarks[1]
        for t in range(0, graph.num_vertices, 5):
            if t == s:
                continue
            assert index.query(s, t, 0b111) == exact.query(s, t, 0b111)

    def test_directed_rejected(self):
        graph = EdgeLabeledGraph.from_edges(
            3, [(0, 1, 0), (1, 2, 0)], directed=True
        )
        with pytest.raises(ValueError, match="undirected"):
            WeightedPowCovIndex(graph, [0], np.ones(graph.num_arcs))

    def test_weights_length_validated(self):
        graph = labeled_erdos_renyi(10, 20, num_labels=2, seed=0)
        with pytest.raises(ValueError, match="parallel"):
            WeightedPowCovIndex(graph, [0], np.ones(3))
