"""Tests for the HTTP serving layer: endpoints, batching, wire identity.

The server under test runs in-process on a background thread bound to an
ephemeral port (``ServerThread``); clients are plain ``http.client``
connections, so the full codec — request parsing, routing, JSON bodies,
keep-alive — is exercised end to end.  The MicroBatcher property test
drives a fake clock through ``poll()`` so window semantics are
deterministic under hypothesis.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ChromLandIndex,
    ExactDijkstraOracle,
    NaivePowersetIndex,
    PowCovIndex,
)
from repro.engine import execute_batch
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labelsets import full_mask
from repro.landmarks import select_landmarks
from repro.serve import (
    GraphRegistry,
    MicroBatcher,
    ServeApp,
    ServeConfig,
    ServerThread,
)
from repro.serve.app import from_wire_distance, wire_distance
from repro.serve.http import HttpError, HttpRequest
from repro.serve.loadgen import HttpClient, run_loadgen


# ----------------------------------------------------------------------
# Fixtures: one server over every oracle family
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph():
    return labeled_erdos_renyi(40, 150, num_labels=4, seed=11)


@pytest.fixture(scope="module")
def oracles(graph):
    landmarks = select_landmarks(graph, 8, strategy="degree", seed=0)
    colors = [i % graph.num_labels for i in range(len(landmarks))]
    return {
        "powcov": PowCovIndex(graph, landmarks).build(),
        "chromland": ChromLandIndex(graph, landmarks, colors).build(),
        "naive": NaivePowersetIndex(graph, landmarks).build(),
        "exact": ExactDijkstraOracle(graph),
    }


@pytest.fixture(scope="module")
def server(graph, oracles):
    registry = GraphRegistry()
    registry.register("g", graph, dict(oracles))
    app = ServeApp(
        registry=registry,
        config=ServeConfig(batch_window=0.001, workers=2),
    )
    with ServerThread(app) as live:
        yield live


def request_json(server, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(
            method, path, body, {"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(raw)
        return response.status, raw.decode("utf-8")
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self, server):
        status, body = request_json(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["graphs"] == 1

    def test_graphs_listing(self, server, graph):
        status, body = request_json(server, "GET", "/graphs")
        assert status == 200
        (entry,) = body["graphs"]
        assert entry["name"] == "g"
        assert entry["num_vertices"] == graph.num_vertices
        assert entry["num_edges"] == graph.num_edges
        assert set(entry["oracles"]) == {
            "powcov", "chromland", "naive", "exact",
        }

    def test_metrics_prometheus_text(self, server):
        request_json(server, "GET", "/healthz")  # ensure some traffic
        status, text = request_json(server, "GET", "/metrics")
        assert status == 200
        assert isinstance(text, str)
        assert "# TYPE repro_serve_http_requests counter" in text
        assert "repro_serve_http_requests" in text

    def test_single_query_each_family(self, server, oracles):
        mask = 0b11
        for kind, oracle in oracles.items():
            status, body = request_json(
                server, "POST", "/graphs/g/query",
                {"source": 1, "target": 7, "mask": mask, "oracle": kind},
            )
            assert status == 200, body
            want = oracle.query(1, 7, mask)
            assert from_wire_distance(body["distance"]) == want
            assert body["reachable"] == (not math.isinf(want))
            assert body["oracle"] == kind

    def test_labels_list_equivalent_to_mask(self, server):
        _, via_labels = request_json(
            server, "POST", "/graphs/g/query",
            {"source": 0, "target": 5, "labels": [0, 2]},
        )
        _, via_mask = request_json(
            server, "POST", "/graphs/g/query",
            {"source": 0, "target": 5, "mask": 0b101},
        )
        assert via_labels["distance"] == via_mask["distance"]

    def test_omitted_mask_is_unconstrained(self, server, graph, oracles):
        _, body = request_json(
            server, "POST", "/graphs/g/query", {"source": 2, "target": 9},
        )
        # The server reports which family answered the default-oracle
        # request; the answer must equal that oracle's unconstrained one.
        want = oracles[body["oracle"]].query(
            2, 9, full_mask(graph.num_labels)
        )
        assert from_wire_distance(body["distance"]) == want


class TestWireIdentity:
    def test_batch_bit_identical_to_execute_batch(
        self, server, graph, oracles
    ):
        """HTTP answers == direct ``execute_batch``, for every family."""
        import random

        rng = random.Random(5)
        top = full_mask(graph.num_labels)
        triples = [
            (
                rng.randrange(graph.num_vertices),
                rng.randrange(graph.num_vertices),
                rng.randrange(1, top + 1),
            )
            for _ in range(60)
        ]
        for kind, oracle in oracles.items():
            status, body = request_json(
                server, "POST", "/graphs/g/query",
                {"queries": [list(t) for t in triples], "oracle": kind},
            )
            assert status == 200, body
            want = execute_batch(oracle, triples)
            got = [from_wire_distance(d) for d in body["distances"]]
            assert got == want, f"{kind} diverged over the wire"

    def test_unreachable_is_null_on_the_wire(self, server):
        # A mask with no labels admits no edges: always unreachable
        # (distinct endpoints).
        status, body = request_json(
            server, "POST", "/graphs/g/query",
            {"source": 0, "target": 1, "mask": 0, "oracle": "exact"},
        )
        assert status == 200
        assert body["distance"] is None
        assert body["reachable"] is False

    def test_wire_distance_roundtrip(self):
        for value in (0.0, 1.5, 7.000000000000001, math.inf):
            assert from_wire_distance(wire_distance(value)) == value


class TestMalformedRequests:
    @pytest.mark.parametrize(
        "method,path,payload,expected",
        [
            ("GET", "/nope", None, 404),
            ("POST", "/graphs/unknown/query", {"source": 0, "target": 1}, 404),
            ("POST", "/graphs/g/query",
             {"source": 0, "target": 1, "oracle": "not-a-family"}, 404),
            ("POST", "/graphs/g/query", {"source": 0}, 400),
            ("POST", "/graphs/g/query", {"source": 0, "target": 10**6}, 400),
            ("POST", "/graphs/g/query", {"source": -1, "target": 1}, 400),
            ("POST", "/graphs/g/query",
             {"source": 0, "target": 1, "mask": -5}, 400),
            ("POST", "/graphs/g/query",
             {"source": 0, "target": 1, "mask": 1, "labels": [0]}, 400),
            ("POST", "/graphs/g/query",
             {"source": 0.5, "target": 1}, 400),
            ("POST", "/graphs/g/query", {"queries": "nope"}, 400),
            ("POST", "/graphs/g/query", {"queries": [[1, 2]]}, 400),
            ("POST", "/graphs/g/query", [1, 2, 3], 400),
            ("DELETE", "/graphs/g/query", None, 405),
        ],
    )
    def test_4xx(self, server, method, path, payload, expected):
        status, body = request_json(server, method, path, payload)
        assert status == expected, body
        assert "error" in body

    def test_invalid_json_body(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/graphs/g/query", b"{not json",
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert b"invalid JSON" in response.read()
        finally:
            conn.close()

    def test_missing_body(self, server):
        status, body = request_json(server, "POST", "/graphs/g/query")
        assert status == 400
        assert "JSON" in body["error"]


# ----------------------------------------------------------------------
# MicroBatcher semantics
# ----------------------------------------------------------------------
def run_async(coro):
    return asyncio.run(coro)


class TestMicroBatcher:
    def test_size_trigger_coalesces(self):
        calls = []

        def execute(triples):
            calls.append(list(triples))
            return [float(s + t + m) for s, t, m in triples]

        async def scenario():
            batcher = MicroBatcher(execute, window=60.0, max_batch=4,
                                   auto_flush=False)
            results = await asyncio.gather(
                batcher.submit([(1, 1, 1), (2, 2, 2)]),
                batcher.submit([(3, 3, 3), (4, 4, 4)]),
            )
            return results

        first, second = run_async(scenario())
        assert len(calls) == 1  # one coalesced engine call
        assert first == [3.0, 6.0]
        assert second == [9.0, 12.0]

    def test_window_zero_flushes_immediately(self):
        calls = []

        def execute(triples):
            calls.append(list(triples))
            return [0.0] * len(triples)

        async def scenario():
            batcher = MicroBatcher(execute, window=0.0, max_batch=100)
            await batcher.submit([(0, 0, 1)])
            await batcher.submit([(0, 0, 1)])

        run_async(scenario())
        assert len(calls) == 2  # no coalescing: one call per request

    def test_error_isolation(self):
        """A poison query fails only the request that carried it."""

        def execute(triples):
            if any(m == 666 for _, _, m in triples):
                raise ValueError("poison")
            return [float(m) for _, _, m in triples]

        async def scenario():
            batcher = MicroBatcher(execute, window=60.0, max_batch=3,
                                   auto_flush=False)
            healthy_a = asyncio.ensure_future(batcher.submit([(0, 0, 1)]))
            poisoned = asyncio.ensure_future(batcher.submit([(0, 0, 666)]))
            healthy_b = asyncio.ensure_future(batcher.submit([(0, 0, 2)]))
            done = await asyncio.gather(
                healthy_a, poisoned, healthy_b, return_exceptions=True
            )
            return done

        got_a, got_poison, got_b = run_async(scenario())
        assert got_a == [1.0]
        assert got_b == [2.0]
        assert isinstance(got_poison, ValueError)

    def test_async_execute_fn(self):
        async def execute(triples):
            await asyncio.sleep(0)
            return [1.0] * len(triples)

        async def scenario():
            batcher = MicroBatcher(execute, window=0.0, max_batch=10)
            return await batcher.submit([(0, 0, 1), (1, 1, 1)])

        assert run_async(scenario()) == [1.0, 1.0]

    def test_answer_count_mismatch_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(lambda t: [0.0], window=0.0, max_batch=10)
            return await batcher.submit([(0, 0, 1), (1, 1, 1)])

        with pytest.raises(RuntimeError, match="answers"):
            run_async(scenario())

    def test_empty_submit(self):
        async def scenario():
            batcher = MicroBatcher(lambda t: [], window=60.0, max_batch=4)
            return await batcher.submit([])

        assert run_async(scenario()) == []


# Arrival plans: per-request query lists + the clock advance before each
# submission (so hypothesis explores windows expiring mid-stream).
_ARRIVALS = st.lists(
    st.tuples(
        st.lists(
            st.tuples(
                st.integers(0, 9), st.integers(0, 9), st.integers(1, 7)
            ),
            min_size=0,
            max_size=4,
        ),
        st.floats(min_value=0.0, max_value=0.004),
    ),
    min_size=1,
    max_size=12,
)


class TestMicroBatcherProperty:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(arrivals=_ARRIVALS, max_batch=st.integers(1, 8))
    def test_order_and_values_match_sequential(self, arrivals, max_batch):
        """For ANY interleaving of arrivals vs window expiry, every request
        gets exactly the answers a sequential ``execute_batch`` would have
        produced, in its own order."""
        executed_batches = []

        def execute(triples):
            executed_batches.append(list(triples))
            # Injective in (s, t, m): equality ⇒ right queries, right order.
            return [s * 10000 + t * 100 + m for s, t, m in triples]

        clock = {"now": 0.0}

        async def scenario():
            batcher = MicroBatcher(
                execute,
                window=0.002,
                max_batch=max_batch,
                clock=lambda: clock["now"],
                auto_flush=False,
            )
            futures = []
            for triples, advance in arrivals:
                clock["now"] += advance
                batcher.poll()  # fire the window if this arrival passed it
                futures.append(
                    asyncio.ensure_future(batcher.submit(list(triples)))
                )
                await asyncio.sleep(0)  # let size-triggered flushes run
            clock["now"] += 1.0
            batcher.poll()  # drain the tail
            return await asyncio.gather(*futures)

        results = asyncio.run(scenario())

        for (triples, _), got in zip(arrivals, results):
            want = [s * 10000 + t * 100 + m for s, t, m in triples]
            assert got == want
        # Conservation: every query executed exactly once, in arrival order.
        flat_executed = [t for b in executed_batches for t in b]
        flat_submitted = [
            tuple(t) for triples, _ in arrivals for t in triples
        ]
        assert flat_executed == flat_submitted


# ----------------------------------------------------------------------
# Loadgen + HttpClient against the live server
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_run_loadgen_round_trip(self, server):
        report = asyncio.run(run_loadgen(
            url=server.url,
            graph="g",
            oracle="powcov",
            clients=3,
            duration=0.5,
            batch_size=4,
            seed=1,
        ))
        assert report.errors == 0
        assert report.requests > 0
        assert report.queries == report.requests * 4
        assert report.p99_seconds >= report.p50_seconds >= 0.0
        payload = report.to_dict()
        assert payload["qps"] > 0
        assert json.dumps(payload)  # JSON-clean

    def test_http_client_maps_errors(self, server):
        async def scenario():
            client = HttpClient.from_url(server.url)
            await client.connect()
            try:
                return await client.request(
                    "POST", "/graphs/missing/query",
                    {"source": 0, "target": 1},
                )
            finally:
                await client.close()

        status, body = asyncio.run(scenario())
        assert status == 404
        assert "error" in body


# ----------------------------------------------------------------------
# Codec units (no socket)
# ----------------------------------------------------------------------
class TestHttpCodec:
    def test_segments_decode(self):
        request = HttpRequest(method="POST", path="/graphs/my%20graph/query")
        assert request.segments == ["graphs", "my graph", "query"]

    def test_json_rejects_empty(self):
        with pytest.raises(HttpError) as excinfo:
            HttpRequest(method="POST", path="/x").json()
        assert excinfo.value.status == 400
