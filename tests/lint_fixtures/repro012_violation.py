# lint-module: repro/perf/scratch.py
"""Fixture: shared-memory lifecycle violations."""

from __future__ import annotations

from multiprocessing import shared_memory


def _leaked(nbytes: int) -> bytes:
    block = shared_memory.SharedMemory(create=True, size=nbytes)  # line 10
    return bytes(block.buf[:4])  # handle dropped: never closed/unlinked


def _use_after_close(nbytes: int) -> "object":
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    block.close()
    block.unlink()
    return block.buf  # line 18: the mapping is gone


def _unlink_before_close(nbytes: int) -> None:
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    block.unlink()  # line 23: segment destroyed while still mapped
    block.close()
