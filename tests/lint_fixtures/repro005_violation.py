# lint-module: repro/core/api.py
"""Fixture: an unannotated public function in an annotated subtree."""

from __future__ import annotations


def estimate(source, target, label_mask):
    return source + target + label_mask
