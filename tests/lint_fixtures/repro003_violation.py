# lint-module: repro/engine/sampling.py
"""Fixture: hidden-global-state randomness in a deterministic subtree."""

from __future__ import annotations

import random

import numpy as np


def _draw() -> float:
    value = random.random()
    noise = np.random.rand()
    rng = np.random.default_rng()
    other = random.Random()
    return value + noise + rng.random() + other.random()
