# lint-module: repro/perf/scratch.py
"""Fixture: widening casts, in-range shifts, same-width compares pass."""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import constrained_bfs


def _widening_cast() -> "np.ndarray":
    narrow = np.zeros(8, dtype=np.int32)
    return narrow.astype(np.int64)  # widening is always safe


def _bounded_shift(num_rows: int) -> "np.ndarray":
    # The bit-parallel MS-BFS idiom: at most 64 lanes per chunk, so the
    # shift count interval is [0, 63] — inside a 64-bit operand.
    chunk = min(64, num_rows)
    return np.uint64(1) << np.arange(chunk, dtype=np.uint64)


def _same_width_compare(graph: object, source: int, mask: int) -> "np.ndarray":
    near = constrained_bfs(graph, source, mask)
    far = constrained_bfs(graph, source, mask)
    return near == far


def _same_width_store() -> "np.ndarray":
    slots = np.zeros(4, dtype=np.int64)
    slots[0] = np.int64(3)
    return slots
