# lint-module: repro/core/serialize.py
"""Fixture: every REPRO001 mutation form, in a module that must not mutate."""

from __future__ import annotations

import numpy as np


def _corrupt(graph: object, value: int) -> None:
    graph.indptr[0] = value
    graph.neighbors.setflags(write=True)
    np.add.at(graph.edge_labels, 0, value)
