# lint-module: repro/perf/scratch.py
"""Fixture: disciplined shared-memory lifecycles pass."""

from __future__ import annotations

from multiprocessing import shared_memory


def _close_then_unlink(nbytes: int) -> int:
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        size = block.size
    finally:
        block.close()
        block.unlink()
    return size


def _escaped_to_caller(nbytes: int) -> "object":
    # Returning the handle transfers cleanup responsibility: no leak.
    return shared_memory.SharedMemory(create=True, size=nbytes)


def _context_managed(nbytes: int) -> int:
    with shared_memory.SharedMemory(create=True, size=nbytes) as block:
        return block.size
