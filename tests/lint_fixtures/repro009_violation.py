# lint-module: repro/perf/scratch.py
"""Fixture: silent dtype narrowing, shift overflow, cross-width compare."""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import constrained_bfs


def _narrowing_cast(rows: "np.ndarray") -> "np.ndarray":
    wide = np.zeros(8, dtype=np.int64)
    return wide.astype(np.int32)  # line 13: int64 -> int32


def _shift_overflow() -> "np.ndarray":
    lanes = np.int32(1)
    out = np.zeros(70, dtype=np.int64)
    for k in range(70):
        out[k] = lanes << k  # line 20: k reaches 69 >= 32
    return out


def _cross_width_compare(graph: object, source: int, mask: int) -> "np.ndarray":
    near = constrained_bfs(graph, source, mask)
    far = near.astype(np.int64)
    return near == far  # line 27: int32 vs int64 distance arrays


def _store_narrowing(level: "np.ndarray") -> "np.ndarray":
    slots = np.zeros(4, dtype=np.int32)
    slots[0] = np.int64(1) + np.int64(2)  # line 32: int64 into int32 cells
    return slots
