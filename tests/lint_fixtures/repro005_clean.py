# lint-module: repro/core/api.py
"""Fixture: only the *public* surface needs annotations."""

from __future__ import annotations


def estimate(source: int, target: int, label_mask: int) -> int:
    def accumulate(parts):
        return sum(parts)

    return accumulate(_expand(source, target, label_mask))


def _expand(source, target, label_mask):
    return [source, target, label_mask]
