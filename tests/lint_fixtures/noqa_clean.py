# lint-module: repro/core/util.py
"""Fixture: a targeted noqa comment suppresses exactly its rule."""

from __future__ import annotations


def _mask_of(label: int) -> int:
    return 1 << label  # noqa: REPRO002
