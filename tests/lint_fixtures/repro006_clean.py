# lint-module: repro/workloads/report.py
"""Fixture: printing under the main guard is a script, not library code."""

from __future__ import annotations


def _render(value: int) -> str:
    return str(value)


if __name__ == "__main__":
    print(_render(3))
