# lint-module: repro/engine/executors.py
"""Fixture: a per-query scalar loop in an executor that should vectorize."""

from __future__ import annotations


class FancyExecutor:
    """Not the designated fallback, so looping the group is a violation."""

    oracle: object

    def execute_group(self, mask_plan: int, group: object) -> list[float]:
        out: list[float] = []
        for s, t in zip(group.sources, group.targets):
            out.append(self.oracle.query(int(s), int(t), mask_plan))
        return out
