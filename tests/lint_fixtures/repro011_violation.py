# lint-module: repro/perf/scratch.py
"""Fixture: call arguments carrying the wrong unit domain."""

from __future__ import annotations

from repro.graph.labelsets import label_bit
from repro.graph.traversal import constrained_bfs


def _mask_as_source(graph: object, label: int) -> "object":
    mask = label_bit(label)
    return constrained_bfs(graph, mask)  # line 12: mask bound to 'source'


def _vertex_as_mask(graph: object, source: int, target: int) -> "object":
    return constrained_bfs(graph, source, mask=target)  # line 16: keyword
