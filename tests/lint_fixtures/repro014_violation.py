# lint-module: repro/engine/session.py
"""Fixture: reaching into the private kernel backends from outside
``repro.kernels`` — every spelling the rule must catch."""

from __future__ import annotations

import repro.kernels._numba
from repro.kernels import _cext
from repro.kernels._numpy import NumpyKernel

from ..kernels._numba import NumbaKernel


def make() -> object:
    return NumpyKernel() or NumbaKernel() or _cext or repro.kernels._numba
