# lint-module: repro/engine/executors.py
"""Fixture: the designated ScalarLoopExecutor fallback may loop per query."""

from __future__ import annotations


class ScalarLoopExecutor:
    """The one executor allowed to draw its loop from the group columns."""

    oracle: object

    def execute_group(self, mask_plan: int, group: object) -> list[float]:
        out: list[float] = []
        for s, t in zip(group.sources, group.targets):
            out.append(self.oracle.query(int(s), int(t), mask_plan))
        return out
