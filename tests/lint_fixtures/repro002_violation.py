# lint-module: repro/core/trie.py
"""Fixture: hand-rolled mask construction outside repro.graph.labelsets."""

from __future__ import annotations

import numpy as np


def _mask_of(label: int) -> int:
    return 1 << label


def _np_masks(labels: np.ndarray) -> np.ndarray:
    return np.left_shift(1, labels)
