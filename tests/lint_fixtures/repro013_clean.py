# lint-module: repro/perf/scratch.py
"""Fixture: read-only maps read, writable maps escaped, copies mutated."""

from __future__ import annotations

import numpy as np

from repro.store.mapped import MappedTable


def _read_only_probe(path: str) -> "np.ndarray":
    view = np.memmap(path, mode="r", dtype=np.float64, shape=(8,))
    _ = view[0]  # reads from a read-only map are fine
    return view  # the handle escapes to the caller: no leak


def _escaped_map(path: str) -> "np.ndarray":
    return np.memmap(path, mode="w+", dtype=np.float64, shape=(8,))


def _mutate_a_copy(key: object, payload: object, bits: object) -> "np.ndarray":
    table = MappedTable(key, payload, bits, 4, 16)
    scratch = table.dist.copy()  # a private copy is writable
    scratch[0] = 0.0
    return scratch
