# lint-module: repro/perf/scratch.py
"""Fixture: arguments match the domains their parameters expect."""

from __future__ import annotations

from repro.graph.labelsets import label_bit
from repro.graph.traversal import constrained_bfs


def _proper_call(graph: object, source: int, label: int) -> "object":
    mask = label_bit(label)
    return constrained_bfs(graph, source, mask=mask)


def _unclassified_args(graph: object, start: int, bits: int) -> "object":
    # Unknown-domain values are never findings: the check only fires on a
    # proven contradiction, not on missing information.
    return constrained_bfs(graph, start, bits)
