# lint-module: repro/perf/timing.py
"""Fixture: monotonic/CPU clocks are the sanctioned timers."""

from __future__ import annotations

import time
from time import perf_counter, process_time


def _elapsed() -> float:
    started = perf_counter()
    cpu0 = process_time()
    _work()
    return (perf_counter() - started) + (time.process_time() - cpu0)


def _sleepy(seconds: float) -> None:
    time.sleep(seconds)


def _work() -> None:
    pass
