# lint-module: repro/core/util.py
"""Fixture: suppression with explicit rule codes is legal."""

from __future__ import annotations


def _mask_of(label: int) -> int:
    return 1 << label  # noqa: REPRO002
