# lint-module: repro/graph/delta.py
"""Fixture: the delta API owns the version-lineage attributes."""

from __future__ import annotations


def _version_child(graph: object, child: object, fingerprint: int) -> None:
    child.version = graph.version + 1
    child.parent_fingerprint = fingerprint
    child.applied_delta = None
