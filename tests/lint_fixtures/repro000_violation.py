# lint-module: repro/core/util.py
"""Fixture: bare ``# noqa`` comments are findings in their own right."""

from __future__ import annotations

VALUE = 1  # noqa
OTHER = 2  # noqa
