# lint-module: repro/perf/scratch.py
"""Fixture: same-domain algebra and unit-free scalars pass."""

from __future__ import annotations

from repro.graph.labelsets import full_mask, label_bit


def _mask_algebra(label: int, num_labels: int) -> int:
    mask = label_bit(label)
    universe = full_mask(num_labels)
    return (mask | universe) & universe  # mask op mask: one domain


def _distance_offsets(distances: int) -> int:
    return distances + 1  # unit-free literal: no mixing


def _vertex_window(source: int, target: int) -> bool:
    return source <= target  # vertex vs vertex: one domain
