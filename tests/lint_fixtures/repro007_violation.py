# lint-module: repro/perf/timing.py
"""Fixture: wall-clock epoch time used for measurement in library code."""

from __future__ import annotations

import time


def _elapsed() -> float:
    started = time.time()
    _work()
    return time.time() - started


def _stamp() -> float:
    return time.time()


def _work() -> None:
    from time import time as _now  # local import of the wall clock

    _now()
