# lint-module: repro/core/serialize.py
"""Fixture: every REPRO008 lineage-write form, outside the delta API."""

from __future__ import annotations


def _forge_version(graph: object, fingerprint: int) -> None:
    graph.version = graph.version + 1
    graph.parent_fingerprint = fingerprint
    graph.applied_delta = None


def _forge_via_setattr(graph: object, fingerprint: int) -> None:
    setattr(graph, "version", 2)
    object.__setattr__(graph, "parent_fingerprint", fingerprint)
