# lint-module: repro/workloads/report.py
"""Fixture: print in library code."""

from __future__ import annotations


def _debug(value: int) -> None:
    print(value)
