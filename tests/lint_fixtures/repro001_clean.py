# lint-module: repro/graph/labeled_graph.py
"""Fixture: the owning module may build and finalize its CSR arrays."""

from __future__ import annotations

import numpy as np


def _finalize(graph: object, value: int) -> None:
    graph.indptr[0] = value
    graph.neighbors.setflags(write=False)
    np.add.at(graph.edge_labels, 0, value)
