# lint-module: repro/perf/scratch.py
"""Fixture: memmap/MappedTable misuse — read-only writes, leaked maps."""

from __future__ import annotations

import numpy as np

from repro.store.mapped import MappedTable


def _write_readonly_map(path: str) -> "np.ndarray":
    view = np.memmap(path, mode="r", dtype=np.float64, shape=(8,))
    view[0] = 1.0  # line 13: mode="r" mapping is read-only
    return view


def _leaked_map(path: str) -> float:
    view = np.memmap(path, mode="w+", dtype=np.float64, shape=(8,))  # line 18
    return float(view[0])  # writable map dropped without release


def _write_table_column(key: object, payload: object, bits: object) -> None:
    table = MappedTable(key, payload, bits, 4, 16)
    table.dist[0] = 0.0  # line 24: mmap-backed column is read-only
