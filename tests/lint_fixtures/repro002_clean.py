# lint-module: repro/core/trie.py
"""Fixture: masks via the labelsets helpers; literal shifts stay legal."""

from __future__ import annotations

from repro.graph.labelsets import label_bit

_FNV_WRAP = 1 << 64


def _mask_of(label: int) -> int:
    return label_bit(label)
