# lint-module: repro/perf/scratch.py
"""Fixture: arithmetic and comparisons mixing unit domains."""

from __future__ import annotations

from repro.graph.labelsets import label_bit


def _mask_plus_vertex(source: int, label: int) -> int:
    mask = label_bit(label)
    return mask + source  # line 11: mask + vertex-id


def _distance_vs_vertex(distances: "object", target: int) -> bool:
    return distances == target  # line 15: distance vs vertex-id
