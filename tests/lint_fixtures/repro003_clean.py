# lint-module: repro/engine/sampling.py
"""Fixture: explicitly seeded randomness is deterministic and allowed."""

from __future__ import annotations

import random

import numpy as np


def _draw(seed: int) -> float:
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    return rng.random() + np_rng.random()
