# lint-module: repro/engine/session.py
"""Fixture: kernel backends resolved through the public registry; other
private-module imports stay legal."""

from __future__ import annotations

from repro.kernels import KernelBackend, resolve_kernel

from ._plan_cache import PlanCache  # private, but not a kernel backend


def make(name: str | None) -> KernelBackend:
    return resolve_kernel(name) or PlanCache
