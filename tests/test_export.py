"""Tests for result export (``repro.eval.export``): CSV/JSON round-trips
and rejection of malformed rows."""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field

import pytest

from repro.eval.export import rows_to_dicts, write_csv, write_json


@dataclass(frozen=True)
class Inner:
    mean: float
    count: int


@dataclass(frozen=True)
class Row:
    name: str
    value: float
    inner: Inner
    ks: tuple[int, ...] = (1, 2)
    notes: list[str] = field(default_factory=list)


ROWS = [
    Row("alpha", 1.5, Inner(mean=0.25, count=4)),
    Row("omega", math.inf, Inner(mean=math.nan, count=0), ks=(3,)),
]


class TestRowsToDicts:
    def test_nested_dataclasses_flatten_with_dotted_keys(self):
        flat = rows_to_dicts(ROWS)[0]
        assert flat["name"] == "alpha"
        assert flat["inner.mean"] == 0.25
        assert flat["inner.count"] == 4
        assert json.loads(flat["ks"]) == [1, 2]

    def test_non_finite_floats_become_strings(self):
        flat = rows_to_dicts(ROWS)[1]
        assert flat["value"] == "inf"
        assert flat["inner.mean"] == "nan"
        assert rows_to_dicts([Row("neg", -math.inf, Inner(0.0, 0))])[0][
            "value"
        ] == "-inf"

    def test_malformed_rows_rejected(self):
        with pytest.raises(TypeError):
            rows_to_dicts([{"not": "a dataclass"}])
        with pytest.raises(TypeError):
            rows_to_dicts([ROWS[0], ("tuple", "row")])


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv(ROWS, path)
        with open(path, newline="", encoding="utf-8") as handle:
            records = list(csv.DictReader(handle))
        assert len(records) == 2
        assert records[0]["name"] == "alpha"
        assert float(records[0]["inner.mean"]) == 0.25
        assert records[1]["value"] == "inf"
        assert json.loads(records[1]["ks"]) == [3]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")

    def test_header_is_union_of_fields(self, tmp_path):
        @dataclass(frozen=True)
        class Extra:
            name: str
            bonus: int

        path = tmp_path / "mixed.csv"
        write_csv([Extra("x", 1)], path)
        with open(path, newline="", encoding="utf-8") as handle:
            assert csv.DictReader(handle).fieldnames == ["name", "bonus"]


class TestJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rows.json"
        write_json(ROWS, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload[0]["inner"] == {"mean": 0.25, "count": 4}
        assert payload[1]["value"] == "inf"
        assert payload[1]["inner"]["mean"] == "nan"
        assert payload[0]["ks"] == [1, 2]


class TestRealTableRows:
    def test_table1_rows_export(self, tmp_path):
        from repro.eval.tables import table1

        rows = table1(scale=0.1, num_pairs=10, seed=3)
        write_csv(rows, tmp_path / "table1.csv")
        write_json(rows, tmp_path / "table1.json")
        with open(tmp_path / "table1.csv", newline="", encoding="utf-8") as handle:
            records = list(csv.DictReader(handle))
        assert len(records) == len(rows)
        assert records[0]["dataset"] == rows[0].dataset
