"""Unit + property tests for the bitmask label-set algebra."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.graph.labelsets import (
    EMPTY,
    LabelUniverse,
    full_mask,
    is_proper_subset,
    is_subset,
    iter_all_masks,
    iter_masks_of_size,
    iter_one_added,
    iter_one_removed,
    iter_submasks,
    labels_from_mask,
    mask_from_labels,
    mask_to_str,
    popcount,
    singleton_masks,
)

masks = st.integers(min_value=0, max_value=(1 << 12) - 1)


class TestMaskConversion:
    def test_empty(self):
        assert mask_from_labels([]) == EMPTY
        assert labels_from_mask(EMPTY) == []

    def test_roundtrip_example(self):
        assert mask_from_labels([0, 2]) == 5
        assert labels_from_mask(5) == [0, 2]

    def test_duplicates_collapse(self):
        assert mask_from_labels([1, 1, 1]) == 2

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError):
            mask_from_labels([-1])

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            labels_from_mask(-3)

    @given(st.sets(st.integers(min_value=0, max_value=20)))
    def test_roundtrip_property(self, labels):
        assert labels_from_mask(mask_from_labels(labels)) == sorted(labels)


class TestPopcountAndFullMask:
    @given(masks)
    def test_popcount_matches_bin(self, mask):
        assert popcount(mask) == bin(mask).count("1")

    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (3, 7), (8, 255)])
    def test_full_mask_values(self, n, expected):
        assert full_mask(n) == expected

    def test_full_mask_negative(self):
        with pytest.raises(ValueError):
            full_mask(-1)

    def test_singletons(self):
        assert singleton_masks(3) == [1, 2, 4]


class TestSubsetPredicates:
    @given(masks, masks)
    def test_is_subset_matches_sets(self, a, b):
        set_a, set_b = set(labels_from_mask(a)), set(labels_from_mask(b))
        assert is_subset(a, b) == set_a.issubset(set_b)

    @given(masks, masks)
    def test_proper_subset(self, a, b):
        set_a, set_b = set(labels_from_mask(a)), set(labels_from_mask(b))
        assert is_proper_subset(a, b) == (set_a < set_b)

    def test_empty_is_subset_of_everything(self):
        assert is_subset(0, 0) and is_subset(0, 7)
        assert not is_proper_subset(0, 0)


class TestEnumeration:
    @given(st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_submask_count(self, mask):
        subs = list(iter_submasks(mask))
        assert len(subs) == 1 << popcount(mask)
        assert len(set(subs)) == len(subs)
        assert all(is_subset(s, mask) for s in subs)

    @given(st.integers(min_value=1, max_value=(1 << 10) - 1))
    def test_one_removed(self, mask):
        outs = list(iter_one_removed(mask))
        assert len(outs) == popcount(mask)
        for out in outs:
            assert popcount(out) == popcount(mask) - 1
            assert is_proper_subset(out, mask)

    @given(st.integers(min_value=0, max_value=(1 << 8) - 1))
    def test_one_added(self, mask):
        outs = list(iter_one_added(mask, 8))
        assert len(outs) == 8 - popcount(mask)
        for out in outs:
            assert popcount(out) == popcount(mask) + 1
            assert is_subset(mask, out)

    @pytest.mark.parametrize("size,num_labels", [(0, 5), (1, 5), (3, 5), (5, 5)])
    def test_masks_of_size(self, size, num_labels):
        got = sorted(iter_masks_of_size(size, num_labels))
        expected = sorted(
            mask_from_labels(combo)
            for combo in itertools.combinations(range(num_labels), size)
        )
        assert got == expected

    def test_masks_of_size_too_big(self):
        assert list(iter_masks_of_size(4, 3)) == []

    def test_masks_of_size_validation(self):
        with pytest.raises(ValueError):
            list(iter_masks_of_size(-1, 3))

    def test_iter_all_masks(self):
        assert list(iter_all_masks(3)) == list(range(1, 8))
        assert list(iter_all_masks(3, include_empty=True)) == list(range(8))


class TestRendering:
    def test_mask_to_str_ids(self):
        assert mask_to_str(5) == "{0,2}"

    def test_mask_to_str_names(self):
        assert mask_to_str(5, ["r", "g", "b"]) == "{r,b}"

    def test_empty_render(self):
        assert mask_to_str(0) == "{}"


class TestLabelUniverse:
    def test_basic(self):
        universe = LabelUniverse(["red", "green", "blue"])
        assert len(universe) == 3
        assert universe.mask(["red", "blue"]) == 5
        assert universe.names_from_mask(5) == ["red", "blue"]
        assert universe.full_mask() == 7

    def test_add_idempotent(self):
        universe = LabelUniverse([])
        assert universe.add("x") == 0
        assert universe.add("x") == 0
        assert universe.add("y") == 1

    def test_lookup(self):
        universe = LabelUniverse(["a", "b"])
        assert universe.id("b") == 1
        assert universe.name(0) == "a"
        assert "a" in universe
        assert "z" not in universe
        with pytest.raises(KeyError):
            universe.id("z")

    def test_iteration_order(self):
        universe = LabelUniverse(["c", "a", "b"])
        assert list(universe) == ["c", "a", "b"]
        assert universe.names == ["c", "a", "b"]
