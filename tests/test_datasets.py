"""Tests for the dataset registry and the paper's toy figures."""

from __future__ import annotations

import math

import pytest

from repro.graph.datasets import (
    DATASETS,
    PAPER_TABLE1,
    dataset_names,
    figure1_graph,
    figure2_graph,
    figure5_graph,
    load_dataset,
    paper_synthetic,
    toy_two_triangles,
)
from repro.graph.traversal import bidirectional_constrained_bfs


class TestRegistry:
    def test_names(self):
        assert dataset_names() == [
            "biogrid-sim", "biomine-sim", "string-sim", "dblp-sim", "youtube-sim",
        ]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("no-such-thing")

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_label_counts_match_paper(self, name):
        graph, spec = load_dataset(name, scale=0.1)
        assert graph.num_labels == spec.num_labels

    def test_scale_changes_size(self):
        small, _ = load_dataset("biogrid-sim", scale=0.1)
        large, _ = load_dataset("biogrid-sim", scale=0.4)
        assert large.num_vertices > small.num_vertices

    def test_deterministic(self):
        a, _ = load_dataset("dblp-sim", scale=0.1, seed=5)
        b, _ = load_dataset("dblp-sim", scale=0.1, seed=5)
        assert a == b

    def test_paper_metadata(self):
        spec = PAPER_TABLE1["youtube"]
        assert spec.paper_vertices == 15_088
        assert spec.num_labels == 5
        assert spec.paper_diameter == 6

    def test_paper_synthetic_sizes(self):
        g = paper_synthetic(6, num_vertices=800, num_edges=4000)
        assert g.num_vertices == 800
        assert g.num_labels == 6

    def test_paper_synthetic_validation(self):
        with pytest.raises(ValueError):
            paper_synthetic(1)


class TestFigure1:
    def test_caption_distances(self):
        graph, s, t = figure1_graph()
        mask = graph.mask
        assert bidirectional_constrained_bfs(graph, s, t, mask(["r"])) == 4
        assert bidirectional_constrained_bfs(graph, s, t, mask(["r", "g"])) == 3
        assert (
            bidirectional_constrained_bfs(graph, s, t, mask(["r", "g", "o"])) == 2
        )

    def test_green_only_disconnects(self):
        graph, s, t = figure1_graph()
        assert math.isinf(
            bidirectional_constrained_bfs(graph, s, t, graph.mask(["g"]))
        )


class TestFigure2:
    def test_three_path_label_sets(self):
        graph, x, u = figure2_graph()
        mask = graph.mask
        assert bidirectional_constrained_bfs(graph, x, u, mask(["o"])) == 2
        assert bidirectional_constrained_bfs(graph, x, u, mask(["r", "g"])) == 2
        assert bidirectional_constrained_bfs(graph, x, u, mask(["r", "o"])) == 2
        assert math.isinf(bidirectional_constrained_bfs(graph, x, u, mask(["r"])))


class TestFigure5:
    def test_two_color_path(self):
        graph, u, x, v = figure5_graph()
        mask = graph.mask
        assert bidirectional_constrained_bfs(graph, u, v, mask(["r", "g"])) == 2
        assert math.isinf(bidirectional_constrained_bfs(graph, u, v, mask(["r"])))


class TestToyFixtures:
    def test_two_triangles(self):
        g = toy_two_triangles()
        assert g.num_vertices == 5
        assert g.num_edges == 7
        assert g.num_labels == 3
