"""Edge-case hardening tests across the whole stack."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    ChromLandIndex,
    ExactOracle,
    NaivePowersetIndex,
    PowCovIndex,
)
from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.traversal import (
    bidirectional_constrained_bfs,
    constrained_bfs,
    estimate_diameter,
    monochromatic_sp_labels,
)


def single_edge_graph() -> EdgeLabeledGraph:
    return EdgeLabeledGraph.from_edges(2, [(0, 1, 0)], num_labels=1)


class TestTinyGraphs:
    def test_single_edge_everything(self):
        g = single_edge_graph()
        assert bidirectional_constrained_bfs(g, 0, 1, 1) == 1.0
        index = PowCovIndex(g, [0]).build()
        assert index.query(0, 1, 1) == 1.0
        chrom = ChromLandIndex(g, [0], [0]).build()
        assert chrom.query(0, 1, 1) == 2.0 or chrom.query(0, 1, 1) == 1.0

    def test_two_isolated_vertices(self):
        g = EdgeLabeledGraph.from_edges(2, [], num_labels=1)
        assert math.isinf(bidirectional_constrained_bfs(g, 0, 1, 1))
        assert estimate_diameter(g) == 0
        # Landmark with no incident edges: empty index, still answers.
        index = PowCovIndex(g, [0]).build()
        assert math.isinf(index.query(0, 1, 1))
        assert index.index_size_entries() == 0

    def test_singleton_graph(self):
        g = EdgeLabeledGraph.from_edges(1, [], num_labels=1)
        assert constrained_bfs(g, 0, 1).tolist() == [0]
        assert monochromatic_sp_labels(g, 0).tolist() == [1]

    def test_all_vertices_as_landmarks(self):
        g = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 1), (2, 3, 0)], num_labels=2
        )
        index = PowCovIndex(g, [0, 1, 2, 3]).build()
        exact = ExactOracle(g)
        for s in range(4):
            for t in range(4):
                for mask in (1, 2, 3):
                    assert index.query(s, t, mask) == exact.query(s, t, mask)


class TestHighLabelCounts:
    def test_many_labels_traversal(self):
        """The substrate handles |L| near the mask-cache limit."""
        num_labels = 40
        edges = [(i, i + 1, i % num_labels) for i in range(50)]
        g = EdgeLabeledGraph.from_edges(51, edges, num_labels=num_labels)
        full = (1 << num_labels) - 1
        assert bidirectional_constrained_bfs(g, 0, 50, full) == 50.0
        # constraint missing label 5 cuts the line at edge 5
        cut = full ^ (1 << 5)
        assert math.isinf(bidirectional_constrained_bfs(g, 0, 50, cut))
        assert bidirectional_constrained_bfs(g, 0, 5, cut) == 5.0

    def test_chromland_many_labels(self):
        num_labels = 30
        edges = [(i, i + 1, i % num_labels) for i in range(40)]
        g = EdgeLabeledGraph.from_edges(41, edges, num_labels=num_labels)
        index = ChromLandIndex(g, [10, 20], [10 % num_labels, 19]).build()
        assert index.num_landmarks == 2

    def test_naive_refuses_wide_graphs(self):
        edges = [(i, i + 1, i % 20) for i in range(25)]
        g = EdgeLabeledGraph.from_edges(26, edges, num_labels=20)
        with pytest.raises(ValueError, match="exponential"):
            NaivePowersetIndex(g, [0])


class TestBuilderPathological:
    def test_vertex_named_like_int(self):
        builder = GraphBuilder()
        builder.add_edge("0", "1", "l")
        builder.add_edge(0, 1, "l")  # distinct names: "0" != 0
        g = builder.build()
        assert g.num_vertices == 4

    def test_very_dense_small_graph(self):
        builder = GraphBuilder()
        for i in range(8):
            for j in range(i + 1, 8):
                builder.add_edge(i, j, (i + j) % 3)
        g = builder.build()
        assert g.num_edges == 28
        exact = ExactOracle(g)
        assert exact.query(0, 7, 0b111) == 1.0


class TestLargeMaskSafety:
    def test_mask_beyond_labels_is_harmless(self):
        """Bits above num_labels in the constraint are ignored."""
        g = single_edge_graph()
        assert bidirectional_constrained_bfs(g, 0, 1, 0b1111) == 1.0
        index = PowCovIndex(g, [0]).build()
        assert index.query(0, 1, 0b1111) == 1.0

    def test_unreachable_answer_consistency(self):
        g = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (2, 3, 1)], num_labels=2
        )
        exact = ExactOracle(g)
        index = PowCovIndex(g, [0, 2]).build()
        chrom = ChromLandIndex(g, [0, 2], [0, 1]).build()
        for mask in (1, 2, 3):
            for s, t in ((0, 2), (1, 3), (0, 3)):
                assert math.isinf(exact.query(s, t, mask))
                assert math.isinf(index.query(s, t, mask))
                assert math.isinf(chrom.query(s, t, mask))
