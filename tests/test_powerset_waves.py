"""Tests for the wave-batched TraversePowerset builder.

The contract under test is *bit-identity*: the wave builder must produce
exactly the entries (and pruning counters) of the scalar
``traverse_powerset`` and of ``brute_force_sp_minimal``, on undirected and
directed graphs, under every Observation-flag combination, and through
every ``PowCovIndex`` storage layout and parallel backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.powcov import (
    PowCovIndex,
    get_default_builder,
    set_default_builder,
    traverse_powerset_waves,
    wave_schedule,
)
from repro.core.powcov.spminimal import (
    brute_force_sp_minimal,
    traverse_powerset,
)
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import popcount
from repro.perf.parallel import ParallelConfig


def directed_random(n=40, m=140, labels=4, seed=0) -> EdgeLabeledGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((u, v, int(rng.integers(labels))))
    return EdgeLabeledGraph.from_edges(
        n, sorted(edges), num_labels=labels, directed=True
    )


class TestWaveSchedule:
    def test_groups_by_cardinality_ascending(self):
        waves = wave_schedule([0b111, 0b1, 0b11, 0b100, 0b110, 0b101])
        assert waves == [[0b1, 0b100], [0b11, 0b101, 0b110], [0b111]]

    def test_waves_sorted_and_cover_input(self):
        masks = [29, 3, 17, 12, 31, 1, 7]
        waves = wave_schedule(masks)
        sizes = [popcount(w[0]) for w in waves]
        assert sizes == sorted(sizes)
        for wave in waves:
            assert wave == sorted(wave)
            assert len({popcount(m) for m in wave}) == 1
        assert sorted(m for wave in waves for m in wave) == sorted(masks)

    def test_empty(self):
        assert wave_schedule([]) == []


class TestBitIdentity:
    """Wave builder == scalar builder == brute force, entry for entry."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(10, 35), st.integers(10, 70), st.integers(2, 5),
        st.integers(0, 500),
    )
    def test_wave_equals_scalar_and_brute(self, n, m, labels, seed):
        g = labeled_erdos_renyi(n, m, num_labels=labels, seed=seed)
        landmark = seed % n
        wave = traverse_powerset_waves(g, landmark)
        assert wave.entries == traverse_powerset(g, landmark).entries
        assert wave.entries == brute_force_sp_minimal(g, landmark).entries

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 300))
    def test_wave_equals_scalar_directed(self, seed):
        g = directed_random(seed=seed)
        landmark = seed % g.num_vertices
        wave = traverse_powerset_waves(g, landmark)
        assert wave.entries == traverse_powerset(g, landmark).entries

    @pytest.mark.parametrize(
        "flags",
        [
            dict(use_obs1=False),
            dict(use_obs2=False),
            dict(use_obs3=False),
            dict(use_obs4=False),
            dict(use_obs1=False, use_obs2=False, use_obs3=False, use_obs4=False),
            dict(use_obs2=False, use_obs4=False),
        ],
    )
    def test_every_pruning_combination_is_equivalent(self, flags):
        g = labeled_erdos_renyi(30, 70, num_labels=4, seed=11)
        expected = brute_force_sp_minimal(g, 3).entries
        assert traverse_powerset_waves(g, 3, **flags).entries == expected

    @pytest.mark.parametrize("seed", range(3))
    def test_counters_match_scalar(self, seed):
        # Not just the entries: the pruning statistics (Table 3's columns)
        # must agree, so the wave builder reports the same SSSP count,
        # one-removed test count, and Observation-4 hit count.
        g = labeled_erdos_renyi(32, 85, num_labels=4, seed=seed)
        scalar = traverse_powerset(g, 1)
        wave = traverse_powerset_waves(g, 1)
        assert wave.num_sssp == scalar.num_sssp
        assert wave.num_full_tests == scalar.num_full_tests
        assert wave.num_auto_minimal == scalar.num_auto_minimal

    def test_counters_match_scalar_without_obs4(self):
        g = labeled_erdos_renyi(32, 85, num_labels=4, seed=5)
        scalar = traverse_powerset(g, 2, use_obs4=False)
        wave = traverse_powerset_waves(g, 2, use_obs4=False)
        assert wave.num_sssp == scalar.num_sssp
        assert wave.num_full_tests == scalar.num_full_tests
        assert wave.num_auto_minimal == scalar.num_auto_minimal == 0

    @pytest.mark.parametrize("batch_rows", [1, 2, 3, 7, 1024])
    def test_batch_rows_chunking_is_invisible(self, batch_rows):
        g = labeled_erdos_renyi(28, 70, num_labels=5, seed=4)
        expected = traverse_powerset_waves(g, 0).entries
        got = traverse_powerset_waves(g, 0, batch_rows=batch_rows).entries
        assert got == expected

    def test_batch_rows_must_be_positive(self):
        g = labeled_erdos_renyi(10, 20, num_labels=2, seed=0)
        with pytest.raises(ValueError, match="batch_rows"):
            traverse_powerset_waves(g, 0, batch_rows=0)

    def test_isolated_landmark(self):
        g = EdgeLabeledGraph.from_edges(5, [(1, 2, 0), (2, 3, 1)], num_labels=2)
        result = traverse_powerset_waves(g, 0)
        assert result.entries == traverse_powerset(g, 0).entries == {}


class TestIndexIntegration:
    def test_wave_builders_match_scalar_across_storages(self):
        graph = labeled_erdos_renyi(32, 80, num_labels=4, seed=8)
        landmarks = [0, 11, 22]
        reference = PowCovIndex(graph, landmarks, builder="traverse").build()
        for builder in ("wave", "wave-paper"):
            for storage in ("flat", "packed", "trie"):
                index = PowCovIndex(
                    graph, landmarks, builder=builder, storage=storage
                ).build()
                for s in range(0, 32, 5):
                    for t in range(1, 32, 6):
                        for mask in range(1, 16):
                            assert index.query(s, t, mask) == reference.query(
                                s, t, mask
                            ), (builder, storage, s, t, mask)

    @pytest.mark.parametrize(
        "parallel",
        [
            ParallelConfig(num_workers=2, backend="thread"),
            ParallelConfig(num_workers=2, backend="process"),
        ],
        ids=["thread", "process"],
    )
    def test_wave_builder_under_parallel_backends(self, parallel):
        graph = labeled_erdos_renyi(30, 75, num_labels=3, seed=12)
        landmarks = [0, 10, 20, 29]
        serial = PowCovIndex(graph, landmarks, builder="wave").build()
        other = PowCovIndex(graph, landmarks, builder="wave").build(
            parallel=parallel
        )
        for s in range(0, 30, 4):
            for t in range(1, 30, 5):
                for mask in range(1, 8):
                    assert other.query(s, t, mask) == serial.query(s, t, mask)


class TestDefaultBuilder:
    def test_default_is_traverse(self):
        assert get_default_builder() == "traverse"

    def test_set_and_restore(self):
        try:
            set_default_builder("wave")
            assert get_default_builder() == "wave"
            # An index constructed with builder=None picks up the default.
            graph = labeled_erdos_renyi(24, 55, num_labels=3, seed=3)
            index = PowCovIndex(graph, [0, 12])
            assert index.builder == "wave"
        finally:
            set_default_builder(None)
        assert get_default_builder() == "traverse"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="builder"):
            set_default_builder("psychic")
        assert get_default_builder() == "traverse"
