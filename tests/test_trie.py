"""Tests for the label-set prefix tree, including hypothesis cross-checks."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.trie import LabelSetTrie
from repro.graph.labelsets import is_subset

mask_sets = st.sets(st.integers(min_value=1, max_value=(1 << 8) - 1), max_size=24)
masks = st.integers(min_value=0, max_value=(1 << 8) - 1)


class TestBasics:
    def test_empty_trie(self):
        trie = LabelSetTrie()
        assert len(trie) == 0
        assert not trie.contains_subset_of(0b111)
        assert 0b1 not in trie

    def test_insert_and_contains(self):
        trie = LabelSetTrie()
        assert trie.insert(0b011)
        assert not trie.insert(0b011)  # duplicate
        assert 0b011 in trie
        assert 0b001 not in trie  # prefixes are not members
        assert len(trie) == 1

    def test_init_from_iterable(self):
        trie = LabelSetTrie(iter([1, 2, 3]))
        assert len(trie) == 3

    def test_empty_set_membership(self):
        trie = LabelSetTrie()
        trie.insert(0)
        assert 0 in trie
        assert trie.contains_subset_of(0)  # ∅ ⊆ anything
        assert trie.contains_subset_of(0b101)

    def test_doctest_example(self):
        trie = LabelSetTrie()
        trie.insert(0b011)
        trie.insert(0b100)
        assert trie.contains_subset_of(0b111)
        assert not trie.contains_subset_of(0b001)

    def test_node_count_shares_prefixes(self):
        trie = LabelSetTrie()
        trie.insert(0b0011)  # {0,1}
        trie.insert(0b0111)  # {0,1,2}
        # root + 0 + 1 + 2 nodes
        assert trie.node_count() == 4


class TestAgainstNaive:
    @given(mask_sets, masks)
    def test_contains_subset_of(self, stored, constraint):
        trie = LabelSetTrie(iter(stored))
        expected = any(is_subset(s, constraint) for s in stored)
        assert trie.contains_subset_of(constraint) == expected

    @given(mask_sets, masks)
    def test_subsets_of(self, stored, constraint):
        trie = LabelSetTrie(iter(stored))
        expected = sorted(s for s in stored if is_subset(s, constraint))
        assert sorted(trie.subsets_of(constraint)) == expected

    @given(mask_sets, masks)
    def test_supersets_of(self, stored, query):
        trie = LabelSetTrie(iter(stored))
        expected = sorted(s for s in stored if is_subset(query, s))
        assert sorted(trie.supersets_of(query)) == expected

    @given(mask_sets)
    def test_iter_masks_roundtrip(self, stored):
        trie = LabelSetTrie(iter(stored))
        assert sorted(trie.iter_masks()) == sorted(stored)
        assert len(trie) == len(stored)

    @given(mask_sets, masks)
    def test_membership(self, stored, probe):
        trie = LabelSetTrie(iter(stored))
        assert (probe in trie) == (probe in stored)
