"""Smoke tests for the example scripts.

Each example must import cleanly (no side effects at import time) and its
helper functions must work on miniature inputs.  Full runs are exercised
manually / in CI-nightly, not here — they take tens of seconds each.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "knowledge_graph_search",
    "protein_pathways",
    "link_prediction_features",
    "road_network_labels",
    "oracle_service",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_without_side_effects(name):
    module = load_example(name)
    assert hasattr(module, "main") or hasattr(module, "figure1_demo")


def test_examples_all_present():
    found = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert set(ALL_EXAMPLES) <= found


class TestExampleHelpers:
    def test_knowledge_graph_builder(self):
        module = load_example("knowledge_graph_search")
        graph = module.build_knowledge_graph(num_entities=300, seed=1)
        assert graph.num_labels == len(module.PREDICATES)

    def test_knowledge_graph_top_related(self):
        module = load_example("knowledge_graph_search")
        from repro.core import ExactOracle
        graph = module.build_knowledge_graph(num_entities=200, seed=1)
        oracle = ExactOracle(graph)
        ranking = module.top_related(oracle, 0, range(1, 50), 0b1111111, top=3)
        assert len(ranking) <= 3
        assert all(d >= 1 for d, _ in ranking)

    def test_link_prediction_spearman(self):
        module = load_example("link_prediction_features")
        import numpy as np
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert module.spearman(a, a) == pytest.approx(1.0)
        assert module.spearman(a, -a) == pytest.approx(-1.0)
        assert module.spearman(a, np.zeros(4)) == 1.0  # degenerate: constant

    def test_protein_pathway_discovery(self):
        module = load_example("protein_pathways")
        import numpy as np
        from repro.graph.datasets import load_dataset
        graph, _ = load_dataset("biogrid-sim", scale=0.15, seed=11)
        rng = np.random.default_rng(0)
        path, labels = module.discover_reference_pathway(graph, rng)
        assert len(path) == 5
        assert len(set(path)) == 5
        assert labels  # at least one interaction type
