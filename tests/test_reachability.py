"""Tests for the label-constrained reachability layer."""

from __future__ import annotations

import pytest

from repro.core.reachability import (
    LandmarkReachabilityIndex,
    exact_reachable,
    minimal_reachability_sets,
)
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labelsets import is_subset, iter_submasks
from repro.graph.traversal import UNREACHABLE, constrained_bfs

from conftest import make_line


class TestExactReachable:
    def test_line(self):
        g = make_line([0, 1, 0], num_labels=2)
        assert exact_reachable(g, 0, 3, 0b11)
        assert not exact_reachable(g, 0, 3, 0b01)
        assert exact_reachable(g, 0, 1, 0b01)
        assert exact_reachable(g, 2, 2, 0)  # self-reachability


class TestMinimalReachabilitySets:
    def test_definition_on_random_graphs(self):
        """C reaches u iff C contains a minimal mask; masks are minimal."""
        for seed in range(3):
            g = labeled_erdos_renyi(25, 60, num_labels=3, seed=seed)
            source = 0
            minimal = minimal_reachability_sets(g, source)
            reach = {
                mask: constrained_bfs(g, source, mask)
                for mask in range(1, 8)
            }
            for u in range(1, g.num_vertices):
                masks = minimal.get(u, [])
                for constraint in range(1, 8):
                    truly = reach[constraint][u] != UNREACHABLE
                    certified = any(is_subset(m, constraint) for m in masks)
                    assert certified == truly, (seed, u, constraint)
                # minimality: removing any label breaks reachability
                for mask in masks:
                    for sub in iter_submasks(mask):
                        if sub in (0, mask):
                            continue
                        assert reach[sub][u] == UNREACHABLE, (u, mask, sub)

    def test_line_minimal_sets(self):
        g = make_line([0, 1, 0], num_labels=2)
        minimal = minimal_reachability_sets(g, 0)
        assert minimal[1] == [0b01]
        assert minimal[2] == [0b11]
        assert minimal[3] == [0b11]


class TestLandmarkReachabilityIndex:
    @pytest.fixture(scope="class")
    def setup(self):
        g = labeled_erdos_renyi(50, 140, num_labels=3, seed=8)
        index = LandmarkReachabilityIndex(g, [0, 10, 20, 30, 40]).build()
        return g, index

    def test_soundness(self, setup):
        """A certified 'reachable' is always truly reachable."""
        g, index = setup
        for s in range(0, 50, 4):
            for t in range(1, 50, 5):
                for mask in range(1, 8):
                    if index.reachable(s, t, mask):
                        assert exact_reachable(g, s, t, mask), (s, t, mask)

    def test_exact_fallback_is_exact(self, setup):
        g, index = setup
        for s in range(0, 50, 6):
            for t in range(1, 50, 7):
                for mask in range(1, 8):
                    assert index.reachable_exact(s, t, mask) == exact_reachable(
                        g, s, t, mask
                    )

    def test_landmark_source_definite_negative(self, setup):
        """From a landmark, the certificate answer is exact, both ways."""
        g, index = setup
        s = 10  # a landmark
        for t in range(1, 50, 3):
            for mask in range(1, 8):
                assert index.reachable(s, t, mask) == exact_reachable(
                    g, s, t, mask
                )

    def test_certificate_rate(self, setup):
        g, index = setup
        queries = [
            (s, t, 7)
            for s in range(0, 50, 5)
            for t in range(1, 50, 5)
            if s != t and exact_reachable(g, s, t, 7)
        ]
        rate = index.certificate_rate(queries)
        assert 0.5 <= rate <= 1.0  # full-label queries are easy to certify

    def test_query_before_build(self):
        g = labeled_erdos_renyi(10, 20, num_labels=2, seed=0)
        index = LandmarkReachabilityIndex(g, [0])
        with pytest.raises(RuntimeError):
            index.reachable(0, 1, 1)

    def test_empty_certificate_rate_rejected(self, setup):
        _, index = setup
        with pytest.raises(ValueError):
            index.certificate_rate([])
