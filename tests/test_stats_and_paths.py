"""Tests for graph statistics, witness paths, and result export."""

from __future__ import annotations

import json

import pytest

from repro.graph.datasets import load_dataset
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.stats import (
    degree_statistics,
    graph_profile,
    label_entropy,
    per_label_connectivity,
)
from repro.graph.traversal import (
    UNREACHABLE,
    constrained_bfs,
    constrained_bfs_parents,
    constrained_shortest_path,
)

from conftest import make_line


class TestLabelEntropy:
    def test_uniform(self):
        g = EdgeLabeledGraph.from_edges(
            5, [(0, 1, 0), (1, 2, 1), (2, 3, 2), (3, 4, 3)], num_labels=4
        )
        assert label_entropy(g) == pytest.approx(2.0)

    def test_single_label(self):
        g = make_line([0, 0, 0], num_labels=1)
        assert label_entropy(g) == 0.0

    def test_skew_lowers_entropy(self):
        uniform = labeled_erdos_renyi(100, 400, 4, label_exponent=0.0, seed=1)
        skewed = labeled_erdos_renyi(100, 400, 4, label_exponent=2.0, seed=1)
        assert label_entropy(skewed) < label_entropy(uniform)


class TestPerLabelConnectivity:
    def test_line_two_labels(self):
        g = make_line([0, 0, 1], num_labels=2)
        stats = per_label_connectivity(g)
        assert stats[0].num_edges == 2
        assert stats[0].num_components == 1
        assert stats[0].giant_fraction == 1.0
        assert stats[1].num_edges == 1

    def test_unused_label(self):
        g = make_line([0], num_labels=3)
        stats = per_label_connectivity(g)
        assert stats[2].num_edges == 0
        assert stats[2].giant_fraction == 0.0

    def test_fragmented_label(self):
        g = EdgeLabeledGraph.from_edges(
            6, [(0, 1, 0), (2, 3, 0), (4, 5, 1)], num_labels=2
        )
        stats = per_label_connectivity(g)
        assert stats[0].num_components == 2
        assert stats[0].giant_fraction == pytest.approx(0.5)


class TestDegreeStatistics:
    def test_regular_graph_zero_gini(self):
        g = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)], num_labels=1
        )
        mean, maximum, gini = degree_statistics(g)
        assert mean == 2.0
        assert maximum == 2
        assert gini == pytest.approx(0.0, abs=1e-9)

    def test_star_high_gini(self):
        g = EdgeLabeledGraph.from_edges(
            7, [(0, i, 0) for i in range(1, 7)], num_labels=1
        )
        _, maximum, gini = degree_statistics(g)
        assert maximum == 6
        assert gini > 0.3


class TestGraphProfile:
    def test_profile_fields(self):
        g, _ = load_dataset("youtube-sim", scale=0.15)
        profile = graph_profile(g)
        assert profile.num_vertices == g.num_vertices
        assert sum(profile.label_frequencies) == g.num_edges
        assert 0 < profile.dominant_label_share <= 1
        assert 0 <= profile.mean_giant_fraction <= 1
        assert len(profile.per_label) == g.num_labels

    def test_powerlaw_vs_clustered_gini(self):
        yt, _ = load_dataset("youtube-sim", scale=0.15)
        bio, _ = load_dataset("biogrid-sim", scale=0.15)
        assert graph_profile(yt).degree_gini > graph_profile(bio).degree_gini


class TestWitnessPaths:
    def test_parents_consistent_with_distances(self, random_graph):
        dist, parents = constrained_bfs_parents(random_graph, 0, 0b0111)
        for u in range(random_graph.num_vertices):
            if dist[u] > 0:
                p = int(parents[u])
                assert dist[p] == dist[u] - 1
                assert random_graph.has_edge(p, u)

    def test_path_is_valid_and_shortest(self, random_graph):
        mask = 0b0011
        dist = constrained_bfs(random_graph, 0, mask)
        for target in range(1, random_graph.num_vertices, 5):
            path = constrained_shortest_path(random_graph, 0, target, mask)
            if dist[target] == UNREACHABLE:
                assert path is None
                continue
            assert path[0] == 0 and path[-1] == target
            assert len(path) - 1 == dist[target]
            for a, b in zip(path, path[1:]):
                # any parallel edge counts; at least one must be in mask
                labels = [
                    lab for v, lab in random_graph.iter_neighbors(a) if v == b
                ]
                assert any(mask & (1 << lab) for lab in labels)

    def test_trivial_path(self, random_graph):
        assert constrained_shortest_path(random_graph, 3, 3, 1) == [3]


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        from repro.eval.export import rows_to_dicts, write_csv
        from repro.eval.tables import Table2Row

        rows = [
            Table2Row("d1", 4, 5.0, 10.0, 9.12, 13.39),
            Table2Row("d2", 5, 7.0, 20.0, None, None),
        ]
        dicts = rows_to_dicts(rows)
        assert dicts[0]["dataset"] == "d1"
        path = tmp_path / "t2.csv"
        write_csv(rows, path)
        text = path.read_text()
        assert "dataset" in text and "d2" in text

    def test_json_handles_inf(self, tmp_path):
        from repro.eval.export import write_json
        from repro.eval.tables import Table3Row

        rows = [Table3Row("d", 4, 0.1, float("nan"), float("inf"),
                          0, 0, 0, 0)]
        path = tmp_path / "t3.json"
        write_json(rows, path)
        payload = json.loads(path.read_text())
        assert payload[0]["brute_seconds"] == "inf"
        assert payload[0]["traverse_seconds"] == "nan"

    def test_nested_dataclasses_flatten(self, tmp_path):
        from repro.eval.export import rows_to_dicts
        from repro.eval.metrics import OracleMetrics
        from repro.eval.runner import IndexRun
        from repro.eval.tables import Table4Cell

        metrics = OracleMetrics(10, 0.5, 0.1, 0.4, 0.0, 1e-4)
        run = IndexRun("powcov", 8, 1.0, metrics, 12.0, 5.5)
        cell = Table4Cell("d", "PowCov", 8, run)
        flat = rows_to_dicts([cell])[0]
        assert flat["run.metrics.absolute_error"] == 0.5
        assert flat["run.index_name"] == "powcov"

    def test_empty_export_rejected(self, tmp_path):
        from repro.eval.export import write_csv
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")

    def test_non_dataclass_rejected(self):
        from repro.eval.export import rows_to_dicts
        with pytest.raises(TypeError):
            rows_to_dicts([{"not": "a dataclass"}])
