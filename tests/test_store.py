"""Tests for the mmap-able zero-copy store (``repro.store``).

Covers the binary container, the varint/delta codecs, persistence
round-trips across the full matrix (directed/undirected, weighted PowCov,
empty and single-vertex graphs, both npz and mmap backends, raw and
compressed sections), fingerprint-mismatch rejection, the mapped query
path's bit-identity with the in-memory index, the file-backed
shared-memory handoff, and the engine-session fingerprint re-check.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.chromland import ChromLandIndex
from repro.core.powcov import PowCovIndex
from repro.core.powcov.weighted import WeightedPowCovIndex
from repro.core.serialize import (
    NPZ_FORMAT_VERSION,
    graph_fingerprint,
    load_index,
    load_powcov,
    save_index,
    save_powcov,
)
from repro.engine import QuerySession
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import LabelUniverse
from repro.store import FormatError, Store, is_store_file, write_store
from repro.store.cache import IndexStore
from repro.store.compress import (
    decode_array,
    encode_array,
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.store.index_store import open_graph, open_index, save_graph
from repro.store.mapped import MappedPowCovIndex

from conftest import all_pairs_all_masks

INF = math.inf


@pytest.fixture(scope="module")
def graph():
    return labeled_erdos_renyi(40, 110, num_labels=3, seed=19)


@pytest.fixture(scope="module")
def digraph():
    rng = np.random.default_rng(5)
    edges = {
        (int(rng.integers(20)), int(rng.integers(20)), int(rng.integers(3)))
        for _ in range(70)
    }
    return EdgeLabeledGraph.from_edges(
        20, [(u, v, l) for u, v, l in edges if u != v], num_labels=3,
        directed=True,
    )


def sample_queries(graph):
    return [
        (s, t, mask)
        for s in range(0, graph.num_vertices, 2)
        for t in range(1, graph.num_vertices, 3)
        for mask in range((1 << graph.num_labels))
    ]


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class TestCodecs:
    @pytest.mark.parametrize("values", [
        [],
        [0],
        [0, 1, -1, 63, -64, 64, 127, 128, -12345],
        [2**62, -(2**62), 2**63 - 1, -(2**63)],
    ])
    def test_zigzag_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(arr)), arr)

    def test_zigzag_small_magnitudes_stay_small(self):
        encoded = zigzag_encode(np.asarray([-1, 1, -2, 2], dtype=np.int64))
        assert encoded.tolist() == [1, 2, 3, 4]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_varint_roundtrip_random(self, seed):
        rng = np.random.default_rng(seed)
        exponents = rng.integers(0, 63, size=500)
        values = (rng.integers(0, 2, size=500).astype(np.uint64)
                  + (np.uint64(1) << exponents.astype(np.uint64)))
        stream = varint_encode(values)
        assert np.array_equal(varint_decode(stream, len(values)), values)

    def test_varint_single_byte_values(self):
        values = np.arange(128, dtype=np.uint64)
        stream = varint_encode(values)
        assert len(stream) == 128  # one byte each
        assert np.array_equal(varint_decode(stream, 128), values)

    def test_varint_truncated_rejected(self):
        stream = varint_encode(np.asarray([300], dtype=np.uint64))
        with pytest.raises(FormatError, match="truncated"):
            varint_decode(stream[:-1], 1)

    def test_varint_count_mismatch_rejected(self):
        stream = varint_encode(np.asarray([1, 2, 3], dtype=np.uint64))
        with pytest.raises(FormatError, match="expected 2"):
            varint_decode(stream, 2)

    @pytest.mark.parametrize("codec", ["varint", "delta-varint"])
    @pytest.mark.parametrize("dtype", [np.int64, np.int32, np.int16])
    def test_encode_decode_roundtrip(self, codec, dtype):
        rng = np.random.default_rng(7)
        arr = rng.integers(-1000, 1000, size=(13, 17)).astype(dtype)
        buffer = np.frombuffer(encode_array(arr, codec), dtype=np.uint8)
        out = decode_array(buffer, codec, np.dtype(dtype), arr.shape)
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)

    def test_delta_varint_compresses_sorted(self):
        sorted_arr = np.cumsum(np.ones(10_000, dtype=np.int64)) * 3
        delta = encode_array(sorted_arr, "delta-varint")
        plain = encode_array(sorted_arr, "varint")
        assert len(delta) < len(plain) < sorted_arr.nbytes

    def test_float_rejected(self):
        with pytest.raises(FormatError, match="integer"):
            encode_array(np.ones(3, dtype=np.float64), "varint")

    def test_unknown_codec_rejected(self):
        with pytest.raises(FormatError, match="unknown section codec"):
            encode_array(np.ones(3, dtype=np.int64), "gzip")


# ----------------------------------------------------------------------
# Container format
# ----------------------------------------------------------------------
class TestContainer:
    def test_sections_are_64_byte_aligned(self, tmp_path):
        path = tmp_path / "x.repro"
        write_store(path, "test", {}, [
            ("a", np.arange(3, dtype=np.int64), None),
            ("b", np.arange(100, dtype=np.int16), None),
        ])
        store = Store(path)
        for name in store.section_names():
            assert store.file_offset(name) % 64 == 0

    def test_meta_roundtrip(self, tmp_path):
        path = tmp_path / "x.repro"
        meta = {"alpha": 1, "beta": [1, 2], "gamma": "text", "delta": None}
        write_store(path, "test", meta, [])
        store = Store(path)
        assert store.kind == "test"
        assert store.meta == meta

    def test_zero_length_section(self, tmp_path):
        path = tmp_path / "x.repro"
        write_store(path, "test", {}, [("empty", np.empty(0, np.int64), None)])
        out = Store(path).array("empty")
        assert out.shape == (0,) and out.dtype == np.int64

    def test_not_a_store_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTASTOREFILE---plus-some-padding")
        assert not is_store_file(path)
        with pytest.raises(FormatError, match="not a repro store file"):
            Store(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "x.repro"
        write_store(path, "test", {}, [])
        raw = bytearray(path.read_bytes())
        raw[8] = 0xFF  # bump the little-endian uint16 version field
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError, match="unsupported store format version"):
            Store(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "x.repro"
        write_store(path, "test", {}, [("a", np.arange(64, dtype=np.int64), None)])
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(FormatError, match="extends past end of file"):
            Store(path).array("a")

    def test_missing_section(self, tmp_path):
        path = tmp_path / "x.repro"
        write_store(path, "test", {}, [])
        with pytest.raises(FormatError, match="no section"):
            Store(path).array("ghost")


# ----------------------------------------------------------------------
# Round-trips: the full matrix, both backends, bit-identity
# ----------------------------------------------------------------------
def _roundtrip(index, path, fmt, compress=False):
    path = path.with_suffix(".npz" if fmt == "npz" else ".repro")
    save_index(index, path, format=fmt, compress=compress)
    return load_index(path, index.graph)


@pytest.mark.parametrize("fmt,compress", [
    ("npz", False), ("mmap", False), ("mmap", True),
])
class TestRoundtripMatrix:
    def test_undirected_powcov(self, graph, tmp_path, fmt, compress):
        original = PowCovIndex(graph, [0, 13, 26]).build()
        loaded = _roundtrip(original, tmp_path / "p", fmt, compress)
        queries = sample_queries(graph)
        assert loaded.batch_query(queries) == original.batch_query(queries)
        assert [loaded.query(*q) for q in queries] == \
            [original.query(*q) for q in queries]
        assert loaded.index_size_entries() == original.index_size_entries()
        assert loaded.reachable_pairs() == original.reachable_pairs()
        assert loaded.max_entries_per_pair() == original.max_entries_per_pair()

    def test_directed_powcov(self, digraph, tmp_path, fmt, compress):
        original = PowCovIndex(digraph, [0, 7, 14]).build()
        loaded = _roundtrip(original, tmp_path / "d", fmt, compress)
        queries = [
            (s, t, mask)
            for s in range(20) for t in range(20) for mask in range(8)
        ]
        assert loaded.batch_query(queries) == original.batch_query(queries)
        assert [loaded.query(*q) for q in queries] == \
            [original.query(*q) for q in queries]

    def test_weighted_powcov(self, tmp_path, fmt, compress):
        graph = labeled_erdos_renyi(30, 80, num_labels=3, seed=4)
        weights = np.random.default_rng(0).uniform(0.5, 2.0, graph.num_arcs)
        original = WeightedPowCovIndex(graph, [0, 10, 20], weights).build()
        loaded = _roundtrip(original, tmp_path / "w", fmt, compress)
        queries = sample_queries(graph)
        assert loaded.batch_query(queries) == original.batch_query(queries)

    def test_chromland(self, graph, tmp_path, fmt, compress):
        original = ChromLandIndex(graph, [0, 10, 20, 30], [0, 1, 2, 0]).build()
        loaded = _roundtrip(original, tmp_path / "c", fmt, compress)
        queries = sample_queries(graph)
        assert loaded.batch_query(queries) == original.batch_query(queries)
        assert loaded.query_mode == original.query_mode

    def test_single_vertex_graph(self, tmp_path, fmt, compress):
        graph = EdgeLabeledGraph.from_edges(1, [], num_labels=1)
        original = PowCovIndex(graph, [0]).build()
        loaded = _roundtrip(original, tmp_path / "s", fmt, compress)
        assert loaded.query(0, 0, 1) == 0.0
        assert loaded.query(0, 0, 0) == 0.0
        assert loaded.index_size_entries() == 0

    def test_edgeless_graph(self, tmp_path, fmt, compress):
        graph = EdgeLabeledGraph.from_edges(3, [], num_labels=2)
        original = PowCovIndex(graph, [0, 2]).build()
        loaded = _roundtrip(original, tmp_path / "e", fmt, compress)
        for mask in range(4):
            assert loaded.query(0, 1, mask) == INF
            assert loaded.query(2, 2, mask) == 0.0

    def test_fingerprint_mismatch_rejected(self, graph, tmp_path, fmt, compress):
        index = PowCovIndex(graph, [0, 10]).build()
        path = (tmp_path / "p").with_suffix(".npz" if fmt == "npz" else ".repro")
        save_index(index, path, format=fmt, compress=compress)
        other = labeled_erdos_renyi(40, 110, num_labels=3, seed=99)
        with pytest.raises(FormatError, match="different graph"):
            load_index(path, other)

    def test_exactness_against_differential_harness(self, tmp_path, fmt, compress):
        # The loaded oracle's estimate must match the original's for every
        # (s, t, mask); where the in-memory index is exact (landmark on
        # every shortest path or endpoints are landmarks), so is the load.
        graph = labeled_erdos_renyi(12, 26, num_labels=3, seed=3)
        original = PowCovIndex(graph, list(range(12))).build()
        loaded = _roundtrip(original, tmp_path / "x", fmt, compress)
        for s, t, mask, exact in all_pairs_all_masks(graph):
            got = loaded.query(s, t, mask)
            assert got == original.query(s, t, mask)
            # With every vertex a landmark the estimate is exact.
            assert got == exact


class TestMappedIndex:
    def test_mapped_type_and_storage(self, graph, tmp_path):
        index = PowCovIndex(graph, [0, 13]).build()
        save_index(index, tmp_path / "p.repro")
        loaded = open_index(tmp_path / "p.repro", graph)
        assert isinstance(loaded, MappedPowCovIndex)
        assert loaded.storage == "mapped"
        assert loaded.is_mapped
        assert loaded.stored_fingerprint == int(graph_fingerprint(graph))

    def test_mapped_resave_rejected(self, graph, tmp_path):
        index = PowCovIndex(graph, [0, 13]).build()
        save_index(index, tmp_path / "p.repro")
        loaded = open_index(tmp_path / "p.repro", graph)
        with pytest.raises(ValueError, match="serving-only"):
            save_index(loaded, tmp_path / "q.repro")
        with pytest.raises(ValueError, match="serving-only"):
            save_powcov(loaded, tmp_path / "q.npz")

    def test_mapped_engine_session_bit_identity(self, graph, tmp_path):
        index = PowCovIndex(graph, [0, 13, 26]).build()
        save_index(index, tmp_path / "p.repro")
        loaded = open_index(tmp_path / "p.repro", graph)
        queries = sample_queries(graph)
        session = QuerySession(loaded, cache_size=0)
        assert session.run(queries) == [index.query(*q) for q in queries]

    def test_wrong_kind_open(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.repro")
        with pytest.raises(FormatError, match="does not hold an index"):
            open_index(tmp_path / "g.repro", graph)


class TestGraphStore:
    def test_roundtrip_zero_copy(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.repro")
        loaded = open_graph(tmp_path / "g.repro")
        assert loaded == graph
        assert graph_fingerprint(loaded) == graph_fingerprint(graph)
        # The CSR arrays must be views over the file mapping, not copies.
        for name in ("indptr", "neighbors", "edge_labels"):
            array = getattr(loaded, name)
            base = array
            while base is not None and not isinstance(base, np.memmap):
                base = base.base
            assert isinstance(base, np.memmap)

    def test_compressed_roundtrip(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.repro", compress=True)
        assert open_graph(tmp_path / "g.repro") == graph

    def test_label_universe_roundtrip(self, tmp_path):
        universe = LabelUniverse(["red", "green", "blue"])
        graph = EdgeLabeledGraph.from_edges(
            3, [(0, 1, 0), (1, 2, 2)], num_labels=3, label_universe=universe
        )
        save_graph(graph, tmp_path / "g.repro")
        loaded = open_graph(tmp_path / "g.repro")
        assert loaded.label_universe is not None
        assert list(loaded.label_universe) == ["red", "green", "blue"]
        assert loaded.mask(["red", "blue"]) == graph.mask(["red", "blue"])

    def test_directed_roundtrip(self, digraph, tmp_path):
        save_graph(digraph, tmp_path / "d.repro")
        loaded = open_graph(tmp_path / "d.repro")
        assert loaded == digraph
        assert loaded.directed


class TestNpzVersioning:
    def test_version_field_stamped(self, graph, tmp_path):
        index = PowCovIndex(graph, [0]).build()
        path = tmp_path / "p.npz"
        save_powcov(index, path)
        with np.load(path) as data:
            assert int(data["format_version"]) == NPZ_FORMAT_VERSION

    def test_missing_version_rejected(self, graph, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(path, kind=np.str_("powcov"), fingerprint=np.int64(0))
        with pytest.raises(FormatError, match="no format-version field"):
            load_powcov(path, graph)

    def test_unknown_version_rejected(self, graph, tmp_path):
        index = PowCovIndex(graph, [0]).build()
        path = tmp_path / "p.npz"
        save_powcov(index, path)
        with np.load(path) as data:
            payload = {name: data[name] for name in data.files}
        payload["format_version"] = np.int64(NPZ_FORMAT_VERSION + 7)
        np.savez(tmp_path / "future.npz", **payload)
        with pytest.raises(FormatError, match="unsupported npz index format"):
            load_powcov(tmp_path / "future.npz", graph)

    def test_format_error_is_a_value_error(self):
        assert issubclass(FormatError, ValueError)


class TestSessionFingerprintCheck:
    def test_session_rejects_stale_stored_fingerprint(self, graph, tmp_path):
        index = PowCovIndex(graph, [0, 13]).build()
        save_index(index, tmp_path / "p.repro")
        loaded = open_index(tmp_path / "p.repro", graph)
        loaded.stored_fingerprint = 12345  # simulate a swapped graph
        with pytest.raises(FormatError, match="different graph"):
            QuerySession(loaded)

    def test_rebind_rechecks(self, graph, tmp_path):
        index = PowCovIndex(graph, [0, 13]).build()
        session = QuerySession(index)
        save_index(index, tmp_path / "p.repro")
        loaded = open_index(tmp_path / "p.repro", graph)
        session.rebind(loaded)  # same graph: fine
        loaded.stored_fingerprint = 1
        with pytest.raises(FormatError, match="different graph"):
            session.rebind(loaded)


class TestIndexStoreDirectory:
    def test_save_then_load(self, graph, tmp_path):
        store = IndexStore(tmp_path / "cache")
        index = PowCovIndex(graph, [0, 13]).build()
        path = store.save(index, tag="k2")
        assert path is not None and is_store_file(path)
        loaded = store.load("powcov", graph, tag="k2")
        assert isinstance(loaded, MappedPowCovIndex)
        queries = sample_queries(graph)
        assert loaded.batch_query(queries) == index.batch_query(queries)

    def test_miss_returns_none(self, graph, tmp_path):
        store = IndexStore(tmp_path / "cache")
        assert store.load("powcov", graph, tag="absent") is None

    def test_different_graph_misses(self, graph, tmp_path):
        store = IndexStore(tmp_path / "cache")
        store.save(PowCovIndex(graph, [0]).build(), tag="k1")
        other = labeled_erdos_renyi(40, 110, num_labels=3, seed=99)
        assert store.load("powcov", other, tag="k1") is None

    def test_npz_format(self, graph, tmp_path):
        store = IndexStore(tmp_path / "cache", format="npz")
        index = PowCovIndex(graph, [0, 13]).build()
        path = store.save(index, tag="k2")
        assert path.endswith(".npz")
        loaded = store.load("powcov", graph, tag="k2")
        assert not getattr(loaded, "is_mapped", False)
        queries = sample_queries(graph)
        assert loaded.batch_query(queries) == index.batch_query(queries)

    def test_cross_format_find(self, graph, tmp_path):
        # An mmap-preferring store still finds an existing npz file.
        npz_store = IndexStore(tmp_path / "cache", format="npz")
        npz_store.save(PowCovIndex(graph, [0]).build(), tag="k1")
        mmap_store = IndexStore(tmp_path / "cache", format="mmap")
        assert mmap_store.load("powcov", graph, tag="k1") is not None

    def test_read_only_store_never_writes(self, graph, tmp_path):
        store = IndexStore(tmp_path / "cache", writable=False)
        assert store.save(PowCovIndex(graph, [0]).build(), tag="k1") is None
        assert not (tmp_path / "cache").exists()

    def test_chromland_kind(self, graph, tmp_path):
        store = IndexStore(tmp_path / "cache")
        index = ChromLandIndex(graph, [0, 10], [0, 1]).build()
        store.save(index, tag="c")
        loaded = store.load("chromland", graph, tag="c")
        queries = sample_queries(graph)
        assert loaded.batch_query(queries) == index.batch_query(queries)


class TestIndexStoreCapacity:
    """The LRU capacity bound and eviction counter."""

    def _graphs(self, count):
        return [
            labeled_erdos_renyi(25, 60, num_labels=3, seed=100 + i)
            for i in range(count)
        ]

    def test_capacity_validation(self, tmp_path):
        with pytest.raises(ValueError, match="capacity"):
            IndexStore(tmp_path / "cache", capacity=0)
        assert IndexStore(tmp_path / "cache", capacity=3).capacity == 3
        assert "capacity=3" in repr(IndexStore(tmp_path / "cache", capacity=3))

    def test_save_evicts_oldest_beyond_capacity(self, tmp_path):
        import os
        import time

        store = IndexStore(tmp_path / "cache", capacity=2)
        graphs = self._graphs(3)
        paths = []
        for g in graphs:
            paths.append(store.save(PowCovIndex(g, [0]).build()))
            time.sleep(0.02)  # distinct mtimes on coarse filesystems
        assert store.evictions == 1
        assert not os.path.exists(paths[0])  # oldest evicted
        assert os.path.exists(paths[1]) and os.path.exists(paths[2])
        assert store.load("powcov", graphs[0]) is None
        assert store.load("powcov", graphs[1]) is not None

    def test_load_refreshes_recency(self, tmp_path):
        import os
        import time

        store = IndexStore(tmp_path / "cache", capacity=2)
        graphs = self._graphs(3)
        first = store.save(PowCovIndex(graphs[0], [0]).build())
        time.sleep(0.02)
        second = store.save(PowCovIndex(graphs[1], [0]).build())
        time.sleep(0.02)
        # Touch the first index: it becomes the most recently used...
        assert store.load("powcov", graphs[0]) is not None
        time.sleep(0.02)
        store.save(PowCovIndex(graphs[2], [0]).build())
        # ...so the cap evicts the second instead.
        assert os.path.exists(first)
        assert not os.path.exists(second)

    def test_unbounded_store_never_evicts(self, tmp_path):
        import os

        store = IndexStore(tmp_path / "cache")  # capacity=None
        paths = [
            store.save(PowCovIndex(g, [0]).build()) for g in self._graphs(4)
        ]
        assert store.evictions == 0
        assert all(os.path.exists(p) for p in paths)


class TestIndexStoreLineage:
    """The fingerprint-lineage manifest for versioned graphs."""

    def test_lineage_chain_walks_child_to_ancestor(self, graph, tmp_path):
        from repro.graph.delta import GraphDelta, apply_delta

        store = IndexStore(tmp_path / "cache")
        store.save(PowCovIndex(graph, [0]).build())
        # An original (version 0) build records no lineage.
        assert store.lineage_of(graph) == []

        edge = next(
            (u, int(v), int(l))
            for u in range(graph.num_vertices)
            for v, l in zip(graph.neighbors_of(u), graph.labels_of(u))
            if u < int(v)
        )
        v1 = apply_delta(graph, GraphDelta(deletions=(edge,)))
        v2 = apply_delta(v1, GraphDelta(insertions=(edge,)))
        store.save(PowCovIndex(v1, [0]).build())
        store.save(PowCovIndex(v2, [0]).build())

        chain = store.lineage_of(v2)
        assert [e["version"] for e in chain] == [2, 1]
        assert chain[0]["parent"] == chain[1]["fingerprint"]
        assert chain[0]["delta"] == "delta(+1 -0 ~0)"
        assert chain[1]["delta"] == "delta(+0 -1 ~0)"
        # The middle version's chain is just its own link.
        assert len(store.lineage_of(v1)) == 1

    def test_lineage_records_deduplicate(self, graph, tmp_path):
        from repro.graph.delta import GraphDelta, apply_delta

        store = IndexStore(tmp_path / "cache")
        edge = next(
            (u, int(v), int(l))
            for u in range(graph.num_vertices)
            for v, l in zip(graph.neighbors_of(u), graph.labels_of(u))
            if u < int(v)
        )
        v1 = apply_delta(graph, GraphDelta(deletions=(edge,)))
        store.save(PowCovIndex(v1, [0]).build())
        store.save(PowCovIndex(v1, [0, 13]).build(), tag="k2")
        with open(store.lineage_path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
