"""Tests for the runtime invariant auditors (``repro.analysis.audit``).

Covers the clean path (freshly built graph + indexes audit clean — the
post-build hook the auditors were designed for), targeted in-memory
corruptions of every audited structure with precise-location assertions,
and the two wire-ups: ``EngineConfig.audit``/``QuerySession(audit=True)``
and the eval CLI's ``--selfcheck``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.audit import (
    AuditError,
    assert_clean,
    audit_chromland,
    audit_graph,
    audit_oracle,
    audit_powcov,
    format_report,
    run_selfcheck,
)
from repro.core.chromland import ChromLandIndex
from repro.core.chromland.selection import majority_colors
from repro.core.powcov import PowCovIndex
from repro.engine import QuerySession
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.generators import chromatic_cluster_graph
from repro.graph.labelsets import full_mask
from repro.landmarks import select_landmarks

K = 4


@pytest.fixture(scope="module")
def graph():
    return chromatic_cluster_graph(
        num_vertices=48, num_edges=150, num_labels=4, seed=11
    )


@pytest.fixture(scope="module")
def landmarks(graph):
    return select_landmarks(graph, K, seed=11)


@pytest.fixture()
def powcov(graph, landmarks):
    return PowCovIndex(graph, landmarks).build()


@pytest.fixture()
def chromland(graph, landmarks):
    # Distinct colors so the bi-chromatic table has finite entries to audit
    # (majority colors can collapse onto one dominant label on small graphs).
    colors = [i % graph.num_labels for i in range(K)]
    return ChromLandIndex(graph, landmarks, colors).build()


def graph_copy(graph):
    """A structurally identical graph whose arrays the test may corrupt."""
    return EdgeLabeledGraph(
        graph.indptr.copy(),
        graph.neighbors.copy(),
        graph.edge_labels.copy(),
        num_labels=graph.num_labels,
        directed=graph.directed,
        num_edges=graph.num_edges,
    )


def checks_of(violations):
    return {v.check for v in violations}


# ----------------------------------------------------------------------
# Clean path: freshly built objects audit clean (the post-build hook).
# ----------------------------------------------------------------------
def test_fresh_graph_audits_clean(graph):
    assert audit_graph(graph) == []


def test_fresh_powcov_audits_clean(powcov):
    # Exhaustive sampling: every stored entry BFS-verified, none flagged.
    assert audit_powcov(powcov, samples=10_000) == []


def test_fresh_chromland_audits_clean(chromland):
    assert audit_chromland(chromland, samples=50) == []


def test_audit_oracle_dispatch(powcov, chromland):
    assert audit_oracle(powcov) == []
    assert audit_oracle(chromland) == []


def test_directed_powcov_audits_clean():
    rng = np.random.default_rng(5)
    n = 36
    arcs = {
        (int(u), int(v)): int(label)
        for u, v, label in zip(
            rng.integers(0, n, 140), rng.integers(0, n, 140), rng.integers(0, 3, 140)
        )
        if u != v
    }
    g = EdgeLabeledGraph.from_edges(
        n, [(u, v, label) for (u, v), label in arcs.items()],
        num_labels=3, directed=True,
    )
    index = PowCovIndex(g, select_landmarks(g, 3, seed=5)).build()
    assert audit_powcov(index, samples=10_000) == []


def test_audit_requires_built(graph, landmarks):
    with pytest.raises(ValueError, match="built"):
        audit_powcov(PowCovIndex(graph, landmarks))
    with pytest.raises(ValueError, match="built"):
        audit_chromland(
            ChromLandIndex(graph, landmarks, majority_colors(graph, landmarks))
        )


def test_selfcheck_is_clean():
    assert run_selfcheck(scale=0.2, samples=6) == []


# ----------------------------------------------------------------------
# Graph corruptions
# ----------------------------------------------------------------------
def test_graph_neighbor_out_of_range(graph):
    bad = graph_copy(graph)
    bad.neighbors[3] = bad.num_vertices + 7
    violations = audit_graph(bad)
    assert "graph.neighbor-range" in checks_of(violations)
    hit = next(v for v in violations if v.check == "graph.neighbor-range")
    assert hit.location == "arc 3"
    assert str(bad.num_vertices + 7) in hit.message


def test_graph_label_out_of_range(graph):
    bad = graph_copy(graph)
    bad.edge_labels[0] = bad.num_labels + 2
    violations = audit_graph(bad)
    hit = next(v for v in violations if v.check == "graph.label-range")
    assert hit.location == "arc 0"


def test_graph_indptr_corruptions(graph):
    bad = graph_copy(graph)
    bad.indptr[0] = 1
    assert "graph.indptr-start" in checks_of(audit_graph(bad))

    bad = graph_copy(graph)
    bad.indptr[2] = bad.indptr[1] - 1  # decreasing step
    violations = audit_graph(bad)
    hit = next(v for v in violations if v.check == "graph.indptr-monotone")
    assert "indptr[" in hit.location


def test_graph_broken_symmetry(graph):
    bad = graph_copy(graph)
    bad.edge_labels[0] = (int(bad.edge_labels[0]) + 1) % bad.num_labels
    violations = audit_graph(bad)
    hit = next(v for v in violations if v.check == "graph.undirected-symmetry")
    assert "no stored reverse arc" in hit.message


# ----------------------------------------------------------------------
# PowCov corruptions
# ----------------------------------------------------------------------
def entry_site(index):
    """A (landmark, vertex, pairs) triple with at least one stored entry."""
    for i, entries in enumerate(index._flat):
        for u, pairs in entries.items():
            if pairs:
                return i, u, pairs
    raise AssertionError("index stores no entries")


def test_powcov_dominated_entry_reported(powcov, graph):
    i, u, pairs = entry_site(powcov)
    d0, m0 = pairs[0]
    extra = next(
        b for b in range(graph.num_labels) if not m0 & (1 << b)
    )
    # A superset of the first entry's mask at a larger distance can never be
    # SP-minimal next to its stored subset.
    pairs.append((pairs[-1][0] + 1, m0 | (1 << extra)))
    violations = audit_powcov(powcov, samples=0)
    hit = next(v for v in violations if v.check == "powcov.incomparable")
    assert f"landmark {i} (vertex {powcov.landmarks[i]}), vertex {u}" == hit.location
    assert "not SP-minimal" in hit.message


def test_powcov_duplicate_entry_reported(powcov):
    i, u, pairs = entry_site(powcov)
    pairs.append((pairs[-1][0], pairs[-1][1]))
    violations = audit_powcov(powcov, samples=0)
    hit = next(v for v in violations if v.check == "powcov.entry-duplicate")
    assert f"vertex {u}" in hit.location
    assert "stored twice" in hit.message


def test_powcov_wrong_distance_reported(powcov):
    i, u, pairs = entry_site(powcov)
    d0, m0 = pairs[-1]
    pairs[-1] = (d0 + 1, m0)
    # Exhaustive sampling guarantees the doctored entry is re-derived.
    violations = audit_powcov(powcov, samples=10_000)
    hits = checks_of(violations)
    # The inflated distance either disagrees with the BFS or stops being
    # SP-minimal (a one-label-removed subset now ties it) — both are bugs.
    assert hits & {"powcov.distance", "powcov.sp-minimal", "powcov.incomparable"}


def test_powcov_mask_domain_reported(powcov, graph):
    i, u, pairs = entry_site(powcov)
    pairs.append((pairs[-1][0] + 1, full_mask(graph.num_labels) + 1))
    violations = audit_powcov(powcov, samples=0)
    assert "powcov.entry-mask-domain" in checks_of(violations)


# ----------------------------------------------------------------------
# ChromLand corruptions
# ----------------------------------------------------------------------
def test_chromland_mono_self_reported(chromland):
    x = int(chromland.landmarks[0])
    chromland.mono[0, x] = 3
    violations = audit_chromland(chromland, samples=0)
    hit = next(v for v in violations if v.check == "chromland.mono-self")
    assert hit.location == f"landmark 0 (vertex {x})"
    assert "cd(x, x)" in hit.message


def test_chromland_mono_distance_reported(chromland):
    # Corrupt a non-landmark cell: only the BFS spot-check can see it.
    x = int(chromland.landmarks[0])
    u = next(
        v for v in range(chromland.graph.num_vertices)
        if v != x and chromland.mono[0, v] > 0
    )
    chromland.mono[0, u] += 1
    violations = audit_chromland(chromland, samples=K)
    hit = next(v for v in violations if v.check == "chromland.mono-distance")
    assert f"vertex {u}" in hit.location


def test_chromland_bi_corruption_reported(chromland):
    cells = np.argwhere(chromland.bi >= 0)
    assert len(cells), "need at least one finite bi-chromatic distance"
    i, j = (int(v) for v in cells[0])
    chromland.bi[i, j] += 1
    violations = audit_chromland(chromland, samples=K * K)
    hits = checks_of(violations)
    # Asymmetric now (undirected graph) and off the true d_{c(x),c(y)}.
    assert hits & {"chromland.bi-symmetry", "chromland.bi-distance"}
    locations = {v.location for v in violations}
    assert any(f"({i}, {j})" in loc or f"({j}, {i})" in loc for loc in locations)


def test_chromland_color_out_of_range_reported(chromland):
    chromland.colors[1] = chromland.graph.num_labels + 5
    violations = audit_chromland(chromland, samples=0)
    hit = next(v for v in violations if v.check == "chromland.color-range")
    assert "landmark 1" in hit.location


# ----------------------------------------------------------------------
# Report plumbing and wire-ups
# ----------------------------------------------------------------------
def test_assert_clean_and_format_report(powcov):
    assert_clean([])  # no violations, no raise
    assert format_report([]) == "audit: all invariants hold"

    i, u, pairs = entry_site(powcov)
    pairs.append((pairs[-1][0], pairs[-1][1]))
    violations = audit_powcov(powcov, samples=0)
    report = format_report(violations)
    assert "violation(s)" in report
    assert "powcov.entry-duplicate" in report
    with pytest.raises(AuditError) as excinfo:
        assert_clean(violations)
    assert excinfo.value.violations == violations
    assert "entry-duplicate" in str(excinfo.value)


def test_session_audit_flag(powcov):
    # Clean oracle: the audited session constructs and serves normally.
    session = QuerySession(powcov, audit=True)
    x = int(powcov.landmarks[0])
    mask = full_mask(powcov.graph.num_labels)
    assert session.query(x, x, mask) == 0.0

    i, u, pairs = entry_site(powcov)
    pairs.append((pairs[-1][0], pairs[-1][1]))
    with pytest.raises(AuditError):
        QuerySession(powcov, audit=True)
    # The flag is opt-in: an unaudited session still constructs.
    QuerySession(powcov, audit=False)


def test_selfcheck_cli_flag(capsys):
    from repro.eval.cli import main

    code = main(["table1", "--scale", "0.15", "--pairs", "30", "--selfcheck"])
    out = capsys.readouterr().out
    assert code == 0
    assert "selfcheck passed" in out
