"""Integration tests: the experiment harness end to end (miniature scale)."""

from __future__ import annotations

import math

import pytest

from repro.eval.figures import figure6, render_figure6
from repro.eval.runner import (
    baseline_query_seconds,
    run_chromland,
    run_naive,
    run_powcov,
    speedup_factor,
)
from repro.eval.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1,
    table2,
    table3,
    table4,
)
from repro.graph.datasets import load_dataset
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def tiny_setup():
    graph, _spec = load_dataset("youtube-sim", scale=0.15, seed=3)
    workload = generate_workload(graph, num_pairs=30, seed=3)
    base = baseline_query_seconds(graph, workload, limit=20, include_ch=False)
    return graph, workload, base


class TestRunner:
    def test_run_powcov(self, tiny_setup):
        graph, workload, base = tiny_setup
        run = run_powcov(graph, workload, k=6, baseline_seconds=base)
        assert run.num_landmarks == 6
        assert run.build_seconds > 0
        assert run.metrics.num_queries == len(workload)
        assert run.avg_entries_per_pair > 0
        assert run.per_landmark_build_seconds == pytest.approx(
            run.build_seconds / 6
        )
        assert run.speedup > 0

    def test_run_chromland_all_selections(self, tiny_setup):
        graph, workload, base = tiny_setup
        for selection in ("local-search", "random", "random-majority",
                          "degree-majority", "degree-random"):
            run = run_chromland(
                graph, workload, k=6, selection=selection, iterations=10,
                seed=1, baseline_seconds=base,
            )
            assert run.index_name == f"chromland[{selection}]"
            assert run.metrics.num_queries == len(workload)

    def test_run_chromland_unknown_selection(self, tiny_setup):
        graph, workload, base = tiny_setup
        with pytest.raises(ValueError, match="unknown ChromLand selection"):
            run_chromland(graph, workload, k=3, selection="tarot",
                          baseline_seconds=base)

    def test_run_naive_matches_powcov_quality(self, tiny_setup):
        graph, workload, base = tiny_setup
        naive = run_naive(graph, workload, k=4, baseline_seconds=base)
        powcov = run_powcov(graph, workload, k=4, baseline_seconds=base)
        assert naive.metrics.absolute_error == pytest.approx(
            powcov.metrics.absolute_error
        )
        assert naive.avg_entries_per_pair > powcov.avg_entries_per_pair

    def test_speedup_factor(self):
        from repro.eval.metrics import OracleMetrics
        metrics = OracleMetrics(1, 0, 0, 1, 0, mean_query_seconds=0.001)
        assert speedup_factor(0.01, metrics) == pytest.approx(10.0)


class TestTables:
    def test_table1(self):
        rows = table1(scale=0.1, num_pairs=20, seed=5)
        assert len(rows) == 5
        text = render_table1(rows)
        assert "biogrid-sim" in text and "paper n" in text

    def test_table2_structure_and_shape(self):
        rows = table2(
            scale=0.12, k=4, seed=5, synthetic_labels=(4, 6),
            synthetic_vertices=400, synthetic_edges=2000,
            datasets=("youtube-sim",),
        )
        assert len(rows) == 3
        for row in rows:
            assert row.powcov_avg <= row.naive_avg  # PowCov never bigger
            assert 0 <= row.saving_percent <= 100
        # savings grow with |L| on the synthetic sweep (paper's trend)
        synth = [r for r in rows if r.dataset.startswith("synthetic")]
        assert synth[0].saving_percent < synth[1].saving_percent
        assert "saving%" in render_table2(rows)

    def test_table3_structure(self):
        rows = table3(
            scale=0.12, k=2, seed=5, synthetic_labels=(4,),
            chromland_labels=(12,), synthetic_vertices=300,
            synthetic_edges=1500, datasets=("youtube-sim",),
        )
        assert len(rows) == 3
        powcov_rows = [r for r in rows if r.brute_tests > 0]
        for row in powcov_rows:
            assert row.traverse_tests <= row.brute_tests
            assert row.traverse_sssps <= row.brute_sssps
            assert row.chromland_seconds < row.brute_seconds
        text = render_table3(rows)
        assert "ChromLand s/lm" in text and "(ChromLand only)" in text

    def test_table4_structure(self):
        cells = table4(
            scale=0.12, ks=(4, 8), num_pairs=25, seed=5,
            datasets=("youtube-sim",), chromland_iterations=10,
        )
        assert len(cells) == 4  # 2 ks x 2 indexes
        for cell in cells:
            assert cell.run.metrics.relative_error >= 0
            assert not math.isnan(cell.run.speedup)
        powcov = {c.k: c.run for c in cells if c.index == "PowCov"}
        chroml = {c.k: c.run for c in cells if c.index == "ChromLand"}
        # PowCov at least as accurate as ChromLand for equal k (paper claim)
        for k in (4, 8):
            assert (
                powcov[k].metrics.absolute_error
                <= chroml[k].metrics.absolute_error + 1e-9
            )
        assert "speed-up" in render_table4(cells)


class TestFigure6:
    def test_structure(self):
        panels = figure6(
            scale=0.12, ks=(4, 8), num_pairs=20, seed=5,
            datasets=("youtube-sim",), chromland_iterations=10,
        )
        assert len(panels) == 2  # PowCov + ChromLand
        for series in panels:
            assert len(series.proposed) == 2
            assert len(series.b_rnd) == 2
            assert len(series.b_best) == 2
            assert all(v >= 0 for v in series.proposed)
        text = render_figure6(panels)
        assert "Figure 6" in text and "B-Rnd" in text
