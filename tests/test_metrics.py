"""Tests for the evaluation metrics and oracle protocol types."""

from __future__ import annotations


import pytest

from repro.core.exact import ExactDijkstraOracle, ExactOracle
from repro.core.types import INF, DistanceOracle, Query, QueryAnswer
from repro.eval.metrics import evaluate_oracle, time_oracle
from repro.graph.generators import labeled_erdos_renyi
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def setup():
    graph = labeled_erdos_renyi(50, 160, num_labels=3, seed=4)
    workload = generate_workload(graph, num_pairs=25, seed=2)
    return graph, workload


class _ConstantOffsetOracle(DistanceOracle):
    """Test double: exact + fixed offset, infinite on marked queries."""

    name = "offset"

    def __init__(self, graph, offset: float, infinite_every: int = 0):
        super().__init__(graph)
        self._exact = ExactOracle(graph)
        self.offset = offset
        self.infinite_every = infinite_every
        self._count = 0

    def query(self, source, target, label_mask):
        self._count += 1
        if self.infinite_every and self._count % self.infinite_every == 0:
            return INF
        return self._exact.query(source, target, label_mask) + self.offset


class TestEvaluateOracle:
    def test_exact_oracle_perfect_scores(self, setup):
        graph, workload = setup
        metrics = evaluate_oracle(ExactOracle(graph), workload)
        assert metrics.absolute_error == 0.0
        assert metrics.relative_error == 0.0
        assert metrics.exact_fraction == 1.0
        assert metrics.false_negative_fraction == 0.0
        assert metrics.mean_query_seconds > 0
        assert metrics.num_queries == len(workload)

    def test_offset_oracle_errors(self, setup):
        graph, workload = setup
        metrics = evaluate_oracle(_ConstantOffsetOracle(graph, 2.0), workload)
        assert metrics.absolute_error == pytest.approx(2.0)
        assert metrics.exact_fraction == 0.0
        assert metrics.relative_error > 0

    def test_false_negative_accounting(self, setup):
        graph, workload = setup
        oracle = _ConstantOffsetOracle(graph, 0.0, infinite_every=5)
        metrics = evaluate_oracle(oracle, workload)
        assert metrics.false_negative_fraction == pytest.approx(
            (len(workload) // 5) / len(workload)
        )
        assert metrics.false_negative_percent == pytest.approx(
            100 * metrics.false_negative_fraction
        )

    def test_underestimate_is_a_bug(self, setup):
        graph, workload = setup
        with pytest.raises(AssertionError, match="returned"):
            evaluate_oracle(_ConstantOffsetOracle(graph, -1.0), workload)

    def test_empty_workload(self, setup):
        graph, workload = setup
        from repro.workloads.queries import Workload
        with pytest.raises(ValueError):
            evaluate_oracle(ExactOracle(graph), Workload(graph=graph))

    def test_time_oracle(self, setup):
        graph, workload = setup
        per_query = time_oracle(ExactOracle(graph), workload, limit=10)
        assert per_query > 0

    def test_time_queries_false_skips_timing_pass(self, setup):
        graph, workload = setup
        oracle = _ConstantOffsetOracle(graph, 0.0)
        metrics = evaluate_oracle(oracle, workload, time_queries=False)
        assert metrics.mean_query_seconds == 0.0
        # one accounting pass only — no hidden timing pass ran
        assert oracle._count == len(workload)

    def test_engine_mode_matches_scalar_accuracy(self, setup):
        from repro.core.powcov import PowCovIndex
        from repro.engine import EngineConfig

        graph, workload = setup
        index = PowCovIndex(graph, [0, 10, 20, 30]).build()
        scalar = evaluate_oracle(index, workload, time_queries=False)
        engine = evaluate_oracle(
            index, workload, time_queries=False, engine=True
        )
        assert engine == scalar  # identical answers -> identical metrics
        timed = evaluate_oracle(
            index, workload, engine=EngineConfig(enabled=True, cache_size=64)
        )
        assert timed.mean_query_seconds > 0

    def test_time_oracle_engine_path(self, setup):
        graph, workload = setup
        per_query = time_oracle(
            ExactOracle(graph), workload, limit=10, engine=True
        )
        assert per_query > 0


class TestTypes:
    def test_query_of_with_label_names(self, setup):
        graph, _ = setup
        query = Query.of(graph, 0, 1, [0, 2])
        assert query.label_mask == 0b101

    def test_query_validation(self):
        with pytest.raises(ValueError):
            Query(0, 1, -1)

    def test_query_answer_unreachable(self):
        assert QueryAnswer(estimate=INF).is_unreachable
        assert not QueryAnswer(estimate=3.0).is_unreachable

    def test_default_query_answer_wraps_query(self, setup):
        graph, _ = setup
        oracle = ExactOracle(graph)
        answer = oracle.query_answer(0, 1, 0b111)
        assert answer.estimate == oracle.query(0, 1, 0b111)

    def test_batch_query(self, setup):
        graph, _ = setup
        oracle = ExactOracle(graph)
        queries = [Query(0, 1, 7), Query(1, 2, 7)]
        assert oracle.batch_query(queries) == [
            oracle.query(0, 1, 7), oracle.query(1, 2, 7)
        ]

    def test_query_labels_overload(self, setup):
        graph, _ = setup
        oracle = ExactOracle(graph)
        assert oracle.query_labels(0, 1, [0, 1, 2]) == oracle.query(0, 1, 7)

    def test_index_size_default(self, setup):
        graph, _ = setup
        assert ExactOracle(graph).index_size_entries() == 0

    def test_describe_default(self, setup):
        graph, _ = setup
        assert "exact" in ExactOracle(graph).describe()


class TestExactDijkstraOracle:
    def test_matches_bfs_oracle(self, setup):
        graph, workload = setup
        dijkstra = ExactDijkstraOracle(graph)
        bfs_oracle = ExactOracle(graph)
        for q in workload.queries[:30]:
            assert dijkstra.query(q.source, q.target, q.label_mask) == (
                bfs_oracle.query(q.source, q.target, q.label_mask)
            )

    def test_weighted_oracle(self, setup):
        import numpy as np
        graph, _ = setup
        weights = np.full(graph.num_arcs, 2.0)
        oracle = ExactDijkstraOracle(graph, weights=weights)
        unweighted = ExactOracle(graph)
        assert oracle.query(0, 5, 7) == 2 * unweighted.query(0, 5, 7)

    def test_sssp_helper(self, setup):
        graph, _ = setup
        dist = ExactOracle(graph).sssp(0, 0b111)
        assert dist[0] == 0
