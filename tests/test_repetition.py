"""Tests for multi-seed experiment repetition."""

from __future__ import annotations

import math

import pytest

from repro.eval.repetition import MetricSummary, _summarize, repeat_index_run


class TestSummarize:
    def test_mean_and_std(self):
        summary = _summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.num_seeds == 3

    def test_single_value(self):
        summary = _summarize([4.0])
        assert summary.mean == 4.0
        assert summary.std == 0.0

    def test_infinite_values_dropped(self):
        summary = _summarize([1.0, math.inf, 3.0])
        assert summary.mean == pytest.approx(2.0)

    def test_all_infinite(self):
        summary = _summarize([math.inf, math.inf])
        assert math.isinf(summary.mean)

    def test_str(self):
        assert "±" in str(MetricSummary(1.0, 0.1, 3))


class TestRepeatIndexRun:
    def test_powcov_repetition(self):
        result = repeat_index_run(
            "youtube-sim", "powcov", k=5, seeds=(1, 2),
            scale=0.15, num_pairs=25,
        )
        assert result.absolute_error.num_seeds == 2
        assert result.absolute_error.mean >= 0
        assert result.exact_percent.mean > 0
        assert result.speedup.mean > 0

    def test_chromland_repetition(self):
        result = repeat_index_run(
            "youtube-sim", "chromland", k=5, seeds=(1, 2),
            scale=0.15, num_pairs=25, chromland_iterations=30,
        )
        assert result.index == "chromland"
        assert result.relative_error.mean >= 0

    def test_same_seeds_are_deterministic(self):
        """Repeating the same seed tuple reproduces every quality metric
        exactly — only the timing-derived ``speedup`` may drift."""
        kwargs = dict(k=4, seeds=(7, 8), scale=0.15, num_pairs=20)
        first = repeat_index_run("youtube-sim", "powcov", **kwargs)
        second = repeat_index_run("youtube-sim", "powcov", **kwargs)
        for metric in (
            "absolute_error",
            "relative_error",
            "exact_percent",
            "false_negative_percent",
        ):
            a, b = getattr(first, metric), getattr(second, metric)
            assert (a.mean, a.std, a.num_seeds) == (b.mean, b.std, b.num_seeds), metric

    def test_validation(self):
        with pytest.raises(ValueError, match="index"):
            repeat_index_run("youtube-sim", "magic", k=3)
        with pytest.raises(ValueError, match="seed"):
            repeat_index_run("youtube-sim", "powcov", k=3, seeds=())
