"""Differential test harness: every oracle × build backend × executor path.

Hypothesis generates small labeled graphs and the harness runs the full
cross-product

    {PowCov scalar builder, PowCov wave builder, ChromLand, naive baseline}
  × {serial build, thread-pool build}
  × {scalar ``oracle.query`` loop, vectorized ``execute_batch``,
     cached ``QuerySession``, the ``repro.serve`` HTTP wire}

asserting that

* every *exact* configuration (PowCov with a vertex-cover landmark set —
  Theorem 1 — and the naive powerset index) returns the ground-truth
  constrained distance bit-for-bit, on every executor path;
* every ChromLand configuration respects the Theorem 5 upper bound
  (estimate ≥ exact, with ``inf`` agreement), and all ChromLand
  configurations report the *identical* set of bound-violating
  (approximate) queries — build backend and executor path must never
  change which queries are approximated, nor by how much.

``test_harness_detects_executor_divergence`` proves the harness has teeth:
a deliberately corrupted executor must trip the consistency assertions.

The hypothesis budget is environment-tunable so the nightly CI job can run
a much deeper search than the tier-1 gate:

    REPRO_HYPOTHESIS_EXAMPLES=200 pytest tests/test_differential.py
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import all_pairs_all_masks
from repro.core import ChromLandIndex, NaivePowersetIndex, PowCovIndex
from repro.engine import QuerySession, execute_batch
from repro.engine.executors import PowCovExecutor
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.kernels import available_kernels, set_default_kernel
from repro.perf.parallel import SERIAL, ParallelConfig

THREADS = ParallelConfig(num_workers=2, backend="thread", chunk_size=1)
BACKENDS = {"serial": SERIAL, "thread": THREADS}
POWCOV_BUILDERS = ("traverse", "wave")
#: Kernel axis: every backend importable here (numpy always; numba and the
#: on-demand C extension when their toolchains are present).
AVAILABLE_KERNELS = available_kernels()

DIFFERENTIAL = settings(
    max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "10")),
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # The ``kernel`` fixture only flips an idempotent process default,
        # so sharing it across hypothesis examples is intentional.
        HealthCheck.function_scoped_fixture,
    ],
)


@pytest.fixture(params=AVAILABLE_KERNELS)
def kernel(request):
    """Run the decorated test once per available kernel backend."""
    set_default_kernel(request.param)
    try:
        yield request.param
    finally:
        set_default_kernel(None)


# ----------------------------------------------------------------------
# Graph generation
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw) -> EdgeLabeledGraph:
    """Connected-ish undirected labeled graphs, small enough for the naive
    powerset index and all-pairs ground truth."""
    n = draw(st.integers(min_value=4, max_value=9))
    num_labels = draw(st.integers(min_value=1, max_value=3))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=n - 1,
            max_size=min(2 * n, len(pairs)),
            unique=True,
        )
    )
    labels = draw(
        st.lists(
            st.integers(0, num_labels - 1),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    edges = [(u, v, lab) for (u, v), lab in zip(chosen, labels)]
    return EdgeLabeledGraph.from_edges(n, edges, num_labels=num_labels)


# ----------------------------------------------------------------------
# Harness core
# ----------------------------------------------------------------------
_HTTP = {"server": None, "registry": None}


def _http_server():
    """One lazily-booted in-process server shared by every http-path call.

    Each call re-registers the oracle under the same name, so the wire
    axis costs one registry swap + one POST per oracle instead of a
    server boot per hypothesis example.
    """
    if _HTTP["server"] is None:
        from repro.serve import (
            GraphRegistry,
            ServeApp,
            ServeConfig,
            ServerThread,
        )

        registry = GraphRegistry()
        app = ServeApp(
            registry=registry,
            config=ServeConfig(batch_window=0.0, workers=1),
        )
        _HTTP["registry"] = registry
        _HTTP["server"] = ServerThread(app).start()
    return _HTTP["server"], _HTTP["registry"]


@pytest.fixture(scope="module", autouse=True)
def _http_server_teardown():
    yield
    if _HTTP["server"] is not None:
        _HTTP["server"].stop()
        _HTTP["server"] = _HTTP["registry"] = None


def _answers_via_http(oracle, queries) -> list[float]:
    import http.client
    import json

    server, registry = _http_server()
    registry.register("diff", oracle.graph, {"oracle-under-test": oracle})
    body = json.dumps({
        "queries": [[int(s), int(t), int(m)] for s, t, m in queries],
        "oracle": "oracle-under-test",
    })
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    try:
        conn.request(
            "POST", "/graphs/diff/query", body,
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200, payload
    finally:
        conn.close()
    return [math.inf if d is None else d for d in payload["distances"]]


def answers_via(oracle, queries, path: str) -> list[float]:
    """Answer ``queries`` through one of the four executor paths."""
    if path == "scalar":
        return [oracle.query(s, t, m) for s, t, m in queries]
    if path == "batch":
        return execute_batch(oracle, queries)
    if path == "session":
        return QuerySession(oracle).run(queries)
    if path == "http":
        return _answers_via_http(oracle, queries)
    raise ValueError(path)


EXECUTOR_PATHS = ("scalar", "batch", "session", "http")


def assert_paths_agree(oracle, queries, reference: list[float], label: str):
    """Every executor path over ``oracle`` must reproduce ``reference``."""
    for path in EXECUTOR_PATHS:
        got = answers_via(oracle, queries, path)
        for i, (want, have) in enumerate(zip(reference, got)):
            assert math.isinf(want) == math.isinf(have) and (
                math.isinf(want) or want == have
            ), (
                f"{label}/{path} diverged on query {queries[i]}: "
                f"expected {want}, got {have}"
            )


def violation_profile(estimates: list[float], exact: list[float]):
    """The (query index → estimate) map where an oracle is not exact."""
    profile = {}
    for i, (est, ref) in enumerate(zip(estimates, exact)):
        assert est >= ref or math.isinf(ref), (
            f"Theorem 5 violated at query {i}: estimate {est} < exact {ref}"
        )
        if est != ref and not (math.isinf(est) and math.isinf(ref)):
            profile[i] = est
    return profile


# ----------------------------------------------------------------------
# The cross-product
# ----------------------------------------------------------------------
class TestDifferential:
    @DIFFERENTIAL
    @given(small_graphs())
    def test_exact_oracles_match_ground_truth(self, kernel, graph):
        """PowCov (both builders, both backends) and the naive index are
        exact, on every executor path and kernel — Theorem 1 with a
        vertex cover."""
        truth = list(all_pairs_all_masks(graph))
        queries = [(s, t, m) for s, t, m, _ in truth]
        exact = [d for _, _, _, d in truth]

        cover = list(range(graph.num_vertices))  # trivially a vertex cover
        for builder in POWCOV_BUILDERS:
            for backend_name, backend in BACKENDS.items():
                oracle = PowCovIndex(graph, cover, builder=builder).build(
                    parallel=backend
                )
                assert_paths_agree(
                    oracle,
                    queries,
                    exact,
                    f"powcov[{builder}/{backend_name}/{kernel}]",
                )

        naive = NaivePowersetIndex(graph, cover).build()
        assert_paths_agree(naive, queries, exact, f"naive[{kernel}]")

    @DIFFERENTIAL
    @given(small_graphs())
    def test_kernels_agree_bit_for_bit(self, graph):
        """Every available kernel backend reproduces the numpy answers
        exactly — including ChromLand's *approximate* ones, where the
        compiled Dijkstra must replay numpy's IEEE operation order."""
        truth = list(all_pairs_all_masks(graph))
        queries = [(s, t, m) for s, t, m, _ in truth]

        k = min(4, graph.num_vertices)
        landmarks = list(range(k))
        colors = [i % graph.num_labels for i in range(k)]

        answers = {}
        for name in AVAILABLE_KERNELS:
            set_default_kernel(name)
            try:
                powcov = PowCovIndex(
                    graph, range(min(3, graph.num_vertices)), builder="wave"
                ).build()
                chrom = ChromLandIndex(graph, landmarks, colors).build()
                answers[name] = (
                    answers_via(powcov, queries, "batch"),
                    answers_via(chrom, queries, "session"),
                )
            finally:
                set_default_kernel(None)

        reference = answers["numpy"]
        for name, got in answers.items():
            assert got == reference, (
                f"kernel {name!r} diverged from the numpy reference"
            )

    @DIFFERENTIAL
    @given(small_graphs())
    def test_chromland_bound_and_backend_consistency(self, kernel, graph):
        """ChromLand respects the Theorem 5 upper bound and its
        approximation profile is identical across build backends and
        executor paths (under every kernel)."""
        truth = list(all_pairs_all_masks(graph))
        queries = [(s, t, m) for s, t, m, _ in truth]
        exact = [d for _, _, _, d in truth]

        k = min(4, graph.num_vertices)
        landmarks = list(range(k))
        colors = [i % graph.num_labels for i in range(k)]

        profiles = {}
        for backend_name, backend in BACKENDS.items():
            oracle = ChromLandIndex(graph, landmarks, colors).build(
                parallel=backend
            )
            reference = answers_via(oracle, queries, "scalar")
            # All executor paths agree with the scalar reference.
            assert_paths_agree(
                oracle, queries, reference, f"chromland[{backend_name}/{kernel}]"
            )
            # Upper bound holds; record which queries are approximate.
            profiles[backend_name] = violation_profile(reference, exact)

        assert profiles["serial"] == profiles["thread"], (
            "build backend changed ChromLand's approximation profile"
        )

    @DIFFERENTIAL
    @given(small_graphs())
    def test_powcov_builders_agree_bit_for_bit(self, graph):
        """Scalar and wave builders produce interchangeable indexes even
        with a non-covering landmark set (where answers may be inexact)."""
        landmarks = list(range(min(3, graph.num_vertices)))
        reference = None
        for builder in POWCOV_BUILDERS:
            for backend in BACKENDS.values():
                oracle = PowCovIndex(graph, landmarks, builder=builder).build(
                    parallel=backend
                )
                truth = list(all_pairs_all_masks(graph))
                queries = [(s, t, m) for s, t, m, _ in truth]
                got = answers_via(oracle, queries, "batch")
                if reference is None:
                    reference = got
                    assert_paths_agree(oracle, queries, reference, builder)
                else:
                    assert got == reference, (
                        f"{builder} builder diverged from {POWCOV_BUILDERS[0]}"
                    )


# ----------------------------------------------------------------------
# The harness must fail when an executor diverges
# ----------------------------------------------------------------------
class TestHarnessSensitivity:
    def test_harness_detects_executor_divergence(self, monkeypatch):
        """A corrupted vectorized executor trips the consistency check."""
        graph = labeled_erdos_renyi(20, 45, num_labels=3, seed=5)
        oracle = PowCovIndex(
            graph, range(graph.num_vertices), builder="traverse"
        ).build()
        truth = list(all_pairs_all_masks(graph))
        queries = [(s, t, m) for s, t, m, _ in truth][:200]
        exact = [d for _, _, _, d in truth][:200]

        # Sanity: the untampered executor passes.
        assert_paths_agree(oracle, queries, exact, "powcov")

        real = PowCovExecutor.execute_group

        def corrupted(self, mask_plan, group):
            out = np.asarray(real(self, mask_plan, group), dtype=np.float64)
            out = out.copy()
            out[np.isfinite(out)] += 1.0
            return out

        monkeypatch.setattr(PowCovExecutor, "execute_group", corrupted)
        with pytest.raises(AssertionError, match="diverged"):
            assert_paths_agree(oracle, queries, exact, "powcov-mutated")

    def test_bound_checker_detects_underestimates(self):
        """``violation_profile`` rejects estimates below the exact value."""
        with pytest.raises(AssertionError, match="Theorem 5"):
            violation_profile([1.0], [2.0])
        # ...but accepts genuine upper bounds and records them.
        assert violation_profile([3.0, 2.0, math.inf], [2.0, 2.0, math.inf]) == {
            0: 3.0
        }
