"""Tests for the batched multi-source BFS kernel and the label-filter cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import labeled_erdos_renyi, labeled_grid
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.traversal import constrained_bfs, label_filter
from repro.perf.batched import batched_constrained_bfs, exact_workload_distances
from repro.workloads import generate_workload


def directed_random(n=45, m=160, labels=4, seed=0) -> EdgeLabeledGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((u, v, int(rng.integers(labels))))
    return EdgeLabeledGraph.from_edges(
        n, sorted(edges), num_labels=labels, directed=True
    )


class TestLabelFilterCache:
    def test_matches_per_label_bit_test(self):
        graph = labeled_erdos_renyi(30, 70, num_labels=5, seed=0)
        for mask in range(0, 1 << graph.num_labels):
            expected = np.array(
                [bool(mask & (1 << label)) for label in range(graph.num_labels)]
            )
            assert np.array_equal(label_filter(graph, mask), expected)

    def test_memoized_per_graph_and_mask(self):
        graph = labeled_erdos_renyi(30, 70, num_labels=4, seed=1)
        other = labeled_erdos_renyi(30, 70, num_labels=4, seed=2)
        assert label_filter(graph, 5) is label_filter(graph, 5)
        assert label_filter(graph, 5) is not label_filter(other, 5)
        assert label_filter(graph, 5) is not label_filter(graph, 6)

    def test_constrained_bfs_reuses_cached_table(self):
        graph = labeled_erdos_renyi(40, 100, num_labels=4, seed=3)
        constrained_bfs(graph, 0, 5)
        cached = graph._label_filter_cache[5]
        constrained_bfs(graph, 7, 5)
        assert graph._label_filter_cache[5] is cached

    def test_limit_evicts_oldest_entry_only(self, monkeypatch):
        # Hitting the cap drops the single oldest table, not the whole
        # cache: recent entries (a hot working set) survive the limit.
        from repro.graph import traversal

        monkeypatch.setattr(traversal, "_LABEL_FILTER_CACHE_LIMIT", 3)
        graph = labeled_erdos_renyi(25, 60, num_labels=5, seed=4)
        for mask in (1, 2, 3):
            label_filter(graph, mask)
        kept = graph._label_filter_cache[3]
        label_filter(graph, 4)  # evicts mask 1 (oldest) only
        assert set(graph._label_filter_cache) == {2, 3, 4}
        assert graph._label_filter_cache[3] is kept
        label_filter(graph, 5)
        assert set(graph._label_filter_cache) == {3, 4, 5}


class TestBatchedConstrainedBFS:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rows_match_single_source(self, seed):
        graph = labeled_erdos_renyi(70, 220, num_labels=4, seed=seed)
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, graph.num_vertices, size=8)
        universe = (1 << graph.num_labels) - 1
        masks = [int(m) for m in rng.integers(1, universe + 1, size=8)]
        batch = batched_constrained_bfs(graph, sources, masks=masks)
        assert batch.shape == (8, graph.num_vertices)
        for i, (s, m) in enumerate(zip(sources, masks)):
            assert np.array_equal(batch[i], constrained_bfs(graph, int(s), m))

    def test_shared_mask(self):
        graph = labeled_grid(6, 6, num_labels=3)
        sources = [0, 5, 17, 35]
        batch = batched_constrained_bfs(graph, sources, mask=3)
        for i, s in enumerate(sources):
            assert np.array_equal(batch[i], constrained_bfs(graph, s, 3))

    def test_none_mask_means_all_labels(self):
        graph = labeled_erdos_renyi(40, 120, num_labels=3, seed=5)
        universe = (1 << graph.num_labels) - 1
        batch = batched_constrained_bfs(graph, [0, 1])
        assert np.array_equal(batch[0], constrained_bfs(graph, 0, universe))

    def test_directed(self):
        graph = directed_random(seed=7)
        sources = [0, 10, 20, 30]
        masks = [1, 3, 7, 5]
        batch = batched_constrained_bfs(graph, sources, masks=masks)
        for i, (s, m) in enumerate(zip(sources, masks)):
            assert np.array_equal(batch[i], constrained_bfs(graph, s, m))

    def test_duplicate_sources_are_independent_rows(self):
        graph = labeled_erdos_renyi(40, 120, num_labels=3, seed=9)
        batch = batched_constrained_bfs(graph, [4, 4], masks=[1, 7])
        assert np.array_equal(batch[0], constrained_bfs(graph, 4, 1))
        assert np.array_equal(batch[1], constrained_bfs(graph, 4, 7))

    def test_empty_sources(self):
        graph = labeled_erdos_renyi(20, 40, num_labels=2, seed=0)
        batch = batched_constrained_bfs(graph, [])
        assert batch.shape == (0, graph.num_vertices)

    def test_source_out_of_range(self):
        graph = labeled_erdos_renyi(20, 40, num_labels=2, seed=0)
        with pytest.raises(ValueError, match="range"):
            batched_constrained_bfs(graph, [25])

    def test_masks_length_mismatch(self):
        graph = labeled_erdos_renyi(20, 40, num_labels=2, seed=0)
        with pytest.raises(ValueError, match="parallel"):
            batched_constrained_bfs(graph, [1, 2], masks=[1])

    def test_zero_mask_reaches_nothing(self):
        graph = labeled_erdos_renyi(20, 40, num_labels=2, seed=0)
        batch = batched_constrained_bfs(graph, [3], masks=[0])
        assert batch[0, 3] == 0
        assert (batch[0] == -1).sum() == graph.num_vertices - 1

    @pytest.mark.parametrize("rows", [1, 2, 3, 4, 9, 70, 150])
    def test_early_dying_frontiers_every_batch_height(self, rows):
        # Mixed restrictive/permissive masks: some rows' frontiers die at
        # level 1 while others keep expanding.  Heights straddle the
        # bitset threshold and the 64-row chunk boundary, so both kernels
        # (and multi-chunk packing) must keep dead rows dead.
        graph = labeled_erdos_renyi(55, 140, num_labels=5, seed=21)
        universe = (1 << graph.num_labels) - 1
        sources = [(7 * i) % graph.num_vertices for i in range(rows)]
        masks = [0 if i % 3 == 0 else (1 if i % 3 == 1 else universe)
                 for i in range(rows)]
        batch = batched_constrained_bfs(graph, sources, masks=masks)
        for i, (s, m) in enumerate(zip(sources, masks)):
            assert np.array_equal(batch[i], constrained_bfs(graph, s, m)), i

    def test_early_dying_frontiers_directed(self):
        graph = directed_random(seed=17)
        sources = [0, 5, 10, 15, 20, 25]
        masks = [0, 1, 2, 15, 1, 15]
        batch = batched_constrained_bfs(graph, sources, masks=masks)
        for i, (s, m) in enumerate(zip(sources, masks)):
            assert np.array_equal(batch[i], constrained_bfs(graph, s, m))

    def test_trailing_vertex_without_in_arcs(self):
        # Regression: the bit-parallel kernel once clamped reduceat
        # segment starts to num_arcs - 1 for empty tail segments, which
        # silently truncated the *preceding* vertex's arc range — here the
        # last arc into vertex 3 is the only way to reach it, and vertex 4
        # has no arcs at all.
        graph = EdgeLabeledGraph.from_edges(
            5, [(0, 1, 0), (1, 2, 1), (2, 3, 1)], num_labels=2, directed=True
        )
        masks = [0b11, 0b11, 0b11, 0b10]
        batch = batched_constrained_bfs(graph, [0, 0, 0, 1], masks=masks)
        assert batch[0].tolist() == [0, 1, 2, 3, -1]
        assert batch[3].tolist() == [-1, 0, 1, 2, -1]

    @pytest.mark.parametrize("max_level", [0, 1, 2, 3])
    def test_max_level_clips_like_full_bfs(self, max_level):
        graph = labeled_grid(7, 7, num_labels=3)
        sources = [0, 24, 48, 10]
        masks = [7, 7, 3, 5]
        clipped = batched_constrained_bfs(
            graph, sources, masks=masks, max_level=max_level
        )
        full = batched_constrained_bfs(graph, sources, masks=masks)
        expected = np.where(full > max_level, -1, full)
        assert np.array_equal(clipped, expected)

    def test_max_level_shared_mask_path(self):
        graph = labeled_grid(6, 6, num_labels=2)
        clipped = batched_constrained_bfs(graph, [0, 35], mask=3, max_level=2)
        full = batched_constrained_bfs(graph, [0, 35], mask=3)
        assert np.array_equal(clipped, np.where(full > 2, -1, full))

    def test_negative_max_level_rejected(self):
        graph = labeled_erdos_renyi(20, 40, num_labels=2, seed=0)
        with pytest.raises(ValueError, match="max_level"):
            batched_constrained_bfs(graph, [0], max_level=-1)


class TestExactWorkloadDistances:
    def test_matches_per_query_bfs(self):
        graph = labeled_erdos_renyi(50, 150, num_labels=3, seed=11)
        rng = np.random.default_rng(0)
        universe = (1 << graph.num_labels) - 1
        queries = [
            (
                int(rng.integers(graph.num_vertices)),
                int(rng.integers(graph.num_vertices)),
                int(rng.integers(1, universe + 1)),
            )
            for _ in range(40)
        ]
        got = exact_workload_distances(graph, queries, batch_size=4)
        for (s, t, mask), value in zip(queries, got):
            dist = constrained_bfs(graph, s, mask)
            expected = float(dist[t]) if dist[t] >= 0 else float("inf")
            assert value == expected

    def test_generate_workload_batched_identical(self):
        graph = labeled_erdos_renyi(60, 170, num_labels=4, seed=13)
        default = generate_workload(graph, num_pairs=25, seed=5)
        batched = generate_workload(
            graph, num_pairs=25, seed=5, exact_method="batched"
        )
        assert default.queries == batched.queries

    def test_generate_workload_batched_keep_infinite(self):
        graph = labeled_erdos_renyi(60, 170, num_labels=4, seed=13)
        default = generate_workload(graph, num_pairs=10, seed=3, keep_infinite=True)
        batched = generate_workload(
            graph, num_pairs=10, seed=3, keep_infinite=True, exact_method="batched"
        )
        assert default.queries == batched.queries

    def test_generate_workload_rejects_unknown_method(self):
        graph = labeled_erdos_renyi(20, 50, num_labels=2, seed=0)
        with pytest.raises(ValueError, match="exact_method"):
            generate_workload(graph, num_pairs=2, seed=0, exact_method="psychic")
