"""Registry lifecycle tests: LRU, single-flight loads, fingerprints, deltas.

These pin the serving-layer state machine rather than the HTTP surface:

* warm-session LRU eviction under ``max_sessions``;
* store-backed loads reject an index whose embedded fingerprint does not
  match the registered graph (a renamed/stale file never silently serves);
* N threads racing on a cold oracle trigger exactly one loader call;
* ``apply_delta`` rebinds live sessions so post-delta queries are fresh —
  no stale cache hits survive the mutation.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core import PowCovIndex
from repro.graph.delta import GraphDelta
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.serve import GraphRegistry, UnknownGraphError, UnknownOracleError
from repro.store.cache import IndexStore
from repro.store.format import FormatError


def path_graph(n: int = 6, label: int = 0, num_labels: int = 2):
    edges = [(i, i + 1, label) for i in range(n - 1)]
    return EdgeLabeledGraph.from_edges(n, edges, num_labels=num_labels)


def build_powcov(graph):
    # Every vertex as landmark: a vertex cover, so answers are exact.
    return PowCovIndex(graph, range(graph.num_vertices)).build()


@pytest.fixture()
def graph():
    return path_graph()


@pytest.fixture()
def oracle(graph):
    return build_powcov(graph)


class TestRegistration:
    def test_unknown_graph_and_oracle(self, graph, oracle):
        registry = GraphRegistry()
        with pytest.raises(UnknownGraphError):
            registry.session("missing", "powcov")
        registry.register("g", graph, {"powcov": oracle})
        with pytest.raises(UnknownOracleError):
            registry.session("g", "chromland")

    def test_describe_lists_kinds(self, graph, oracle):
        registry = GraphRegistry()
        registry.register("g", graph, {"powcov": oracle})
        registry.register_loader("g", "lazy", lambda: oracle)
        (entry,) = registry.describe()
        assert entry["oracles"] == ["lazy", "powcov"]
        assert entry["loaded"] == ["powcov"]  # lazy not yet touched

    def test_reregister_drops_sessions(self, graph, oracle):
        registry = GraphRegistry()
        registry.register("g", graph, {"powcov": oracle})
        registry.session("g", "powcov")
        assert registry.session_keys() == [("g", "powcov")]
        registry.register("g", graph, {"powcov": oracle})
        assert registry.session_keys() == []


class TestSessionLRU:
    def test_eviction_under_max_sessions(self, graph):
        registry = GraphRegistry(max_sessions=2)
        oracle = build_powcov(graph)
        for name in ("a", "b", "c"):
            registry.register(name, graph, {"powcov": oracle})
            registry.session(name, "powcov")
        assert registry.session_evictions == 1
        assert registry.session_keys() == [("b", "powcov"), ("c", "powcov")]

    def test_touch_refreshes_recency(self, graph):
        registry = GraphRegistry(max_sessions=2)
        oracle = build_powcov(graph)
        for name in ("a", "b"):
            registry.register(name, graph, {"powcov": oracle})
            registry.session(name, "powcov")
        registry.session("a", "powcov")  # refresh: now b is the LRU
        registry.register("c", graph, {"powcov": oracle})
        registry.session("c", "powcov")
        assert registry.session_keys() == [("a", "powcov"), ("c", "powcov")]

    def test_evicted_session_is_rebuilt_on_demand(self, graph):
        registry = GraphRegistry(max_sessions=1)
        oracle = build_powcov(graph)
        registry.register("a", graph, {"powcov": oracle})
        registry.register("b", graph, {"powcov": oracle})
        first = registry.session("a", "powcov")
        registry.session("b", "powcov")  # evicts a
        rebuilt = registry.session("a", "powcov")
        assert rebuilt is not first
        assert rebuilt.run([(0, 5, 1)]) == [5.0]


class TestStoreBackedLoads:
    def test_round_trip_through_store(self, tmp_path, graph, oracle):
        store = IndexStore(tmp_path)
        store.save(oracle)
        registry = GraphRegistry()
        registry.register_store("g", graph, store, kinds=("powcov",))
        session = registry.session("g", "powcov")
        assert session.run([(0, 5, 1)]) == [5.0]
        assert registry.load_counts[("g", "powcov")] == 1

    def test_missing_index_raises_unknown_oracle(self, tmp_path, graph):
        registry = GraphRegistry()
        registry.register_store(
            "g", graph, IndexStore(tmp_path), kinds=("powcov",)
        )
        with pytest.raises(UnknownOracleError):
            registry.oracle("g", "powcov")

    def test_fingerprint_mismatch_rejected_on_load(self, tmp_path, graph):
        """A store file renamed to another graph's key must not serve: the
        embedded fingerprint is re-verified at load time."""
        other = path_graph(n=6, label=1)  # same shape, different labels
        store = IndexStore(tmp_path)
        saved = store.save(build_powcov(other))
        # Masquerade: give the foreign index the filename the registered
        # graph's loader will look up.
        disguised = store.path_for("powcov", graph)
        os.rename(saved, disguised)

        registry = GraphRegistry()
        registry.register_store("g", graph, store, kinds=("powcov",))
        with pytest.raises(FormatError):
            registry.oracle("g", "powcov")


class TestSingleFlight:
    def test_concurrent_first_touch_loads_once(self, graph, oracle):
        """N threads racing on a cold oracle: the loader runs exactly once
        and every thread gets the same instance."""
        loads = []
        gate = threading.Event()

        def slow_loader():
            gate.wait(timeout=10)
            time.sleep(0.05)  # hold the flight open across all arrivals
            loads.append(1)
            return oracle

        registry = GraphRegistry()
        registry.register("g", graph)
        registry.register_loader("g", "powcov", slow_loader)

        results = [None] * 8
        def touch(i):
            results[i] = registry.oracle("g", "powcov")

        threads = [
            threading.Thread(target=touch, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(timeout=30)
        assert len(loads) == 1
        assert registry.load_counts[("g", "powcov")] == 1
        assert all(r is oracle for r in results)

    def test_failed_load_releases_the_flight(self, graph, oracle):
        attempts = []

        def flaky_loader():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return oracle

        registry = GraphRegistry()
        registry.register("g", graph)
        registry.register_loader("g", "powcov", flaky_loader)
        with pytest.raises(RuntimeError):
            registry.oracle("g", "powcov")
        assert registry.oracle("g", "powcov") is oracle  # retry succeeds


class TestDeltaRebind:
    def test_rebind_after_delta_serves_fresh_answers(self, graph):
        """Warm the cache, mutate the graph, and re-ask the same query:
        the answer must reflect the mutation (no stale cache hit)."""
        registry = GraphRegistry()
        registry.register("g", graph, {"powcov": build_powcov(graph)})
        session = registry.session("g", "powcov")
        assert session.run([(0, 5, 1)]) == [5.0]  # now cached

        info = registry.apply_delta(
            "g", GraphDelta(insertions=((0, 5, 0),))
        )
        assert info["repaired"] == ["powcov"]
        assert registry.session("g", "powcov") is session  # same warm session
        assert session.run([(0, 5, 1)]) == [1.0]  # shortcut, not the stale 5.0
        assert session.query(0, 5, 1) == 1.0

    def test_delta_bumps_listed_version(self, graph):
        registry = GraphRegistry()
        registry.register("g", graph, {"powcov": build_powcov(graph)})
        before = registry.describe()[0]["version"]
        registry.apply_delta("g", GraphDelta(insertions=((0, 2, 1),)))
        after = registry.describe()[0]["version"]
        assert after == before + 1

    def test_delta_on_unknown_graph(self):
        registry = GraphRegistry()
        with pytest.raises(UnknownGraphError):
            registry.apply_delta("nope", GraphDelta(insertions=((0, 1, 0),)))

    def test_unloaded_store_loaders_dropped_after_delta(
        self, tmp_path, graph
    ):
        """A never-loaded store file describes the pre-delta fingerprint;
        after the delta its kind must vanish rather than serve stale."""
        store = IndexStore(tmp_path)
        store.save(build_powcov(graph))
        registry = GraphRegistry()
        registry.register_store("g", graph, store, kinds=("powcov",))
        registry.apply_delta("g", GraphDelta(insertions=((0, 3, 1),)))
        assert registry.oracle_kinds("g") == []
        with pytest.raises(UnknownOracleError):
            registry.oracle("g", "powcov")
