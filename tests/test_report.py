"""Tests for the claims-checker report module."""

from __future__ import annotations


from repro.eval.figures import Figure6Series
from repro.eval.metrics import OracleMetrics
from repro.eval.report import (
    check_figure6,
    check_table2,
    check_table3,
    check_table4,
    render_report,
)
from repro.eval.runner import IndexRun
from repro.eval.tables import Table2Row, Table3Row, Table4Cell


def metrics(abs_err=1.0, fn=0.0, qsec=1e-4) -> OracleMetrics:
    return OracleMetrics(
        num_queries=100, absolute_error=abs_err, relative_error=abs_err / 5,
        exact_fraction=0.5, false_negative_fraction=fn, mean_query_seconds=qsec,
    )


def run(abs_err=1.0, fn=0.0, speedup=10.0) -> IndexRun:
    return IndexRun("x", 10, 1.0, metrics(abs_err, fn), speedup)


class TestTable2Checks:
    def test_all_pass_on_paper_shaped_rows(self):
        rows = [
            Table2Row("biogrid-sim", 7, 5.0, 80.0),
            Table2Row("synthetic-4", 4, 9.0, 13.0),
            Table2Row("synthetic-6", 6, 24.0, 56.0),
            Table2Row("synthetic-8", 8, 60.0, 233.0),
        ]
        checks = check_table2(rows)
        assert all(c.passed for c in checks)

    def test_detects_inverted_sizes(self):
        rows = [Table2Row("biogrid-sim", 7, 90.0, 80.0)]
        checks = check_table2(rows)
        t21 = next(c for c in checks if c.claim_id == "T2.1")
        assert not t21.passed

    def test_detects_non_growing_savings(self):
        rows = [
            Table2Row("synthetic-4", 4, 5.0, 50.0),    # 90% saving
            Table2Row("synthetic-8", 8, 40.0, 80.0),   # 50% saving
        ]
        t23 = next(c for c in check_table2(rows) if c.claim_id == "T2.3")
        assert not t23.passed


class TestTable3Checks:
    def make_row(self, name, labels, chrom, traverse, brute, tt, bt):
        return Table3Row(name, labels, chrom, traverse, brute, tt, bt, 1, 1)

    def test_pass_shape(self):
        rows = [
            self.make_row("synthetic-4", 4, 0.1, 1.0, 1.2, 50, 100),
            self.make_row("synthetic-8", 8, 0.1, 5.0, 7.0, 100, 400),
        ]
        assert all(c.passed for c in check_table3(rows))

    def test_detects_test_inflation(self):
        rows = [self.make_row("synthetic-4", 4, 0.1, 1.0, 1.2, 200, 100)]
        t32 = next(c for c in check_table3(rows) if c.claim_id == "T3.2")
        assert not t32.passed


class TestTable4Checks:
    def cells(self, powcov_errs, chrom_errs, ks=(10, 20)):
        out = []
        for k, pe, ce in zip(ks, powcov_errs, chrom_errs):
            out.append(Table4Cell("d", "PowCov", k, run(abs_err=pe)))
            out.append(Table4Cell("d", "ChromLand", k, run(abs_err=ce)))
        return out

    def test_pass_shape(self):
        checks = check_table4(self.cells([1.0, 0.5], [3.0, 2.5]))
        assert all(c.passed for c in checks)

    def test_detects_accuracy_inversion(self):
        checks = check_table4(self.cells([5.0, 4.0], [1.0, 1.0]))
        t41 = next(c for c in checks if c.claim_id == "T4.1")
        assert not t41.passed

    def test_detects_error_growth_with_k(self):
        checks = check_table4(self.cells([0.5, 2.0], [3.0, 3.0]))
        t42 = next(c for c in checks if c.claim_id == "T4.2")
        assert not t42.passed


class TestFigure6Checks:
    def panel(self, proposed, rnd, best, index="PowCov"):
        return Figure6Series(
            dataset="d", index=index, ks=[10, 20],
            proposed=proposed, b_rnd=rnd, b_best=best,
            b_best_strategy=["degree", "degree"],
        )

    def test_pass_shape(self):
        panels = [
            self.panel([0.2, 0.1], [0.5, 0.4], [0.3, 0.2]),
            self.panel([0.6, 0.5], [1.0, 0.9], [0.8, 0.7], index="ChromLand"),
        ]
        assert all(c.passed for c in check_figure6(panels))

    def test_detects_baseline_win(self):
        panels = [self.panel([0.9, 0.9], [0.2, 0.2], [0.2, 0.2])]
        checks = check_figure6(panels)
        assert not checks[0].passed


class TestRender:
    def test_markdown_output(self):
        rows = [Table2Row("d", 4, 5.0, 50.0)]
        text = render_report(check_table2(rows))
        assert "| claim |" in text
        assert "claims reproduced" in text
        assert "PASS" in text or "DRIFT" in text
