"""Tests for label hierarchies (footnote 2 support)."""

from __future__ import annotations

import math

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.hierarchy import LabelHierarchy
from repro.graph.traversal import bidirectional_constrained_bfs


@pytest.fixture
def social_graph():
    builder = GraphBuilder()
    builder.add_edge("a", "b", "friend")
    builder.add_edge("b", "c", "family")
    builder.add_edge("c", "d", "colleague")
    builder.add_edge("a", "d", "follows")
    return builder.build()


@pytest.fixture
def hierarchy():
    return LabelHierarchy({
        "friend": "social",
        "family": "social",
        "colleague": "work",
        "follows": "work",
        "social": "any",
        "work": "any",
    })


class TestStructure:
    def test_roots_and_leaves(self, hierarchy):
        assert hierarchy.roots() == ["any"]
        assert hierarchy.is_leaf("friend")
        assert not hierarchy.is_leaf("social")

    def test_leaves_under(self, hierarchy):
        assert hierarchy.leaves_under("social") == {"friend", "family"}
        assert hierarchy.leaves_under("any") == {
            "friend", "family", "colleague", "follows"
        }
        assert hierarchy.leaves_under("friend") == {"friend"}

    def test_unknown_node(self, hierarchy):
        with pytest.raises(KeyError):
            hierarchy.leaves_under("nonsense")

    def test_parent(self, hierarchy):
        assert hierarchy.parent("friend") == "social"
        assert hierarchy.parent("any") is None

    def test_ancestor_at_depth(self, hierarchy):
        assert hierarchy.ancestor_at_depth("friend", 0) == "any"
        assert hierarchy.ancestor_at_depth("friend", 1) == "social"
        assert hierarchy.ancestor_at_depth("friend", 2) == "friend"
        assert hierarchy.ancestor_at_depth("friend", 99) == "friend"

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            LabelHierarchy({"a": "b", "b": "a"})

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError, match="own parent"):
            LabelHierarchy({"a": "a"})


class TestGraphIntegration:
    def test_mask_expansion(self, social_graph, hierarchy):
        mask = hierarchy.mask(social_graph, ["social"])
        assert mask == social_graph.mask(["friend", "family"])

    def test_category_query(self, social_graph, hierarchy):
        a = 0
        d = 3
        social_mask = hierarchy.mask(social_graph, ["social"])
        work_mask = hierarchy.mask(social_graph, ["work"])
        # a -> d via work edges: direct "follows" edge
        assert bidirectional_constrained_bfs(social_graph, a, d, work_mask) == 1
        # a -> d via social edges: no path (social covers only a-b-c)
        assert math.isinf(
            bidirectional_constrained_bfs(social_graph, a, d, social_mask)
        )

    def test_mask_ignores_unused_leaves(self, social_graph):
        hierarchy = LabelHierarchy({"friend": "social", "enemy": "social"})
        mask = hierarchy.mask(social_graph, ["social"])
        assert mask == social_graph.mask(["friend"])

    def test_plain_leaf_passthrough(self, social_graph, hierarchy):
        assert hierarchy.mask(social_graph, ["friend"]) == social_graph.mask(
            ["friend"]
        )

    def test_collapse_depth1(self, social_graph, hierarchy):
        collapsed = hierarchy.collapse(social_graph, depth=1)
        assert collapsed.num_labels == 2
        assert set(collapsed.label_universe.names) == {"social", "work"}
        # distances under a category match leaf-expansion on the original
        social_new = collapsed.mask(["social"])
        social_old = hierarchy.mask(social_graph, ["social"])
        for s in range(4):
            for t in range(4):
                assert bidirectional_constrained_bfs(
                    collapsed, s, t, social_new
                ) == bidirectional_constrained_bfs(social_graph, s, t, social_old)

    def test_collapse_depth0_single_label(self, social_graph, hierarchy):
        collapsed = hierarchy.collapse(social_graph, depth=0)
        assert collapsed.num_labels == 1
        assert collapsed.label_universe.names == ["any"]

    def test_requires_label_universe(self, hierarchy):
        from repro.graph.labeled_graph import EdgeLabeledGraph
        g = EdgeLabeledGraph.from_edges(2, [(0, 1, 0)], num_labels=1)
        with pytest.raises(ValueError, match="universe"):
            hierarchy.mask(g, ["social"])
        with pytest.raises(ValueError, match="universe"):
            hierarchy.collapse(g)
