"""Tests for the flow-sensitive dataflow analyzer (``repro.analysis.flow``).

Covers four layers: the fixture corpus in ``tests/lint_fixtures/`` (one
clean + one violation file per flow rule, mirroring test_lint.py), the CFG
builder and fixpoint engine on synthetic programs (including
hypothesis-generated control flow), the baseline/fingerprint/cache
machinery, and the ``python -m repro.analysis flow`` CLI end to end.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.flow import (
    FLOW_RULES,
    analyze_paths,
    analyze_source,
    build_cfg,
    finding_fingerprints,
    load_baseline,
    main,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"

#: rule id -> (violation fixture, exact {(line, col), ...} of its findings)
VIOLATIONS = {
    "REPRO009": ("repro009_violation.py", {(13, 12), (20, 18), (27, 12), (32, 5)}),
    "REPRO010": ("repro010_violation.py", {(11, 12), (15, 12)}),
    "REPRO011": ("repro011_violation.py", {(12, 35), (16, 48)}),
    "REPRO012": ("repro012_violation.py", {(10, 13), (18, 12), (23, 5)}),
    "REPRO013": ("repro013_violation.py", {(13, 5), (18, 12), (24, 5)}),
}

CLEAN = {
    "REPRO009": "repro009_clean.py",
    "REPRO010": "repro010_clean.py",
    "REPRO011": "repro011_clean.py",
    "REPRO012": "repro012_clean.py",
    "REPRO013": "repro013_clean.py",
}


def _analyze(path: Path, **kwargs):
    return analyze_source(path.read_text(encoding="utf-8"), path, **kwargs)


def test_corpus_covers_every_flow_rule():
    assert sorted(VIOLATIONS) == sorted(CLEAN) == sorted(FLOW_RULES)


@pytest.mark.parametrize("rule", sorted(VIOLATIONS))
def test_rule_flags_violation_fixture(rule):
    name, expected = VIOLATIONS[rule]
    findings = _analyze(FIXTURES / name)
    # Fixtures are crafted to violate exactly one rule, at exact positions.
    assert {f.rule for f in findings} == {rule}, [f.format() for f in findings]
    assert {(f.line, f.col) for f in findings} == expected


@pytest.mark.parametrize("rule", sorted(CLEAN))
def test_rule_passes_clean_fixture(rule):
    findings = _analyze(FIXTURES / CLEAN[rule])
    assert findings == [], [f.format() for f in findings]


# ---------------------------------------------------------------------------
# CFG builder
# ---------------------------------------------------------------------------


def _cfg_of(source: str):
    import ast

    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body)


def test_cfg_straight_line_reaches_exit():
    blocks, entry, exit_, _ = _cfg_of("a = 1\nb = a\nc = b\n")
    # No calls anywhere: a single block holds all three ops.
    assert blocks[entry].ops
    assert exit_ in blocks[entry].succs
    assert not blocks[entry].exc_succs


def test_cfg_branch_joins():
    blocks, entry, exit_, _ = _cfg_of(
        """
        if a:
            b = 1
        else:
            b = 2
        c = b
        """
    )
    then_b, else_b = blocks[entry].succs
    # Both arms funnel into the join block that precedes exit.
    (join_from_then,) = blocks[then_b].succs
    (join_from_else,) = blocks[else_b].succs
    assert join_from_then == join_from_else
    assert exit_ in blocks[join_from_then].succs


def test_cfg_loop_has_back_edge():
    blocks, _, exit_, raise_exit = _cfg_of(
        """
        while a:
            a = a - 1
        """
    )
    # The loop body must jump backwards to the loop head (a lower block id
    # that is not one of the synthetic exit blocks).
    back = [
        (i, s)
        for i, b in enumerate(blocks)
        for s in b.succs
        if s <= i and s not in (exit_, raise_exit)
    ]
    assert back


def test_cfg_call_gets_exception_edge():
    blocks, _, _, raise_exit = _cfg_of("x = f()\n")
    raisers = [b for b in blocks if b.exc_succs]
    assert raisers and all(raise_exit in b.exc_succs for b in raisers)
    # May-raise statements are isolated: one op per raising block.
    assert all(len(b.ops) == 1 for b in raisers)


def test_cfg_cleanup_statement_does_not_raise():
    blocks, _, _, _ = _cfg_of("x.close()\nx.unlink()\n")
    assert not any(b.exc_succs for b in blocks)


def test_cfg_edges_are_well_formed():
    blocks, entry, exit_, raise_exit = _cfg_of(
        """
        try:
            x = f()
        except ValueError:
            x = None
        finally:
            g()
        return x
        """
    )
    n = len(blocks)
    for b in blocks:
        assert all(0 <= s < n for s in b.succs)
        assert all(0 <= s < n for s in b.exc_succs)
    assert {entry, exit_, raise_exit} <= set(range(n))


# ---------------------------------------------------------------------------
# Fixpoint engine on synthetic programs (hypothesis)
# ---------------------------------------------------------------------------

_NAMES = st.sampled_from(["a", "b", "c"])
_EXPRS = st.sampled_from(["0", "1", "a + 1", "b - a", "min(a, b)", "a"])
_ASSIGN = st.builds("{} = {}".format, _NAMES, _EXPRS)


def _block(stmts: list[str]) -> str:
    return textwrap.indent("\n".join(stmts) or "pass", "    ")


_STMT = st.deferred(
    lambda: st.one_of(
        _ASSIGN,
        st.builds(
            lambda cond, body, orelse: (
                f"if {cond} > 0:\n{_block(body)}\nelse:\n{_block(orelse)}"
            ),
            _NAMES,
            st.lists(_STMT, max_size=3),
            st.lists(_STMT, max_size=3),
        ),
        st.builds(
            lambda cond, body: f"while {cond} > 0:\n{_block(body)}",
            _NAMES,
            st.lists(_STMT, max_size=3),
        ),
        st.builds(
            lambda var, bound, body: f"for {var} in range({bound}):\n{_block(body)}",
            _NAMES,
            _NAMES,
            st.lists(_STMT, max_size=3),
        ),
    )
)


@settings(max_examples=40, deadline=None)
@given(st.lists(_STMT, min_size=1, max_size=5))
def test_engine_terminates_on_generated_control_flow(stmts):
    source = "def f(a, b, c):\n" + _block(stmts) + "\n    return a\n"
    compile(source, "<gen>", "exec")  # the generator must emit valid Python
    blocks, _, _, _ = _cfg_of(source)
    n = len(blocks)
    assert all(0 <= s < n for b in blocks for s in b.succs + b.exc_succs)
    # The widening fixpoint must converge without findings: the generated
    # programs only do unit-free integer arithmetic.
    findings = analyze_source(source, Path("gen.py"))
    assert findings == []


def test_widening_handles_unbounded_counter():
    source = textwrap.dedent(
        """
        def f(n: int) -> int:
            total = 0
            while total < n:
                total = total + 1
            return total
        """
    )
    assert analyze_source(source, Path("gen.py")) == []


def test_dtype_join_reports_possible_narrowing():
    # After the branch join `idx` is {int32, int64}.  The analyzer cannot
    # see that source and target widths are correlated, so the cast is a
    # *may*-narrow finding — the exact scenario the inline noqas and the
    # baseline entry in perf/batched.py document.
    source = textwrap.dedent(
        """
        import numpy as np

        def f(wide: bool) -> "np.ndarray":
            idx = np.int64 if wide else np.int32
            rows = np.zeros(4, dtype=idx)
            return rows.astype(idx)
        """
    )
    findings = analyze_source(source, Path("gen.py"))
    assert [f.rule for f in findings] == ["REPRO009"]
    assert "int32|int64" in findings[0].message


def test_unknown_dtype_never_fires():
    # No information is not a finding: casting an array of unknown dtype
    # is silent, by design (the engine only reports when it can point at a
    # wider source width).
    source = textwrap.dedent(
        """
        import numpy as np

        def f(rows) -> "np.ndarray":
            return rows.astype(np.int32)
        """
    )
    assert analyze_source(source, Path("gen.py")) == []


def test_provable_narrowing_still_fires_after_join():
    source = textwrap.dedent(
        """
        import numpy as np

        def f(wide: bool) -> "np.ndarray":
            rows = np.zeros(4, dtype=np.int64)
            return rows.astype(np.int16)
        """
    )
    findings = analyze_source(source, Path("gen.py"))
    assert [f.rule for f in findings] == ["REPRO009"]


def test_container_escape_suppresses_leak():
    # Regression for perf/parallel.py: resources held by list elements
    # escape when the container does.
    attach = "from repro.perf.shm import attach_graph\n"
    leaking = attach + textwrap.dedent(
        """
        def f(descs):
            handles = [attach_graph(d) for d in descs]
        """
    )
    escaping = attach + textwrap.dedent(
        """
        def f(descs):
            handles = [attach_graph(d) for d in descs]
            return handles
        """
    )
    assert {f.rule for f in analyze_source(leaking, Path("gen.py"))} == {"REPRO012"}
    assert analyze_source(escaping, Path("gen.py")) == []


def test_coded_noqa_suppresses_flow_finding():
    source = textwrap.dedent(
        """
        import numpy as np

        def f() -> "np.ndarray":
            rows = np.zeros(4, dtype=np.int64)
            return rows.astype(np.int32)  # noqa: REPRO009
        """
    )
    assert analyze_source(source, Path("gen.py")) == []


def test_select_filters_rules():
    path = FIXTURES / "repro012_violation.py"
    assert _analyze(path, select=["REPRO009"]) == []
    assert {f.rule for f in _analyze(path, select=["REPRO012"])} == {"REPRO012"}


# ---------------------------------------------------------------------------
# Fingerprints and baseline
# ---------------------------------------------------------------------------


def test_fingerprints_survive_line_shifts():
    path = FIXTURES / "repro010_violation.py"
    source = path.read_text(encoding="utf-8")
    before = finding_fingerprints(_analyze(path), source, "perf/scratch.py")
    shifted = "# a new leading comment\n\n" + source
    findings = analyze_source(shifted, path)
    after = finding_fingerprints(findings, shifted, "perf/scratch.py")
    assert before == after
    assert len(set(before)) == len(before)  # distinct per finding


def test_load_baseline_parses_comments_and_justifications(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        "# comment line\n"
        "\n"
        "deadbeef00000000  known quirk in chunk sizing\n"
        "cafebabe00000000  TODO justify\n",
        encoding="utf-8",
    )
    parsed = load_baseline(baseline)
    assert parsed == {
        "deadbeef00000000": "known quirk in chunk sizing",
        "cafebabe00000000": "TODO justify",
    }
    assert load_baseline(tmp_path / "missing.txt") == {}


def test_src_tree_is_flow_clean_modulo_baseline():
    # The same gate CI runs: every finding on src/repro must be baselined.
    results = analyze_paths([SRC])
    baseline = load_baseline(REPO / "flow-baseline.txt")
    fresh = [f.format() for f, fp in results if fp not in baseline]
    assert fresh == [], "\n".join(fresh)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_exit_codes_and_output(capsys, tmp_path):
    bad = str(FIXTURES / "repro009_violation.py")
    empty = str(tmp_path / "baseline.txt")
    assert main([bad, "--no-cache", "--baseline", empty]) == 1
    out = capsys.readouterr().out
    assert "REPRO009" in out
    assert "finding(s)" in out

    good = str(FIXTURES / "repro009_clean.py")
    assert main([good, "--no-cache", "--baseline", empty]) == 0
    assert capsys.readouterr().out == ""


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in FLOW_RULES:
        assert rule in out


def test_cli_select(capsys, tmp_path):
    bad = str(FIXTURES / "repro012_violation.py")
    empty = str(tmp_path / "baseline.txt")
    assert main([bad, "--no-cache", "--baseline", empty, "--select", "repro009"]) == 0
    capsys.readouterr()
    assert main([bad, "--no-cache", "--baseline", empty, "--select", "REPRO012"]) == 1


def test_cli_rejects_unknown_rule():
    with pytest.raises(SystemExit):
        main([str(FIXTURES), "--select", "REPRO001"])


def test_cli_rejects_missing_path():
    with pytest.raises(SystemExit):
        main(["definitely/not/a/path.py"])


def test_cli_sarif_output(capsys, tmp_path):
    bad = str(FIXTURES / "repro011_violation.py")
    sarif_path = tmp_path / "out.sarif"
    empty = str(tmp_path / "baseline.txt")
    assert main([bad, "--no-cache", "--baseline", empty, "--sarif", str(sarif_path)]) == 1
    capsys.readouterr()
    sarif = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "repro-flow"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(FLOW_RULES)
    assert len(run["results"]) == 2
    for result in run["results"]:
        assert result["ruleId"] == "REPRO011"
        assert result["partialFingerprints"]["reproFlow/v1"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] in {12, 16}


def test_cli_write_baseline_roundtrip(capsys, tmp_path):
    bad = str(FIXTURES / "repro013_violation.py")
    baseline = tmp_path / "baseline.txt"
    assert main([bad, "--no-cache", "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    text = baseline.read_text(encoding="utf-8")
    assert "TODO justify:" in text
    # With every finding baselined the same invocation now passes...
    assert main([bad, "--no-cache", "--baseline", str(baseline)]) == 0
    assert "baselined finding(s)" in capsys.readouterr().out
    # ...and hand-written justifications survive a rewrite.
    fingerprint = next(
        line.split()[0] for line in text.splitlines() if not line.startswith("#")
    )
    baseline.write_text(f"{fingerprint}  reviewed: intentional fixture\n", "utf-8")
    assert main([bad, "--no-cache", "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    assert "reviewed: intentional fixture" in baseline.read_text(encoding="utf-8")


def test_cli_cache_reuses_results(capsys, tmp_path):
    bad = str(FIXTURES / "repro010_violation.py")
    cache = tmp_path / "cache.json"
    empty = str(tmp_path / "baseline.txt")
    assert main([bad, "--cache", str(cache), "--baseline", empty]) == 1
    first = capsys.readouterr().out
    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert payload["files"]
    # Second run hits the cache and reports identical findings.
    assert main([bad, "--cache", str(cache), "--baseline", empty]) == 1
    assert capsys.readouterr().out == first
    # A corrupt cache is discarded, not fatal.
    cache.write_text("{not json", encoding="utf-8")
    assert main([bad, "--cache", str(cache), "--baseline", empty]) == 1
