"""Tests for the multi-label-edge generalization (Section 2 remark).

The paper notes that edges carrying several labels are handled by modeling
a multi-labeled edge as parallel edges, one per label — then a path may use
the edge iff *at least one* of its labels is in ``C`` ("any" semantics).
The builder keeps parallel edges with distinct labels, so the whole stack
(traversal, PowCov, ChromLand) supports this without modification; these
tests pin that behaviour down.
"""

from __future__ import annotations

import math

import pytest

from repro.core.powcov import PowCovIndex, brute_force_sp_minimal
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import bidirectional_constrained_bfs


@pytest.fixture
def multilabel_graph():
    """a -[r+g]- b -[b]- c : edge (a,b) carries labels r AND g."""
    builder = GraphBuilder()
    builder.add_edge("a", "b", "r")
    builder.add_edge("a", "b", "g")
    builder.add_edge("b", "c", "b")
    return builder.build()


class TestAnySemantics:
    def test_either_label_works(self, multilabel_graph):
        g = multilabel_graph
        assert bidirectional_constrained_bfs(g, 0, 1, g.mask(["r"])) == 1
        assert bidirectional_constrained_bfs(g, 0, 1, g.mask(["g"])) == 1
        assert bidirectional_constrained_bfs(g, 0, 1, g.mask(["r", "g"])) == 1

    def test_wrong_label_blocked(self, multilabel_graph):
        g = multilabel_graph
        assert math.isinf(bidirectional_constrained_bfs(g, 0, 1, g.mask(["b"])))

    def test_two_hop(self, multilabel_graph):
        g = multilabel_graph
        assert bidirectional_constrained_bfs(g, 0, 2, g.mask(["g", "b"])) == 2
        assert math.isinf(
            bidirectional_constrained_bfs(g, 0, 2, g.mask(["r", "g"]))
        )


class TestIndexesOnMultilabel:
    def test_spminimal_sees_both_singletons(self, multilabel_graph):
        g = multilabel_graph
        result = brute_force_sp_minimal(g, 0)
        # Both {r} and {g} are SP-minimal singletons for (a, b).
        masks = {mask for _d, mask in result.entries[1]}
        assert g.mask(["r"]) in masks
        assert g.mask(["g"]) in masks

    def test_powcov_exact_with_cover(self, multilabel_graph):
        g = multilabel_graph
        index = PowCovIndex(g, [1]).build()  # vertex b covers all edges
        for mask in range(1, 8):
            exact = bidirectional_constrained_bfs(g, 0, 2, mask)
            assert index.query(0, 2, mask) == exact

    def test_all_semantics_via_intersection_mask(self):
        """'All labels must be in C' is modeled by a single fused label."""
        builder = GraphBuilder()
        builder.add_edge("a", "b", "r+g")  # fused label for the AND case
        builder.add_edge("b", "c", "r")
        g = builder.build()
        # The fused edge is usable only when its fused label is allowed.
        assert bidirectional_constrained_bfs(g, 0, 1, g.mask(["r+g"])) == 1
        assert math.isinf(bidirectional_constrained_bfs(g, 0, 1, g.mask(["r"])))
