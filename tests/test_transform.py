"""Tests for graph/label transformations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.transform import (
    collapse_rare_labels,
    extract_k_core,
    merge_labels,
    relabel_vertices,
)
from repro.graph.traversal import bidirectional_constrained_bfs, constrained_bfs


def labeled_triangle() -> EdgeLabeledGraph:
    return EdgeLabeledGraph.from_edges(
        3, [(0, 1, 0), (1, 2, 1), (2, 0, 2)], num_labels=3
    )


class TestMergeLabels:
    def test_dict_mapping(self):
        g = labeled_triangle()
        merged = merge_labels(g, {2: 0})
        assert merged.num_labels == 2
        assert merged.label_frequencies().tolist() == [2, 1]

    def test_dense_mapping(self):
        g = labeled_triangle()
        merged = merge_labels(g, [0, 0, 1])
        assert merged.label_frequencies().tolist() == [2, 1]

    def test_parallel_edges_dedup_after_merge(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", "x")
        builder.add_edge("a", "b", "y")
        g = builder.build()
        merged = merge_labels(g, [0, 0])
        assert merged.num_edges == 1

    def test_distances_preserved_under_identity(self):
        g = labeled_erdos_renyi(30, 80, num_labels=3, seed=2)
        same = merge_labels(g, {})
        for mask in (1, 3, 7):
            assert np.array_equal(
                constrained_bfs(g, 0, mask), constrained_bfs(same, 0, mask)
            )

    def test_merge_coarsens_distances(self):
        """Merging labels can only shrink constrained distances (per new mask)."""
        g = labeled_erdos_renyi(30, 80, num_labels=4, seed=3)
        merged = merge_labels(g, [0, 0, 1, 1])
        # new label 0 = old {0,1}; constraint {new 0} == old {0,1}
        a = constrained_bfs(g, 0, 0b0011)
        b = constrained_bfs(merged, 0, 0b01)
        assert np.array_equal(a, b)

    def test_validation(self):
        g = labeled_triangle()
        with pytest.raises(ValueError, match="out of range"):
            merge_labels(g, {9: 0})
        with pytest.raises(ValueError, match="cover every label"):
            merge_labels(g, [0, 1])
        with pytest.raises(ValueError, match="non-negative"):
            merge_labels(g, [0, -1, 2])

    def test_label_names(self):
        g = labeled_triangle()
        merged = merge_labels(g, [0, 1, 1], label_names=["keep", "fold"])
        assert merged.label_universe.names == ["keep", "fold"]
        with pytest.raises(ValueError, match="cover every new label"):
            merge_labels(g, [0, 1, 2], label_names=["a"])


class TestCollapseRareLabels:
    def test_keeps_top_k(self):
        g = labeled_erdos_renyi(100, 500, num_labels=6, label_exponent=1.5, seed=1)
        collapsed = collapse_rare_labels(g, keep=2)
        assert collapsed.num_labels == 3
        freqs = collapsed.label_frequencies()
        # top-2 labels keep their order; "other" holds the rest
        assert freqs[0] >= freqs[1]
        assert collapsed.label_universe.names[-1] == "other"

    def test_edge_count_preserved_modulo_dedup(self):
        g = labeled_erdos_renyi(50, 150, num_labels=5, seed=4)
        collapsed = collapse_rare_labels(g, keep=3)
        assert collapsed.num_edges <= g.num_edges
        assert collapsed.num_edges >= g.num_edges * 0.9

    def test_validation(self):
        g = labeled_triangle()
        with pytest.raises(ValueError):
            collapse_rare_labels(g, keep=0)
        with pytest.raises(ValueError):
            collapse_rare_labels(g, keep=3)


class TestRelabelVertices:
    def test_roundtrip(self):
        g = labeled_erdos_renyi(20, 50, num_labels=3, seed=5)
        perm = list(reversed(range(20)))
        relabeled = relabel_vertices(g, perm)
        # distance between renamed endpoints is unchanged
        for s, t in ((0, 10), (3, 17)):
            assert bidirectional_constrained_bfs(g, s, t, 7) == (
                bidirectional_constrained_bfs(relabeled, perm[s], perm[t], 7)
            )

    def test_validation(self):
        g = labeled_triangle()
        with pytest.raises(ValueError, match="cover every vertex"):
            relabel_vertices(g, [0, 1])
        with pytest.raises(ValueError, match="bijection"):
            relabel_vertices(g, [0, 0, 1])


class TestKCore:
    def test_strips_pendant_vertices(self):
        # triangle with a pendant
        g = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 0), (2, 0, 0), (2, 3, 0)], num_labels=1
        )
        core, kept = extract_k_core(g, 2)
        assert core.num_vertices == 3
        assert 3 not in kept.tolist()
        assert (core.degrees() >= 2).all()

    def test_empty_core(self):
        g = EdgeLabeledGraph.from_edges(3, [(0, 1, 0), (1, 2, 0)], num_labels=1)
        core, kept = extract_k_core(g, 3)
        assert core.num_vertices == 0
        assert len(kept) == 0

    def test_all_degrees_at_least_k(self):
        g = labeled_erdos_renyi(100, 350, num_labels=3, seed=6)
        core, kept = extract_k_core(g, 4)
        if core.num_vertices:
            assert int(core.degrees().min()) >= 4

    def test_validation(self):
        g = labeled_triangle()
        with pytest.raises(ValueError):
            extract_k_core(g, 0)
        directed = EdgeLabeledGraph.from_edges(2, [(0, 1, 0)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            extract_k_core(directed, 2)
