"""Tests for the parallel index-construction engine (`repro.perf`).

The contract under test: ``build(parallel=...)`` produces **bit-for-bit**
the same index as the serial build — same ``_flat``/``_packed`` layouts,
same query answers — for every backend and worker count, on undirected,
directed and weighted graphs; and the shared-memory blocks backing the
process pool are always released, also when a worker raises.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.chromland import ChromLandIndex, local_search_selection
from repro.core.powcov import PowCovIndex
from repro.core.powcov.weighted import WeightedPowCovIndex
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.perf import shm as shm_mod
from repro.perf.parallel import (
    ParallelConfig,
    get_default_parallel,
    resolve_parallel,
    run_tasks,
    set_default_parallel,
)
from repro.workloads import generate_workload

PROCESS_2 = ParallelConfig(num_workers=2, backend="process")
THREAD_3 = ParallelConfig(num_workers=3, backend="thread", chunk_size=1)


def directed_random(n=40, m=150, labels=3, seed=0) -> EdgeLabeledGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((u, v, int(rng.integers(labels))))
    return EdgeLabeledGraph.from_edges(
        n, sorted(edges), num_labels=labels, directed=True
    )


def random_queries(graph, count=60, seed=0):
    rng = np.random.default_rng(seed)
    universe = (1 << graph.num_labels) - 1
    return [
        (
            int(rng.integers(graph.num_vertices)),
            int(rng.integers(graph.num_vertices)),
            int(rng.integers(1, universe + 1)),
        )
        for _ in range(count)
    ]


def assert_same_answers(a, b, graph):
    for s, t, mask in random_queries(graph):
        assert a.query(s, t, mask) == b.query(s, t, mask)


# ----------------------------------------------------------------------
# ParallelConfig semantics
# ----------------------------------------------------------------------
class TestConfig:
    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelConfig(backend="mpi")

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            ParallelConfig(num_workers=-1)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelConfig(chunk_size=0)

    def test_resolve_int_shorthand(self):
        assert resolve_parallel(4) == ParallelConfig(num_workers=4)
        assert resolve_parallel(1).backend == "serial"

    def test_resolve_rejects_bool(self):
        with pytest.raises(TypeError):
            resolve_parallel(True)

    def test_default_is_serial_and_settable(self):
        assert get_default_parallel().backend == "serial"
        try:
            set_default_parallel(ParallelConfig(num_workers=2, backend="thread"))
            assert resolve_parallel(None).num_workers == 2
        finally:
            set_default_parallel(None)
        assert resolve_parallel(None).backend == "serial"

    def test_zero_workers_means_cpu_count(self):
        import os

        assert ParallelConfig(num_workers=0).effective_workers == (os.cpu_count() or 1)


# ----------------------------------------------------------------------
# PowCov: parallel == serial, entry for entry
# ----------------------------------------------------------------------
class TestPowCovParallel:
    @pytest.mark.parametrize("config", [PROCESS_2, THREAD_3, 2], ids=["process", "thread", "int"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_flat_layout_identical_undirected(self, config, seed):
        graph = labeled_erdos_renyi(70, 200, num_labels=4, seed=seed)
        landmarks = [0, 9, 23, 41, 66]
        serial = PowCovIndex(graph, landmarks).build()
        par = PowCovIndex(graph, landmarks).build(parallel=config)
        assert serial._flat == par._flat
        assert_same_answers(serial, par, graph)

    def test_packed_layout_identical(self):
        graph = labeled_erdos_renyi(70, 200, num_labels=4, seed=3)
        landmarks = [2, 11, 30, 55]
        serial = PowCovIndex(graph, landmarks, storage="packed").build()
        par = PowCovIndex(graph, landmarks, storage="packed").build(parallel=PROCESS_2)
        assert np.array_equal(serial._packed_offsets, par._packed_offsets)
        assert np.array_equal(serial._packed_dist, par._packed_dist)
        assert np.array_equal(serial._packed_mask, par._packed_mask)
        assert np.array_equal(serial._packed_landmark, par._packed_landmark)
        assert_same_answers(serial, par, graph)

    @pytest.mark.parametrize("config", [PROCESS_2, THREAD_3], ids=["process", "thread"])
    def test_directed_tables_identical(self, config):
        graph = directed_random(seed=5)
        landmarks = [0, 7, 14, 21]
        serial = PowCovIndex(graph, landmarks).build()
        par = PowCovIndex(graph, landmarks).build(parallel=config)
        assert serial._flat == par._flat
        assert serial._flat_reverse == par._flat_reverse
        assert_same_answers(serial, par, graph)

    @pytest.mark.parametrize("config", [PROCESS_2, THREAD_3], ids=["process", "thread"])
    def test_weighted_identical(self, config):
        graph = labeled_erdos_renyi(45, 120, num_labels=3, seed=7)
        weights = np.random.default_rng(0).integers(1, 6, size=graph.num_arcs)
        weights = weights.astype(np.float64)
        landmarks = [3, 19, 37]
        serial = WeightedPowCovIndex(graph, landmarks, weights).build()
        par = WeightedPowCovIndex(graph, landmarks, weights).build(parallel=config)
        assert serial._flat == par._flat
        assert_same_answers(serial, par, graph)

    def test_build_one_matches_task_path(self):
        # _build_one (kept for stats/inspection code) and the chunk task
        # must stay the same code path.
        graph = labeled_erdos_renyi(40, 100, num_labels=3, seed=9)
        index = PowCovIndex(graph, [5])
        built = index.build()
        assert built.per_landmark[0].entries == index._build_one(5).entries


# ----------------------------------------------------------------------
# ChromLand: parallel == serial on every stored table
# ----------------------------------------------------------------------
class TestChromLandParallel:
    @pytest.mark.parametrize("config", [PROCESS_2, THREAD_3], ids=["process", "thread"])
    def test_tables_identical_undirected(self, config):
        graph = labeled_erdos_renyi(80, 240, num_labels=4, seed=11)
        selection = local_search_selection(graph, 6, iterations=15, seed=0)
        serial = ChromLandIndex(graph, selection.landmarks, selection.colors).build()
        par = ChromLandIndex(graph, selection.landmarks, selection.colors).build(
            parallel=config
        )
        assert np.array_equal(serial.mono, par.mono)
        assert np.array_equal(serial.bi, par.bi)
        assert_same_answers(serial, par, graph)

    def test_tables_identical_directed(self):
        graph = directed_random(seed=13)
        landmarks = [0, 8, 16, 24]
        colors = [0, 1, 2, 0]
        serial = ChromLandIndex(graph, landmarks, colors).build()
        par = ChromLandIndex(graph, landmarks, colors).build(parallel=PROCESS_2)
        assert np.array_equal(serial.mono, par.mono)
        assert np.array_equal(serial.mono_in, par.mono_in)
        assert np.array_equal(serial.bi, par.bi)
        assert_same_answers(serial, par, graph)

    def test_workload_evaluation_unchanged(self):
        # End-to-end: identical indexes answer an identical workload.
        graph = labeled_erdos_renyi(60, 180, num_labels=3, seed=17)
        workload = generate_workload(graph, num_pairs=20, seed=1)
        selection = local_search_selection(graph, 4, iterations=10, seed=0)
        serial = ChromLandIndex(graph, selection.landmarks, selection.colors).build()
        par = ChromLandIndex(graph, selection.landmarks, selection.colors).build(
            parallel=PROCESS_2
        )
        for q in workload:
            assert serial.query(q.source, q.target, q.label_mask) == par.query(
                q.source, q.target, q.label_mask
            )


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
def _echo_task(graphs, items, extra):
    return [graphs[0].num_vertices + item for item in items]


def _failing_task(graphs, items, extra):
    raise RuntimeError("worker exploded")


class TestSharedMemoryLifecycle:
    def test_roundtrip_preserves_graph(self):
        graph = labeled_erdos_renyi(50, 140, num_labels=4, seed=19)
        pack = shm_mod.share_graphs((graph,))
        try:
            attached = shm_mod.attach_graph(pack.descriptors[0])
            try:
                assert attached.graph == graph
                assert attached.graph.num_edges == graph.num_edges
                # Zero-copy: the view's buffer is shared memory, not a copy.
                assert attached.graph.indptr.base is not None
            finally:
                attached.close()
        finally:
            pack.release()
        for name in pack.block_names():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_blocks_released_after_successful_run(self, monkeypatch):
        packs = []
        original = shm_mod.share_graphs

        def spy(graphs):
            pack = original(graphs)
            packs.append(pack)
            return pack

        monkeypatch.setattr(shm_mod, "share_graphs", spy)
        graph = labeled_erdos_renyi(30, 80, num_labels=3, seed=23)
        results = run_tasks(
            _echo_task, [1, 2, 3, 4], graphs=(graph,), config=PROCESS_2
        )
        assert results == [31, 32, 33, 34]
        assert packs, "process backend should have exported the graph"
        for pack in packs:
            for name in pack.block_names():
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)

    def test_blocks_unlinked_when_worker_raises(self, monkeypatch):
        packs = []
        original = shm_mod.share_graphs

        def spy(graphs):
            pack = original(graphs)
            packs.append(pack)
            return pack

        monkeypatch.setattr(shm_mod, "share_graphs", spy)
        graph = labeled_erdos_renyi(30, 80, num_labels=3, seed=29)
        with pytest.raises(RuntimeError, match="worker exploded"):
            run_tasks(_failing_task, [1, 2, 3, 4], graphs=(graph,), config=PROCESS_2)
        assert packs, "process backend should have exported the graph"
        for pack in packs:
            for name in pack.block_names():
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestRunTasks:
    def test_serial_sees_all_items_at_once(self):
        seen = []

        def task(graphs, items, extra):
            seen.append(list(items))
            return list(items)

        out = run_tasks(task, [1, 2, 3], config=None)
        assert out == [1, 2, 3]
        assert seen == [[1, 2, 3]]  # one chunk: batched kernels see everything

    def test_results_in_item_order_with_tiny_chunks(self):
        items = list(range(17))
        config = ParallelConfig(num_workers=3, chunk_size=2, backend="thread")

        def task(graphs, chunk, extra):
            return [item * 10 for item in chunk]

        assert run_tasks(task, items, config=config) == [i * 10 for i in items]

    def test_result_count_mismatch_raises(self):
        def bad_task(graphs, chunk, extra):
            return [0]  # drops items

        config = ParallelConfig(num_workers=2, chunk_size=2, backend="thread")
        with pytest.raises(RuntimeError, match="results"):
            run_tasks(bad_task, [1, 2, 3, 4], config=config)

    def test_empty_items(self):
        assert run_tasks(_echo_task, [], config=PROCESS_2) == []
