"""Tests for landmark-selection strategies and vertex-cover machinery."""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.landmarks import (
    STRATEGIES,
    approximate_betweenness,
    covered_edges,
    exact_min_vertex_cover,
    greedy_max_cover,
    is_vertex_cover,
    select_landmarks,
    two_approx_vertex_cover,
)


def star_graph(leaves: int = 6) -> EdgeLabeledGraph:
    return EdgeLabeledGraph.from_edges(
        leaves + 1, [(0, i, 0) for i in range(1, leaves + 1)], num_labels=1
    )


class TestGreedyMVC:
    def test_star_picks_center_first(self):
        assert greedy_max_cover(star_graph(), 1) == [0]

    def test_covers_everything_with_enough_budget(self, random_graph):
        cover = greedy_max_cover(random_graph, random_graph.num_vertices)
        assert is_vertex_cover(random_graph, cover)

    def test_distinct_and_sized(self, random_graph):
        picked = greedy_max_cover(random_graph, 12)
        assert len(picked) == 12
        assert len(set(picked)) == 12

    def test_validation(self, random_graph):
        with pytest.raises(ValueError):
            greedy_max_cover(random_graph, 0)

    def test_greedy_guarantee_vs_exact(self):
        """Greedy covers >= (1 - 1/e) of the optimum (Theorem 4)."""
        for seed in range(4):
            g = labeled_erdos_renyi(10, 18, num_labels=2, seed=seed)
            for k in (1, 2, 3):
                greedy = covered_edges(g, greedy_max_cover(g, k))
                best = max(
                    covered_edges(g, list(combo))
                    for combo in itertools.combinations(range(10), k)
                )
                assert greedy >= (1 - 1 / np.e) * best

    def test_marginal_gains_monotone(self):
        """Each greedy pick covers no more new edges than the previous."""
        g = labeled_erdos_renyi(40, 120, num_labels=3, seed=2)
        picked = greedy_max_cover(g, 10)
        gains = []
        seen: list[int] = []
        prev = 0
        for v in picked:
            seen.append(v)
            now = covered_edges(g, seen)
            gains.append(now - prev)
            prev = now
        assert all(a >= b for a, b in zip(gains, gains[1:]))


class TestVertexCover:
    def test_two_approx_is_cover(self, random_graph):
        cover = two_approx_vertex_cover(random_graph, seed=0)
        assert is_vertex_cover(random_graph, cover)

    def test_two_approx_factor(self):
        for seed in range(3):
            g = labeled_erdos_renyi(12, 20, num_labels=2, seed=seed)
            approx = two_approx_vertex_cover(g, seed=seed)
            exact = exact_min_vertex_cover(g)
            assert len(approx) <= 2 * len(exact)

    def test_exact_cover_on_star(self):
        assert exact_min_vertex_cover(star_graph(5)) == [0]

    def test_exact_cover_guard(self, random_graph):
        with pytest.raises(ValueError):
            exact_min_vertex_cover(random_graph)

    def test_is_vertex_cover_negative(self):
        g = star_graph(3)
        assert not is_vertex_cover(g, [1])
        assert is_vertex_cover(g, [0])


class TestBetweenness:
    def test_matches_networkx_on_small_graph(self):
        # num_labels=1 keeps the generator free of parallel multi-label
        # edges, which networkx's simple Graph would collapse while our
        # Brandes sweep counts them as distinct shortest paths.
        g = labeled_erdos_renyi(25, 60, num_labels=1, seed=4)
        ours = approximate_betweenness(g, num_samples=25, seed=0)  # all sources
        nxg = nx.Graph()
        nxg.add_nodes_from(range(25))
        for u, v, _ in g.iter_edges():
            nxg.add_edge(u, v)
        theirs = nx.betweenness_centrality(nxg, normalized=False)
        # Exhaustive sampling: ours * n == 2 * nx value (nx halves undirected
        # pair contributions).
        for v in range(25):
            assert ours[v] * 25 == pytest.approx(2 * theirs[v], abs=1e-6)

    def test_path_center_has_max_betweenness(self):
        from conftest import make_line
        g = make_line([0] * 6, num_labels=1)
        scores = approximate_betweenness(g, num_samples=7, seed=0)
        assert scores.argmax() == 3

    def test_validation(self, random_graph):
        with pytest.raises(ValueError):
            approximate_betweenness(random_graph, num_samples=0)


class TestStrategies:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_returns_k_distinct(self, random_graph, strategy):
        picked = select_landmarks(random_graph, 9, strategy=strategy, seed=3)
        assert len(picked) == 9
        assert len(set(picked)) == 9
        assert all(0 <= v < random_graph.num_vertices for v in picked)

    def test_degree_strategy_ranks_by_degree(self, random_graph):
        picked = select_landmarks(random_graph, 5, strategy="degree")
        degrees = random_graph.degrees()
        worst_picked = min(degrees[v] for v in picked)
        not_picked = [v for v in range(random_graph.num_vertices) if v not in picked]
        assert worst_picked >= max(degrees[v] for v in not_picked)

    def test_unknown_strategy(self, random_graph):
        with pytest.raises(ValueError, match="unknown strategy"):
            select_landmarks(random_graph, 3, strategy="astrology")

    def test_k_validation(self, random_graph):
        with pytest.raises(ValueError):
            select_landmarks(random_graph, 0)

    def test_random_is_seeded(self, random_graph):
        a = select_landmarks(random_graph, 7, strategy="random", seed=5)
        b = select_landmarks(random_graph, 7, strategy="random", seed=5)
        assert a == b

    def test_cover_strategy_pads_small_covers(self):
        g = star_graph(8)  # cover is {0}; k=3 must be padded
        picked = select_landmarks(g, 3, strategy="vertex-cover-degree")
        assert len(picked) == 3
        assert 0 in picked
