"""Cross-cutting metamorphic invariants, property-tested with hypothesis.

These tests relate *different* components to each other under graph and
query perturbations — the kind of bug (an index silently under- or
over-pruning) that per-module unit tests cannot catch.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.chromland import ChromLandIndex
from repro.core.powcov import PowCovIndex
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import full_mask
from repro.graph.traversal import UNREACHABLE, constrained_bfs


@st.composite
def graph_and_query(draw):
    n = draw(st.integers(12, 40))
    m = draw(st.integers(15, 90))
    labels = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10_000))
    graph = labeled_erdos_renyi(n, m, num_labels=labels, seed=seed)
    s = draw(st.integers(0, n - 1))
    t = draw(st.integers(0, n - 1))
    mask = draw(st.integers(1, full_mask(labels)))
    return graph, s, t, mask


class TestDistanceInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph_and_query())
    def test_symmetry_undirected(self, data):
        graph, s, t, mask = data
        a = constrained_bfs(graph, s, mask)[t]
        b = constrained_bfs(graph, t, mask)[s]
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(graph_and_query(), st.integers(0, 3))
    def test_growing_constraint_never_hurts(self, data, extra_label):
        graph, s, t, mask = data
        bigger = mask | (1 << (extra_label % graph.num_labels))
        d_small = constrained_bfs(graph, s, mask)[t]
        d_big = constrained_bfs(graph, s, bigger)[t]
        small = math.inf if d_small == UNREACHABLE else d_small
        big = math.inf if d_big == UNREACHABLE else d_big
        assert big <= small

    @settings(max_examples=25, deadline=None)
    @given(graph_and_query())
    def test_adding_edge_never_increases_distance(self, data):
        graph, s, t, mask = data
        before = constrained_bfs(graph, s, mask)
        # add one new edge with a label inside the constraint
        label = next(
            l for l in range(graph.num_labels) if mask & (1 << l)
        )
        edges = list(graph.iter_edges())
        u, v = 0, graph.num_vertices - 1
        if u != v:
            edges.append((u, v, label))
        bigger = EdgeLabeledGraph.from_edges(
            graph.num_vertices, edges, num_labels=graph.num_labels
        )
        after = constrained_bfs(bigger, s, mask)
        before_inf = np.where(before == UNREACHABLE, 10**6, before)
        after_inf = np.where(after == UNREACHABLE, 10**6, after)
        assert (after_inf <= before_inf).all()


class TestIndexInvariants:
    @settings(max_examples=15, deadline=None)
    @given(graph_and_query())
    def test_powcov_estimate_monotone_in_constraint(self, data):
        graph, s, t, mask = data
        index = PowCovIndex(graph, [0, graph.num_vertices // 2]).build()
        for label in range(graph.num_labels):
            bigger = mask | (1 << label)
            assert index.query(s, t, bigger) <= index.query(s, t, mask)

    @settings(max_examples=15, deadline=None)
    @given(graph_and_query())
    def test_more_landmarks_never_hurt_powcov(self, data):
        graph, s, t, mask = data
        few = PowCovIndex(graph, [0, 5]).build()
        more = PowCovIndex(graph, [0, 5, 10, graph.num_vertices - 1]).build()
        assert more.query(s, t, mask) <= few.query(s, t, mask)

    @settings(max_examples=15, deadline=None)
    @given(graph_and_query())
    def test_chromland_aux_at_most_simple(self, data):
        graph, s, t, mask = data
        landmarks = [0, 5, 10]
        colors = [i % graph.num_labels for i in range(3)]
        aux = ChromLandIndex(graph, landmarks, colors).build()
        simple = ChromLandIndex(
            graph, landmarks, colors, query_mode="simple"
        ).build()
        assert aux.query(s, t, mask) <= simple.query(s, t, mask)

    @settings(max_examples=15, deadline=None)
    @given(graph_and_query())
    def test_powcov_at_least_exact(self, data):
        graph, s, t, mask = data
        index = PowCovIndex(graph, [1, 7, 11]).build()
        exact = constrained_bfs(graph, s, mask)[t]
        exact = math.inf if exact == UNREACHABLE else float(exact)
        estimate = index.query(s, t, mask)
        if math.isinf(exact):
            assert math.isinf(estimate)
        else:
            assert estimate >= exact

    @settings(max_examples=15, deadline=None)
    @given(graph_and_query())
    def test_relabeling_permutation_equivariance(self, data):
        """Permuting label ids permutes queries but not distances."""
        graph, s, t, mask = data
        L = graph.num_labels
        perm = list(range(1, L)) + [0]  # rotate labels
        edges = [(u, v, perm[label]) for u, v, label in graph.iter_edges()]
        permuted = EdgeLabeledGraph.from_edges(
            graph.num_vertices, edges, num_labels=L
        )
        permuted_mask = 0
        for label in range(L):
            if mask & (1 << label):
                permuted_mask |= 1 << perm[label]
        a = constrained_bfs(graph, s, mask)[t]
        b = constrained_bfs(permuted, s, permuted_mask)[t]
        assert a == b
