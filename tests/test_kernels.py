"""Property tests for :mod:`repro.kernels`: bit-identity and the registry.

Each compiled backend (numba when importable, the on-demand C extension
when a C compiler is on ``PATH``) is tested *in isolation* against the
numpy reference for all four protocol methods — directed and undirected
graphs, weighted auxiliary graphs, and the PR-4 edge cases (empty graphs,
a trailing vertex with no in-arcs, whose reversed-CSR segment is empty).
Every comparison is exact ``==``: the kernels contract is bit-identity,
not tolerance.

The registry tests pin the selection semantics: probe results are
memoized (one import attempt per backend per process), an explicit
request for an unavailable backend emits exactly one structured
:class:`KernelFallbackWarning`, and the ``set_default_kernel`` →
``REPRO_KERNEL`` → ``"auto"`` chain resolves as documented.
"""

from __future__ import annotations

import builtins
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.chromland.query import (
    AuxiliaryPlan,
    auxiliary_distance_from_plan,
)
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.kernels import (
    KERNEL_CHOICES,
    KernelFallbackWarning,
    available_kernels,
    get_default_kernel,
    kernel_name,
    resolve_kernel,
    set_default_kernel,
)
from repro.perf.batched import batched_constrained_bfs

NUMPY = resolve_kernel("numpy")

KERNEL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # ``compiled`` only resolves a memoized backend instance; sharing
        # it across hypothesis examples is intentional.
        HealthCheck.function_scoped_fixture,
    ],
)


@pytest.fixture(params=["numba", "cext"])
def compiled(request):
    """One compiled backend, skipping when its toolchain is absent."""
    name = request.param
    if name == "numba":
        pytest.importorskip("numba")
    if name not in available_kernels():
        pytest.skip(f"{name} kernel backend unavailable in this environment")
    return resolve_kernel(name)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Leave the process-wide kernel default/warning state as found."""
    yield
    kernels._reset_for_tests()


# ----------------------------------------------------------------------
# Graph strategies
# ----------------------------------------------------------------------
@st.composite
def labeled_graphs(draw) -> EdgeLabeledGraph:
    """Small directed/undirected labeled multigraph-free graphs."""
    directed = draw(st.booleans())
    n = draw(st.integers(min_value=2, max_value=10))
    num_labels = draw(st.integers(min_value=1, max_value=4))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    if not directed:
        pairs = [(u, v) for u, v in pairs if u < v]
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=0,
            max_size=min(3 * n, len(pairs)),
            unique=True,
        )
    )
    labels = draw(
        st.lists(
            st.integers(0, num_labels - 1),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    edges = [(u, v, lab) for (u, v), lab in zip(chosen, labels)]
    return EdgeLabeledGraph.from_edges(
        n, edges, num_labels=num_labels, directed=directed
    )


def random_batch(data, graph: EdgeLabeledGraph, min_rows: int):
    """Sources + per-row label masks for a ``batched_constrained_bfs``."""
    n = graph.num_vertices
    rows = data.draw(st.integers(min_value=min_rows, max_value=min_rows + 6))
    sources = data.draw(
        st.lists(st.integers(0, n - 1), min_size=rows, max_size=rows)
    )
    full = (1 << graph.num_labels) - 1
    masks = data.draw(
        st.lists(st.integers(0, full), min_size=rows, max_size=rows)
    )
    return sources, masks


# ----------------------------------------------------------------------
# Bit-identity: MS-BFS (bitset + sparse paths)
# ----------------------------------------------------------------------
class TestMsBfsIdentity:
    @KERNEL_SETTINGS
    @given(st.data())
    def test_bitset_path_matches_numpy(self, compiled, data):
        """≥4 per-source-mask rows route to ``msbfs_bitset``; the compiled
        sweep must reproduce the numpy lanes bit-for-bit."""
        graph = data.draw(labeled_graphs())
        sources, masks = random_batch(data, graph, min_rows=4)
        for max_level in (None, 0, 2):
            want = batched_constrained_bfs(
                graph, sources, masks=masks, max_level=max_level, kernel=NUMPY
            )
            got = batched_constrained_bfs(
                graph, sources, masks=masks, max_level=max_level,
                kernel=compiled,
            )
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    @KERNEL_SETTINGS
    @given(st.data())
    def test_sparse_path_matches_numpy(self, compiled, data):
        """Shared-mask / few-row batches route to ``msbfs_sparse``; the
        compiled queue BFS must match numpy's frontier expansion."""
        graph = data.draw(labeled_graphs())
        n = graph.num_vertices
        rows = data.draw(st.integers(min_value=1, max_value=3))
        sources = data.draw(
            st.lists(st.integers(0, n - 1), min_size=rows, max_size=rows)
        )
        mask = data.draw(st.integers(0, (1 << graph.num_labels) - 1))
        for max_level in (None, 1):
            want = batched_constrained_bfs(
                graph, sources, mask=mask, max_level=max_level, kernel=NUMPY
            )
            got = batched_constrained_bfs(
                graph, sources, mask=mask, max_level=max_level, kernel=compiled
            )
            assert np.array_equal(got, want)

    def test_empty_graph(self, compiled):
        """No edges at all: every row is its seed and nothing else."""
        graph = EdgeLabeledGraph.from_edges(5, [], num_labels=2)
        sources = [0, 1, 2, 3, 4]
        masks = [3, 3, 1, 2, 0]
        want = batched_constrained_bfs(graph, sources, masks=masks, kernel=NUMPY)
        got = batched_constrained_bfs(graph, sources, masks=masks, kernel=compiled)
        assert np.array_equal(got, want)

    def test_trailing_in_arc_free_vertex(self, compiled):
        """PR-4 edge case: the last vertex has out-arcs but *no* in-arcs,
        so the reversed CSR ends with an empty segment — the compiled
        in-arc sweep must not read past it."""
        edges = [(4, 0, 0), (4, 1, 1), (0, 1, 0), (1, 2, 1), (2, 3, 0)]
        graph = EdgeLabeledGraph.from_edges(5, edges, num_labels=2, directed=True)
        sources = [4, 4, 0, 1, 3]
        masks = [3, 1, 3, 2, 3]
        want = batched_constrained_bfs(graph, sources, masks=masks, kernel=NUMPY)
        got = batched_constrained_bfs(graph, sources, masks=masks, kernel=compiled)
        assert np.array_equal(got, want)
        # Same topology through the sparse (shared-mask) path.
        want = batched_constrained_bfs(graph, [4, 3], mask=3, kernel=NUMPY)
        got = batched_constrained_bfs(graph, [4, 3], mask=3, kernel=compiled)
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Bit-identity: Theorem 2 one-removed pass
# ----------------------------------------------------------------------
class TestOneRemovedIdentity:
    @KERNEL_SETTINGS
    @given(st.data())
    def test_matches_numpy(self, compiled, data):
        rows = data.draw(st.integers(1, 6))
        n = data.draw(st.integers(1, 12))
        prev = data.draw(st.integers(1, 5))
        subset = data.draw(st.integers(1, min(3, prev)))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        big = np.int32(2**30)
        dist = rng.integers(0, 20, size=(rows, n)).astype(np.int32)
        prev_rows = rng.integers(0, 20, size=(prev + 1, n)).astype(np.int32)
        prev_rows[-1] = big  # the all-BIG pad row
        sub_rows = rng.integers(0, prev + 1, size=(rows, subset)).astype(
            np.int64
        )
        want = NUMPY.one_removed_pass(dist, prev_rows, sub_rows)
        got = compiled.one_removed_pass(dist, prev_rows, sub_rows)
        assert got.dtype == np.bool_
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Bit-identity: auxiliary-graph Dijkstra (weighted)
# ----------------------------------------------------------------------
def _random_aux(data):
    """A masked auxiliary adjacency + endpoint legs, with infs sprinkled."""
    k = data.draw(st.integers(1, 8))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    weights = rng.uniform(0.5, 10.0, size=(k, k))
    weights[rng.random((k, k)) < 0.4] = np.inf
    np.fill_diagonal(weights, np.inf)
    ds = rng.uniform(0.0, 10.0, size=k)
    dt = rng.uniform(0.0, 10.0, size=k)
    ds[rng.random(k) < 0.3] = np.inf
    dt[rng.random(k) < 0.3] = np.inf
    return weights, ds, dt


class TestAuxDijkstraIdentity:
    @KERNEL_SETTINGS
    @given(st.data())
    def test_matches_numpy(self, compiled, data):
        weights, ds, dt = _random_aux(data)
        best = float((ds + dt).min())
        want = NUMPY.aux_dijkstra(weights, ds.copy(), dt, best)
        got = compiled.aux_dijkstra(weights, ds.copy(), dt, best)
        assert got == want or (np.isinf(got) and np.isinf(want))
        # Bit-identity, not closeness: identical IEEE operation order.
        assert np.float64(got).tobytes() == np.float64(want).tobytes()

    @KERNEL_SETTINGS
    @given(st.data())
    def test_noncontiguous_legs(self, compiled, data):
        """ChromLand hands column slices of ``(k, batch)`` leg matrices —
        compiled wrappers must coerce non-contiguous input correctly."""
        weights, ds, dt = _random_aux(data)
        k = len(ds)
        ds2 = np.empty((k, 3))
        dt2 = np.empty((k, 3))
        ds2[:, 1] = ds
        dt2[:, 1] = dt
        usable = np.arange(k, dtype=np.int64)
        plan = AuxiliaryPlan(usable=usable, weights=weights)
        want = auxiliary_distance_from_plan(
            plan, ds2[:, 1], dt2[:, 1], kernel=NUMPY
        )
        got = auxiliary_distance_from_plan(
            plan, ds2[:, 1], dt2[:, 1], kernel=compiled
        )
        assert np.float64(got).tobytes() == np.float64(want).tobytes()

    def test_all_unreachable(self, compiled):
        k = 4
        weights = np.full((k, k), np.inf)
        legs = np.full(k, np.inf)
        want = NUMPY.aux_dijkstra(weights, legs.copy(), legs, float("inf"))
        got = compiled.aux_dijkstra(weights, legs.copy(), legs, float("inf"))
        assert np.isinf(want) and np.isinf(got)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_kernels()
        assert resolve_kernel("numpy").name == "numpy"

    def test_instance_passthrough(self):
        assert resolve_kernel(NUMPY) is NUMPY

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel("fortran")
        with pytest.raises(ValueError, match="kernel must be one of"):
            set_default_kernel("fortran")

    def test_default_chain(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        set_default_kernel(None)
        assert get_default_kernel() == "auto"
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert get_default_kernel() == "numpy"
        assert kernel_name() == "numpy"
        set_default_kernel("auto")  # explicit default beats the env var
        assert get_default_kernel() == "auto"
        monkeypatch.setenv("REPRO_KERNEL", "not-a-kernel")
        set_default_kernel(None)
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            get_default_kernel()

    def test_auto_resolves_to_some_backend(self):
        assert resolve_kernel("auto").name in KERNEL_CHOICES

    def test_probe_failure_is_memoized(self, monkeypatch):
        """Exactly one import attempt per backend per process."""
        kernels._reset_for_tests(clear_probes=True)
        attempts = []
        real_import = builtins.__import__

        def counting_import(name, *args, **kwargs):
            if "_numba" in name:
                attempts.append(name)
                raise ImportError("forced by test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", counting_import)
        try:
            assert kernels._load("numba") is None
            assert kernels._load("numba") is None
            assert "numba" not in available_kernels()
        finally:
            kernels._reset_for_tests(clear_probes=True)
        assert len(attempts) == 1

    def test_fallback_warns_exactly_once(self, monkeypatch):
        """An explicit request for a dead backend degrades to numpy with
        one structured warning — not one per build."""
        kernels._reset_for_tests()
        monkeypatch.setitem(
            kernels._probe_failures, "numba", "ImportError: forced by test"
        )
        monkeypatch.delitem(kernels._backends, "numba", raising=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_kernel("numba")
            second = resolve_kernel("numba")
        assert first.name == "numpy" and second.name == "numpy"
        fallbacks = [
            w for w in caught if issubclass(w.category, KernelFallbackWarning)
        ]
        assert len(fallbacks) == 1
        message = fallbacks[0].message
        assert message.requested == "numba"
        assert message.fallback == "numpy"
        assert "forced by test" in message.reason
        assert "[native]" in str(message)

    def test_default_kernel_flows_into_builds(self):
        """``set_default_kernel`` steers ``batched_constrained_bfs`` when
        no explicit kernel is passed (the CLI ``--kernel`` path)."""
        graph = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 1), (2, 3, 0)], num_labels=2
        )
        set_default_kernel("numpy")
        try:
            want = batched_constrained_bfs(graph, [0, 1, 2, 3], masks=[3] * 4)
        finally:
            set_default_kernel(None)
        for name in available_kernels():
            set_default_kernel(name)
            try:
                got = batched_constrained_bfs(
                    graph, [0, 1, 2, 3], masks=[3] * 4
                )
            finally:
                set_default_kernel(None)
            assert np.array_equal(got, want), name


# ----------------------------------------------------------------------
# Observability: spans attribute the kernel
# ----------------------------------------------------------------------
class TestSpanAttribution:
    def test_wave_span_tags_kernel(self):
        from repro.core.powcov import PowCovIndex
        from repro.obs.trace import get_trace, reset_trace, set_tracing

        graph = EdgeLabeledGraph.from_edges(
            5,
            [(0, 1, 0), (1, 2, 1), (2, 3, 0), (3, 4, 1), (0, 4, 0)],
            num_labels=2,
        )
        set_tracing(True)
        reset_trace()
        try:
            PowCovIndex(graph, [0, 2, 4], builder="wave").build()
            spans = get_trace()
        finally:
            set_tracing(False)
            reset_trace()

        def collect(all_spans, name):
            found = []
            for s in all_spans:
                if s.name == name:
                    found.append(s)
                found.extend(collect(s.children, name))
            return found

        waves = collect(spans, "powcov.wave")
        assert waves, "wave builder emitted no powcov.wave spans"
        for s in waves:
            assert str(s.tags.get("kernel")) in ("numpy", "numba", "cext")
        builds = collect(spans, "powcov.build")
        assert builds and all(
            str(s.tags.get("kernel")) in ("numpy", "numba", "cext")
            for s in builds
        )
