"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    chromatic_cluster_graph,
    labeled_barabasi_albert,
    labeled_erdos_renyi,
    labeled_grid,
    zipf_label_distribution,
)
from repro.graph.traversal import connected_components


class TestZipf:
    def test_uniform_at_zero_exponent(self):
        probs = zipf_label_distribution(4, 0.0)
        assert np.allclose(probs, 0.25)

    def test_sums_to_one(self):
        assert np.isclose(zipf_label_distribution(9, 1.3).sum(), 1.0)

    def test_decreasing(self):
        probs = zipf_label_distribution(5, 1.0)
        assert (np.diff(probs) < 0).all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_label_distribution(0)


class TestChromaticCluster:
    def test_sizes(self):
        g = chromatic_cluster_graph(500, 2000, num_labels=5, seed=0)
        assert g.num_vertices == 500
        assert g.num_edges <= 2000
        assert g.num_edges >= 1700  # dedup eats only a small fraction
        assert g.num_labels == 5

    def test_deterministic(self):
        a = chromatic_cluster_graph(200, 800, 4, seed=3)
        b = chromatic_cluster_graph(200, 800, 4, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = chromatic_cluster_graph(200, 800, 4, seed=3)
        b = chromatic_cluster_graph(200, 800, 4, seed=4)
        assert a != b

    def test_all_labels_in_range(self):
        g = chromatic_cluster_graph(300, 1200, 6, seed=1)
        assert int(g.edge_labels.max()) < 6
        assert int(g.edge_labels.min()) >= 0

    def test_label_skew(self):
        g = chromatic_cluster_graph(500, 3000, 6, label_exponent=1.8, seed=2)
        freqs = g.label_frequencies()
        assert freqs[0] > freqs[-1] * 2  # heavy skew

    def test_mostly_connected(self):
        g = chromatic_cluster_graph(400, 2400, 5, seed=5)
        comp = connected_components(g)
        assert np.bincount(comp).max() >= 0.9 * g.num_vertices

    def test_locality_increases_diameter(self):
        from repro.graph.traversal import estimate_diameter
        local = chromatic_cluster_graph(
            600, 3000, 4, num_clusters=30, locality=0.98, seed=0
        )
        global_ = chromatic_cluster_graph(
            600, 3000, 4, num_clusters=30, locality=0.0, seed=0
        )
        assert estimate_diameter(local) > estimate_diameter(global_)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            chromatic_cluster_graph(100, 300, 4, intra_fraction=1.5)
        with pytest.raises(ValueError):
            chromatic_cluster_graph(100, 300, 4, label_noise=-0.1)
        with pytest.raises(ValueError):
            chromatic_cluster_graph(100, 300, 4, label_persistence=2.0)
        with pytest.raises(ValueError):
            chromatic_cluster_graph(100, 300, 4, inter_label_coherence=-1.0)

    def test_label_persistence_connects_label_subgraphs(self):
        """Higher persistence/coherence must raise per-label connectivity."""
        from repro.graph.stats import graph_profile

        fragmented = chromatic_cluster_graph(
            1000, 6000, 6, num_clusters=50, label_persistence=0.0,
            inter_label_coherence=0.0, label_noise=0.1, seed=3,
        )
        coherent = chromatic_cluster_graph(
            1000, 6000, 6, num_clusters=50, label_persistence=0.9,
            inter_label_coherence=0.8, label_noise=0.1, seed=3,
        )
        assert (
            graph_profile(coherent).mean_giant_fraction
            > graph_profile(fragmented).mean_giant_fraction
        )


class TestErdosRenyi:
    def test_sizes(self):
        g = labeled_erdos_renyi(300, 900, 4, seed=0)
        assert g.num_vertices == 300
        assert 700 <= g.num_edges <= 900

    def test_deterministic(self):
        assert labeled_erdos_renyi(100, 200, 3, seed=9) == labeled_erdos_renyi(
            100, 200, 3, seed=9
        )

    def test_no_self_loops(self):
        g = labeled_erdos_renyi(50, 200, 3, seed=1)
        for u, v, _ in g.iter_edges():
            assert u != v


class TestBarabasiAlbert:
    def test_sizes(self):
        g = labeled_barabasi_albert(300, 5, 4, seed=0)
        assert g.num_vertices == 300
        # ~ (n - m0) * m edges
        assert g.num_edges >= (300 - 5) * 5 * 0.8

    def test_power_law_hubs(self):
        g = labeled_barabasi_albert(800, 4, 4, seed=1)
        degrees = np.sort(g.degrees())[::-1]
        assert degrees[0] > 5 * np.median(degrees)

    def test_validation(self):
        with pytest.raises(ValueError):
            labeled_barabasi_albert(5, 10, 3)
        with pytest.raises(ValueError):
            labeled_barabasi_albert(10, 0, 3)

    def test_connected(self):
        g = labeled_barabasi_albert(200, 3, 4, seed=2)
        comp = connected_components(g)
        assert np.bincount(comp).max() >= 0.99 * g.num_vertices


class TestGrid:
    def test_structure(self):
        g = labeled_grid(5, 7, 3, seed=0)
        assert g.num_vertices == 35
        assert g.num_edges == 5 * 6 + 4 * 7  # vertical + horizontal

    def test_max_degree_four(self):
        g = labeled_grid(6, 6, 3, seed=0)
        assert int(g.degrees().max()) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            labeled_grid(1, 5, 3)

    def test_patch_coherence(self):
        """With zero noise, each patch is monochromatic internally."""
        g = labeled_grid(8, 8, 4, patch_size=4, noise=0.0, seed=3)
        # Edges fully inside the first 4x4 patch share one label.
        labels = set()
        for x in range(3):
            for y in range(3):
                u = x * 8 + y
                for v, label in g.iter_neighbors(u):
                    vx, vy = divmod(v, 8)
                    if vx < 4 and vy < 4 and (x < 3 and y < 3):
                        labels.add(label)
        assert len(labels) == 1
