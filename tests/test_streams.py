"""Tests for the serving-side query-stream generators."""

from __future__ import annotations

import pytest

from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import full_mask, popcount
from repro.graph.traversal import bidirectional_constrained_bfs
from repro.workloads.streams import (
    StreamReport,
    fixed_context_stream,
    locality_biased_stream,
    mixed_update_stream,
    run_stream_throughput,
    size_skewed_stream,
)


@pytest.fixture(scope="module")
def graph():
    return labeled_erdos_renyi(80, 280, num_labels=5, seed=9)


def assert_masks_valid(graph, stream):
    """Every stream mask is non-empty and within the label universe."""
    top = full_mask(graph.num_labels)
    for _, _, mask in stream:
        assert 0 < mask <= top


class TestSizeSkewed:
    def test_count_and_ranges(self, graph):
        stream = size_skewed_stream(graph, 200, seed=1)
        assert len(stream) == 200
        for s, t, mask in stream:
            assert 0 <= s < graph.num_vertices
            assert 0 <= t < graph.num_vertices
            assert 1 <= popcount(mask) <= graph.num_labels
        assert_masks_valid(graph, stream)

    def test_small_sets_dominate(self, graph):
        stream = size_skewed_stream(graph, 500, seed=2)
        sizes = [popcount(mask) for _, _, mask in stream]
        assert sizes.count(1) > sizes.count(4)

    def test_deterministic(self, graph):
        assert size_skewed_stream(graph, 50, seed=3) == size_skewed_stream(
            graph, 50, seed=3
        )

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            size_skewed_stream(graph, 0)
        with pytest.raises(ValueError):
            size_skewed_stream(graph, 10, success_probability=1.5)


class TestLocalityBiased:
    def test_pairs_within_radius(self, graph):
        stream = locality_biased_stream(graph, 60, radius=3, seed=4)
        assert len(stream) == 60
        assert_masks_valid(graph, stream)
        for s, t, mask in stream:
            d = bidirectional_constrained_bfs(graph, s, t, mask)
            assert d <= 2 * 3  # both endpoints in one radius-3 ball

    def test_deterministic(self, graph):
        assert locality_biased_stream(graph, 30, seed=6) == (
            locality_biased_stream(graph, 30, seed=6)
        )

    def test_edgeless_graph_raises(self):
        g = EdgeLabeledGraph.from_edges(50, [], num_labels=1)
        with pytest.raises(RuntimeError):
            locality_biased_stream(g, 10, radius=1, seed=0)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            locality_biased_stream(graph, 0)
        with pytest.raises(ValueError):
            locality_biased_stream(graph, 10, radius=0)


class TestFixedContext:
    def test_lazy_and_fixed(self, graph):
        stream = fixed_context_stream(graph, 0b101, 40, seed=5)
        items = list(stream)
        assert len(items) == 40
        assert all(mask == 0b101 for _, _, mask in items)
        assert_masks_valid(graph, items)

    def test_deterministic(self, graph):
        assert list(fixed_context_stream(graph, 0b11, 25, seed=8)) == (
            list(fixed_context_stream(graph, 0b11, 25, seed=8))
        )

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            list(fixed_context_stream(graph, 0, 10))
        with pytest.raises(ValueError):
            list(fixed_context_stream(graph, 1, 0))


class TestStreamThroughput:
    @pytest.fixture(scope="class")
    def index(self, graph):
        from repro.core.powcov import PowCovIndex

        return PowCovIndex(graph, [0, 20, 40, 60]).build()

    def test_answers_match_scalar_loop(self, graph, index):
        stream = size_skewed_stream(graph, 150, seed=3)
        answers, report = run_stream_throughput(index, stream, batch_size=32)
        assert answers == [index.query(s, t, m) for s, t, m in stream]
        assert isinstance(report, StreamReport)
        assert report.num_queries == len(stream)
        assert report.elapsed_seconds > 0
        assert report.queries_per_second > 0
        assert report.cache_hits + report.cache_misses == len(stream)
        assert report.masks_planned > 0

    def test_warm_session_replay_hits_cache(self, graph, index):
        from repro.engine import QuerySession

        stream = size_skewed_stream(graph, 100, seed=4)
        session = QuerySession(index, cache_size=4096)
        run_stream_throughput(index, stream, session=session)
        _, warm = run_stream_throughput(index, stream, session=session)
        assert warm.cache_hits == len(stream)
        assert warm.cache_misses == 0
        assert warm.hit_rate == 1.0
        assert warm.masks_planned == 0

    def test_describe_mentions_throughput(self, graph, index):
        _, report = run_stream_throughput(
            index, size_skewed_stream(graph, 20, seed=5)
        )
        assert "q/s" in report.describe()

    def test_queries_total_counts_each_logical_query_once(self, graph, index):
        """Regression: the global ``engine.queries_total`` aggregate used to
        double-count stream queries — ``run_stream_throughput`` merged the
        session's cumulative counters on every publish, so draining a
        100-query stream and publishing twice reported 200.  The counter is
        now bumped once at submission time and ``publish_stats`` publishes
        deltas, so the footer pins exactly the stream length."""
        from repro.engine import QuerySession
        from repro.engine.instrument import global_snapshot, reset_global

        stream = size_skewed_stream(graph, 100, seed=6)
        reset_global()
        session = QuerySession(index, cache_size=4096)
        run_stream_throughput(index, stream, session=session)
        # Re-publishing an already-published session must change nothing.
        session.publish_stats()
        session.publish_stats()
        snapshot = global_snapshot()
        assert snapshot.counters["queries_total"] == len(stream)
        assert snapshot.counters["queries"] == len(stream)

        # A warm replay through the same session: every query still counts
        # (cache hits are logical queries too), exactly once.
        run_stream_throughput(index, stream, session=session)
        snapshot = global_snapshot()
        assert snapshot.counters["queries_total"] == 2 * len(stream)
        assert snapshot.counters["queries"] == 2 * len(stream)
        reset_global()


class TestMixedUpdateStream:
    def test_shape_and_determinism(self, graph):
        from repro.graph.delta import GraphDelta

        stream = list(mixed_update_stream(graph, 60, num_updates=5, seed=1))
        queries = [item for item in stream if isinstance(item, tuple)]
        deltas = [item for item in stream if isinstance(item, GraphDelta)]
        assert len(queries) == 60
        assert 0 < len(deltas) <= 5
        assert all(d.num_ops == 1 for d in deltas)
        assert_masks_valid(graph, queries)
        again = list(mixed_update_stream(graph, 60, num_updates=5, seed=1))
        assert stream == again

    def test_zero_updates_is_pure_query_stream(self, graph):
        stream = list(mixed_update_stream(graph, 25, num_updates=0, seed=2))
        assert len(stream) == 25
        assert all(isinstance(item, tuple) for item in stream)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            list(mixed_update_stream(graph, 0, num_updates=1))
        with pytest.raises(ValueError):
            list(mixed_update_stream(graph, 10, num_updates=-1))

    def test_throughput_answers_match_per_state_rebuilds(self):
        from repro.core.powcov import PowCovIndex
        from repro.graph.delta import GraphDelta, apply_delta
        from repro.graph.generators import labeled_erdos_renyi

        small = labeled_erdos_renyi(30, 70, num_labels=3, seed=21)
        index = PowCovIndex(small, [0, 7, 14]).build()
        stream = list(mixed_update_stream(small, 40, num_updates=4, seed=3))
        answers, report = run_stream_throughput(index, stream)

        # Replay: answer each query against a fresh build on the graph
        # state current at that point in the stream.
        state = small
        reference = PowCovIndex(state, [0, 7, 14]).build()
        expected = []
        for item in stream:
            if isinstance(item, GraphDelta):
                state = apply_delta(state, item)
                reference = PowCovIndex(state, [0, 7, 14]).build()
            else:
                s, t, m = item
                expected.append(reference.query(s, t, m))
        assert answers == expected
        assert report.num_queries == 40
        assert report.num_updates == len(stream) - 40
        assert report.update_seconds > 0
        assert report.answers_migrated >= 0
        assert "updates" in report.describe()


class TestTemporalEdges:
    def test_validity_interval(self):
        from repro.workloads.streams import TemporalEdge

        edge = TemporalEdge(0, 1, label=2, start=1, end=3)
        assert not edge.active_at(0)
        assert edge.active_at(1) and edge.active_at(2)
        assert not edge.active_at(3)
        with pytest.raises(ValueError):
            TemporalEdge(0, 1, label=0, start=-1, end=2)
        with pytest.raises(ValueError):
            TemporalEdge(0, 1, label=0, start=2, end=2)


class TestSnapshotOracleSequence:
    def _edges(self):
        from repro.workloads.streams import TemporalEdge

        # A 6-vertex ring persistent across all 4 windows, plus chords
        # that open/close between windows.
        ring = [
            TemporalEdge(i, (i + 1) % 6, label=i % 2, start=0, end=4)
            for i in range(6)
        ]
        chords = [
            TemporalEdge(0, 3, label=2, start=1, end=3),
            TemporalEdge(1, 4, label=2, start=2, end=4),
            TemporalEdge(2, 5, label=0, start=0, end=2),
        ]
        return ring + chords

    def _sequence(self):
        from repro.core.powcov import PowCovIndex
        from repro.workloads.streams import SnapshotOracleSequence

        return SnapshotOracleSequence(
            6, self._edges(), 3, lambda g: PowCovIndex(g, [0, 3]).build()
        )

    def test_windows_and_active_edges(self):
        seq = self._sequence()
        assert seq.num_windows == 4
        assert seq.window == 0
        active0 = set(seq.active_edges(0))
        assert (2, 5, 0) in active0 and (0, 3, 2) not in active0
        active1 = set(seq.active_edges(1))
        assert (0, 3, 2) in active1 and (2, 5, 0) in active1

    def test_advance_matches_fresh_build_per_window(self):
        from repro.core.powcov import PowCovIndex
        from repro.graph.labeled_graph import EdgeLabeledGraph

        seq = self._sequence()
        for window in range(seq.num_windows):
            seq.seek(window)
            snapshot = EdgeLabeledGraph.from_edges(
                6, seq.active_edges(window), num_labels=3
            )
            fresh = PowCovIndex(snapshot, [0, 3]).build()
            for s in range(6):
                for t in range(6):
                    for mask in (0b001, 0b011, 0b111):
                        assert seq.query(s, t, mask) == fresh.query(s, t, mask)
        assert seq.repair_stats is not None

    def test_seek_is_forward_only(self):
        seq = self._sequence()
        seq.seek(2)
        with pytest.raises(ValueError):
            seq.seek(1)
        with pytest.raises(ValueError):
            seq.seek(seq.num_windows)

    def test_temporal_query_stream_and_runner(self):
        from repro.workloads.streams import (
            run_temporal_queries,
            temporal_query_stream,
        )

        seq = self._sequence()
        queries = temporal_query_stream(seq, 30, seed=5)
        assert len(queries) == 30
        assert [q.window for q in queries] == sorted(q.window for q in queries)
        assert all(0 <= q.window < seq.num_windows for q in queries)
        answers = run_temporal_queries(seq, queries)
        assert len(answers) == 30
        # Deterministic: an identical fresh sequence replays identically.
        assert run_temporal_queries(self._sequence(), queries) == answers
