"""Tests for the serving-side query-stream generators."""

from __future__ import annotations

import pytest

from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import full_mask, popcount
from repro.graph.traversal import bidirectional_constrained_bfs
from repro.workloads.streams import (
    StreamReport,
    fixed_context_stream,
    locality_biased_stream,
    run_stream_throughput,
    size_skewed_stream,
)


@pytest.fixture(scope="module")
def graph():
    return labeled_erdos_renyi(80, 280, num_labels=5, seed=9)


def assert_masks_valid(graph, stream):
    """Every stream mask is non-empty and within the label universe."""
    top = full_mask(graph.num_labels)
    for _, _, mask in stream:
        assert 0 < mask <= top


class TestSizeSkewed:
    def test_count_and_ranges(self, graph):
        stream = size_skewed_stream(graph, 200, seed=1)
        assert len(stream) == 200
        for s, t, mask in stream:
            assert 0 <= s < graph.num_vertices
            assert 0 <= t < graph.num_vertices
            assert 1 <= popcount(mask) <= graph.num_labels
        assert_masks_valid(graph, stream)

    def test_small_sets_dominate(self, graph):
        stream = size_skewed_stream(graph, 500, seed=2)
        sizes = [popcount(mask) for _, _, mask in stream]
        assert sizes.count(1) > sizes.count(4)

    def test_deterministic(self, graph):
        assert size_skewed_stream(graph, 50, seed=3) == size_skewed_stream(
            graph, 50, seed=3
        )

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            size_skewed_stream(graph, 0)
        with pytest.raises(ValueError):
            size_skewed_stream(graph, 10, success_probability=1.5)


class TestLocalityBiased:
    def test_pairs_within_radius(self, graph):
        stream = locality_biased_stream(graph, 60, radius=3, seed=4)
        assert len(stream) == 60
        assert_masks_valid(graph, stream)
        for s, t, mask in stream:
            d = bidirectional_constrained_bfs(graph, s, t, mask)
            assert d <= 2 * 3  # both endpoints in one radius-3 ball

    def test_deterministic(self, graph):
        assert locality_biased_stream(graph, 30, seed=6) == (
            locality_biased_stream(graph, 30, seed=6)
        )

    def test_edgeless_graph_raises(self):
        g = EdgeLabeledGraph.from_edges(50, [], num_labels=1)
        with pytest.raises(RuntimeError):
            locality_biased_stream(g, 10, radius=1, seed=0)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            locality_biased_stream(graph, 0)
        with pytest.raises(ValueError):
            locality_biased_stream(graph, 10, radius=0)


class TestFixedContext:
    def test_lazy_and_fixed(self, graph):
        stream = fixed_context_stream(graph, 0b101, 40, seed=5)
        items = list(stream)
        assert len(items) == 40
        assert all(mask == 0b101 for _, _, mask in items)
        assert_masks_valid(graph, items)

    def test_deterministic(self, graph):
        assert list(fixed_context_stream(graph, 0b11, 25, seed=8)) == (
            list(fixed_context_stream(graph, 0b11, 25, seed=8))
        )

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            list(fixed_context_stream(graph, 0, 10))
        with pytest.raises(ValueError):
            list(fixed_context_stream(graph, 1, 0))


class TestStreamThroughput:
    @pytest.fixture(scope="class")
    def index(self, graph):
        from repro.core.powcov import PowCovIndex

        return PowCovIndex(graph, [0, 20, 40, 60]).build()

    def test_answers_match_scalar_loop(self, graph, index):
        stream = size_skewed_stream(graph, 150, seed=3)
        answers, report = run_stream_throughput(index, stream, batch_size=32)
        assert answers == [index.query(s, t, m) for s, t, m in stream]
        assert isinstance(report, StreamReport)
        assert report.num_queries == len(stream)
        assert report.elapsed_seconds > 0
        assert report.queries_per_second > 0
        assert report.cache_hits + report.cache_misses == len(stream)
        assert report.masks_planned > 0

    def test_warm_session_replay_hits_cache(self, graph, index):
        from repro.engine import QuerySession

        stream = size_skewed_stream(graph, 100, seed=4)
        session = QuerySession(index, cache_size=4096)
        run_stream_throughput(index, stream, session=session)
        _, warm = run_stream_throughput(index, stream, session=session)
        assert warm.cache_hits == len(stream)
        assert warm.cache_misses == 0
        assert warm.hit_rate == 1.0
        assert warm.masks_planned == 0

    def test_describe_mentions_throughput(self, graph, index):
        _, report = run_stream_throughput(
            index, size_skewed_stream(graph, 20, seed=5)
        )
        assert "q/s" in report.describe()
