"""Tests for the serving-side query-stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import popcount
from repro.graph.traversal import bidirectional_constrained_bfs
from repro.workloads.streams import (
    fixed_context_stream,
    locality_biased_stream,
    size_skewed_stream,
)


@pytest.fixture(scope="module")
def graph():
    return labeled_erdos_renyi(80, 280, num_labels=5, seed=9)


class TestSizeSkewed:
    def test_count_and_ranges(self, graph):
        stream = size_skewed_stream(graph, 200, seed=1)
        assert len(stream) == 200
        for s, t, mask in stream:
            assert 0 <= s < graph.num_vertices
            assert 1 <= popcount(mask) <= graph.num_labels

    def test_small_sets_dominate(self, graph):
        stream = size_skewed_stream(graph, 500, seed=2)
        sizes = [popcount(mask) for _, _, mask in stream]
        assert sizes.count(1) > sizes.count(4)

    def test_deterministic(self, graph):
        assert size_skewed_stream(graph, 50, seed=3) == size_skewed_stream(
            graph, 50, seed=3
        )

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            size_skewed_stream(graph, 0)
        with pytest.raises(ValueError):
            size_skewed_stream(graph, 10, success_probability=1.5)


class TestLocalityBiased:
    def test_pairs_within_radius(self, graph):
        stream = locality_biased_stream(graph, 60, radius=3, seed=4)
        assert len(stream) == 60
        for s, t, mask in stream:
            d = bidirectional_constrained_bfs(graph, s, t, mask)
            assert d <= 2 * 3  # both endpoints in one radius-3 ball

    def test_edgeless_graph_raises(self):
        g = EdgeLabeledGraph.from_edges(50, [], num_labels=1)
        with pytest.raises(RuntimeError):
            locality_biased_stream(g, 10, radius=1, seed=0)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            locality_biased_stream(graph, 0)
        with pytest.raises(ValueError):
            locality_biased_stream(graph, 10, radius=0)


class TestFixedContext:
    def test_lazy_and_fixed(self, graph):
        stream = fixed_context_stream(graph, 0b101, 40, seed=5)
        items = list(stream)
        assert len(items) == 40
        assert all(mask == 0b101 for _, _, mask in items)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            list(fixed_context_stream(graph, 0, 10))
        with pytest.raises(ValueError):
            list(fixed_context_stream(graph, 1, 0))
