"""Tests for the project-specific AST linter (``repro.analysis.lint``).

Every rule is exercised from both sides through the fixture corpus in
``tests/lint_fixtures/`` (a ``# lint-module:`` header pins each fixture to
the library module it impersonates), and the whole ``src/repro`` tree is
asserted lint-clean — the same gate CI runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import (
    AST_RULES,
    FLOW_RULE_IDS,
    RULES,
    LintFinding,
    lint_file,
    lint_paths,
    main,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: rule id -> (violation fixture, minimum expected findings of that rule)
#: The flow rules (REPRO009-013) have their own corpus in test_flow.py.
VIOLATIONS = {
    "REPRO000": ("repro000_violation.py", 2),
    "REPRO001": ("repro001_violation.py", 3),
    "REPRO002": ("repro002_violation.py", 2),
    "REPRO003": ("repro003_violation.py", 4),
    "REPRO004": ("repro004_violation.py", 2),
    "REPRO005": ("repro005_violation.py", 2),
    "REPRO006": ("repro006_violation.py", 1),
    "REPRO007": ("repro007_violation.py", 4),
    "REPRO008": ("repro008_violation.py", 5),
    "REPRO014": ("repro014_violation.py", 4),
}

CLEAN = {
    "REPRO000": "repro000_clean.py",
    "REPRO001": "repro001_clean.py",
    "REPRO002": "repro002_clean.py",
    "REPRO003": "repro003_clean.py",
    "REPRO004": "repro004_clean.py",
    "REPRO005": "repro005_clean.py",
    "REPRO006": "repro006_clean.py",
    "REPRO007": "repro007_clean.py",
    "REPRO008": "repro008_clean.py",
    "REPRO014": "repro014_clean.py",
}


def test_catalog_partitions_cleanly():
    # Every cataloged rule is either an AST rule (checked here) or a flow
    # rule (checked by repro.analysis.flow / test_flow.py) — never both.
    assert AST_RULES | FLOW_RULE_IDS == set(RULES)
    assert not (AST_RULES & FLOW_RULE_IDS)
    assert sorted(AST_RULES) == sorted(VIOLATIONS) == sorted(CLEAN)


@pytest.mark.parametrize("rule", sorted(VIOLATIONS))
def test_rule_flags_violation_fixture(rule):
    name, expected = VIOLATIONS[rule]
    findings = lint_file(FIXTURES / name)
    hits = [f for f in findings if f.rule == rule]
    assert len(hits) >= expected, [f.format() for f in findings]
    # Fixtures are crafted to violate exactly one rule.
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule", sorted(CLEAN))
def test_rule_passes_clean_fixture(rule):
    findings = lint_file(FIXTURES / CLEAN[rule])
    assert findings == [], [f.format() for f in findings]


def test_finding_location_is_precise():
    findings = lint_file(FIXTURES / "repro002_violation.py", select=["REPRO002"])
    scalar = next(f for f in findings if "1 << label" in f.message)
    # `return 1 << label` lives on line 10 of the fixture, shift at col 12.
    assert scalar.line == 10
    assert scalar.col == 12
    assert scalar.path.endswith("repro002_violation.py")
    formatted = scalar.format()
    assert formatted.startswith(f"{scalar.path}:10:12: REPRO002")


def test_select_filters_rules():
    path = FIXTURES / "repro003_violation.py"
    everything = lint_file(path)
    only_random = lint_file(path, select=["REPRO003"])
    assert {f.rule for f in only_random} == {"REPRO003"}
    assert lint_file(path, select=["REPRO006"]) == []
    assert len(everything) >= len(only_random)


def test_noqa_suppresses_named_rule():
    assert lint_file(FIXTURES / "noqa_clean.py") == []


def test_bare_noqa_no_longer_suppresses(tmp_path):
    # The old blanket-suppression behavior is gone: the underlying rule
    # still fires AND the bare noqa itself is a REPRO000 finding.
    path = tmp_path / "scratch.py"
    path.write_text("mask = 1 << label  # noqa\n", encoding="utf-8")
    assert {f.rule for f in lint_file(path)} == {"REPRO000", "REPRO002"}


def test_cli_rejects_flow_rule_select():
    with pytest.raises(SystemExit):
        main([str(FIXTURES), "--select", "REPRO009"])


def test_lint_module_pin_controls_identity(tmp_path):
    source = "def _mask_of(label: int) -> int:\n    return 1 << label\n"
    unpinned = tmp_path / "scratch.py"
    unpinned.write_text(source, encoding="utf-8")
    # Outside the repro package, mask discipline still applies by default...
    assert {f.rule for f in lint_file(unpinned)} == {"REPRO002"}
    # ...but pinning to the owning module grants the exemption.
    pinned = tmp_path / "labelsets_like.py"
    pinned.write_text("# lint-module: repro/graph/labelsets.py\n" + source,
                      encoding="utf-8")
    assert lint_file(pinned) == []


def test_src_tree_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_exit_codes_and_output(capsys):
    bad = str(FIXTURES / "repro001_violation.py")
    assert main([bad]) == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out
    assert "finding(s)" in out

    good = str(FIXTURES / "repro001_clean.py")
    assert main([good]) == 0
    assert capsys.readouterr().out == ""


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_cli_select(capsys):
    bad = str(FIXTURES / "repro003_violation.py")
    assert main([bad, "--select", "repro006"]) == 0
    capsys.readouterr()
    assert main([bad, "--select", "REPRO003"]) == 1
    assert "REPRO003" in capsys.readouterr().out


def test_cli_rejects_unknown_rule():
    with pytest.raises(SystemExit):
        main([str(FIXTURES), "--select", "REPRO999"])


def test_findings_are_sorted_and_hashable():
    findings = lint_file(FIXTURES / "repro003_violation.py")
    assert findings == sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    assert all(isinstance(hash(f), int) for f in findings)
    assert isinstance(findings[0], LintFinding)
