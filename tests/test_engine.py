"""Tests for the batch-native query engine (repro.engine).

The engine's contract is *bit-identity*: for every oracle, batch
execution — with or without answer caching — returns exactly what the
scalar ``oracle.query`` loop returns, including the edge cases
(``s == t``, empty constraint masks, unreachable pairs).  The tests here
sweep that contract across every oracle family and storage layout, then
cover the planning layer, session caches, counters, and config plumbing.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import BidirectionalBFSBaseline, LabelConstrainedCH
from repro.core.chromland import ChromLandIndex
from repro.core.naive import NaivePowersetIndex
from repro.core.powcov import PowCovIndex, WeightedPowCovIndex
from repro.core.types import Query
from repro.engine import (
    EngineConfig,
    ExecutionPlan,
    PowCovExecutor,
    QuerySession,
    ScalarLoopExecutor,
    default_engine,
    execute_batch,
    executor_for,
    plan_batch,
    resolve_engine,
    set_default_engine,
)
from repro.engine.plan import as_triple, to_triple_array
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import full_mask


def directed_random(n=30, m=120, labels=3, seed=0) -> EdgeLabeledGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((u, v, int(rng.integers(labels))))
    return EdgeLabeledGraph.from_edges(n, sorted(edges), num_labels=labels,
                                       directed=True)


def symmetric_weights(graph, seed=0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    weights = np.zeros(graph.num_arcs, dtype=np.float64)
    pair_weight: dict[tuple[int, int, int], float] = {}
    for u in range(graph.num_vertices):
        for i in range(int(graph.indptr[u]), int(graph.indptr[u + 1])):
            key = (min(u, int(graph.neighbors[i])),
                   max(u, int(graph.neighbors[i])), int(graph.edge_labels[i]))
            if key not in pair_weight:
                pair_weight[key] = float(rng.integers(1, 6))
            weights[i] = pair_weight[key]
    return weights


def mixed_batch(graph, num_queries=160, seed=5) -> list[tuple[int, int, int]]:
    """A batch exercising every edge case: s==t, mask 0, repeats, all sizes."""
    rng = np.random.default_rng(seed)
    n, top = graph.num_vertices, full_mask(graph.num_labels)
    batch = [
        (0, 0, top),          # s == t answers 0 even with...
        (3, 3, 0),            # ...an empty mask
        (0, min(5, n - 1), 0),  # empty mask, distinct endpoints -> inf
    ]
    for _ in range(num_queries - len(batch)):
        batch.append((int(rng.integers(n)), int(rng.integers(n)),
                      int(rng.integers(0, top + 1))))
    batch.extend(batch[3:8])  # duplicates exercise the answer cache
    return batch


def scalar_answers(oracle, batch):
    return [oracle.query(s, t, m) for s, t, m in batch]


def assert_engine_matches_scalar(oracle, batch):
    """The core contract: batch path == scalar path, caches on and off."""
    expected = scalar_answers(oracle, batch)
    assert execute_batch(oracle, batch) == expected
    assert QuerySession(oracle, cache_size=0).run(batch) == expected
    session = QuerySession(oracle, cache_size=4096)
    assert session.run(batch) == expected
    assert session.run(batch) == expected  # warm-cache replay


@pytest.fixture(scope="module")
def undirected():
    return labeled_erdos_renyi(40, 130, num_labels=4, seed=11)


@pytest.fixture(scope="module")
def landmarks():
    return [0, 9, 18, 27]


class TestBitIdentity:
    @pytest.mark.parametrize("storage", ["flat", "packed", "trie"])
    def test_powcov_storages(self, undirected, landmarks, storage):
        index = PowCovIndex(undirected, landmarks, storage=storage).build()
        assert_engine_matches_scalar(index, mixed_batch(undirected))

    def test_powcov_median_estimator(self, undirected, landmarks):
        index = PowCovIndex(undirected, landmarks, estimator="median").build()
        assert_engine_matches_scalar(index, mixed_batch(undirected))

    @pytest.mark.parametrize("query_mode", ["auxiliary", "simple"])
    def test_chromland_modes(self, undirected, landmarks, query_mode):
        index = ChromLandIndex(
            undirected, landmarks, [0, 1, 2, 3], query_mode=query_mode
        ).build()
        assert_engine_matches_scalar(index, mixed_batch(undirected))

    def test_naive_powerset(self, undirected, landmarks):
        index = NaivePowersetIndex(undirected, landmarks).build()
        assert_engine_matches_scalar(index, mixed_batch(undirected))

    def test_bidirectional_baseline(self, undirected):
        assert_engine_matches_scalar(
            BidirectionalBFSBaseline(undirected), mixed_batch(undirected, 60)
        )

    def test_label_constrained_ch(self, undirected):
        ch = LabelConstrainedCH(undirected, degree_limit=12).build()
        assert_engine_matches_scalar(ch, mixed_batch(undirected, 60))

    @pytest.mark.parametrize("estimator", ["upper", "median"])
    def test_directed_powcov(self, estimator):
        graph = directed_random(seed=8)
        index = PowCovIndex(
            graph, [0, 6, 12, 18], estimator=estimator
        ).build()
        assert_engine_matches_scalar(index, mixed_batch(graph, seed=8))

    @pytest.mark.parametrize("query_mode", ["auxiliary", "simple"])
    def test_directed_chromland(self, query_mode):
        graph = directed_random(seed=9)
        index = ChromLandIndex(
            graph, [0, 6, 12, 18], [0, 1, 2, 0], query_mode=query_mode
        ).build()
        assert_engine_matches_scalar(index, mixed_batch(graph, seed=9))

    def test_weighted_powcov(self, undirected, landmarks):
        weights = symmetric_weights(undirected, seed=11)
        index = WeightedPowCovIndex(undirected, landmarks, weights).build()
        assert_engine_matches_scalar(index, mixed_batch(undirected))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 4))
    def test_property_random_graphs(self, seed, labels):
        rng = np.random.default_rng(seed)
        graph = labeled_erdos_renyi(
            int(rng.integers(12, 36)), int(rng.integers(20, 90)),
            num_labels=labels, seed=seed,
        )
        k = min(3, graph.num_vertices)
        lms = sorted(int(v) for v in rng.choice(graph.num_vertices, k, False))
        batch = mixed_batch(graph, num_queries=40, seed=seed)
        for oracle in (
            PowCovIndex(graph, lms).build(),
            ChromLandIndex(graph, lms, [i % labels for i in range(k)]).build(),
        ):
            assert execute_batch(oracle, batch) == scalar_answers(oracle, batch)

    def test_batch_query_delegates_to_engine(self, undirected, landmarks):
        index = PowCovIndex(undirected, landmarks).build()
        queries = [Query(s, t, m) for s, t, m in mixed_batch(undirected, 50)]
        assert index.batch_query(queries) == index.batch_query_scalar(queries)


class TestPlanning:
    def test_as_triple_forms(self):
        assert as_triple((1, 2, 3)) == (1, 2, 3)
        assert as_triple(Query(1, 2, 3)) == (1, 2, 3)

    def test_to_triple_array_forms(self):
        triples = [(0, 1, 3), (2, 0, 1)]
        for form in (
            triples,
            [Query(s, t, m) for s, t, m in triples],
            np.asarray(triples, dtype=np.int64),
        ):
            assert to_triple_array(form).tolist() == [list(t) for t in triples]
        assert to_triple_array([]).shape == (0, 3)
        with pytest.raises(ValueError):
            to_triple_array(np.zeros((3, 2), dtype=np.int64))

    def test_plan_groups_partition_batch(self):
        batch = [(0, 1, 5), (1, 2, 3), (2, 3, 5), (3, 4, 3), (4, 5, 5)]
        plan = plan_batch(batch)
        assert isinstance(plan, ExecutionPlan)
        assert plan.num_queries == len(batch)
        assert plan.num_masks == 2
        masks = [g.label_mask for g in plan.groups]
        assert masks == sorted(masks)
        seen = np.concatenate([g.positions for g in plan.groups])
        assert sorted(seen.tolist()) == list(range(len(batch)))
        for group in plan.groups:
            for pos, s, t in zip(group.positions, group.sources, group.targets):
                assert batch[pos] == (s, t, group.label_mask)

    def test_empty_plan(self):
        plan = plan_batch([])
        assert plan.num_queries == 0
        assert plan.groups == ()


class TestQuerySession:
    @pytest.fixture(scope="class")
    def index(self, undirected, landmarks):
        return PowCovIndex(undirected, landmarks).build()

    def test_validation(self, index):
        with pytest.raises(ValueError):
            QuerySession(index, cache_size=-1)
        with pytest.raises(ValueError):
            QuerySession(index, plan_cache_size=0)

    def test_counters_and_cache_info(self, index, undirected):
        batch = mixed_batch(undirected, 80)
        session = QuerySession(index, cache_size=4096)
        session.run(batch)
        counters = session.stats.counters
        # The whole first batch is probed before any answer lands in the
        # cache, so duplicates within it still count as misses.
        assert counters["queries"] == len(batch)
        assert counters["cache_misses"] == len(batch)
        assert counters["cache_hits"] == 0
        assert counters["executed"] == len(batch)
        session.run(batch)
        assert session.stats.counters["cache_hits"] == len(batch)
        info = session.cache_info()
        assert info["cached_answers"] == len(set(batch))
        assert 0 < info["hit_rate"] <= 1

    def test_evictions(self, index, undirected):
        batch = list(dict.fromkeys(mixed_batch(undirected, 100)))
        session = QuerySession(index, cache_size=8)
        session.run(batch)
        assert session.stats.counters["cache_evictions"] == len(batch) - 8
        assert len(session._answers) == 8

    def test_plan_cache(self, index):
        # cache_size=0 so every run reaches the plan lookup (answers
        # would otherwise short-circuit repeated masks entirely).
        session = QuerySession(index, cache_size=0, plan_cache_size=2)
        for mask in (1, 2, 1, 4, 1):
            session.run([(0, 1, mask)])
        counters = session.stats.counters
        # plan: 1, 2 planned; 1 hits (LRU order [2, 1]); 4 evicts 2;
        # 1 hits again.
        assert counters["masks_planned"] == 3
        assert counters["plan_cache_hits"] == 2

    def test_scalar_query_path_cached(self, index):
        session = QuerySession(index)
        first = session.query(0, 5, 7)
        assert session.query(0, 5, 7) == first == index.query(0, 5, 7)
        assert session.stats.counters["cache_hits"] == 1

    def test_clear_cache(self, index):
        session = QuerySession(index)
        session.run([(0, 1, 3)])
        session.clear_cache()
        assert session.cache_info()["cached_answers"] == 0

    def test_run_stream_matches_run(self, index, undirected):
        batch = mixed_batch(undirected, 90)
        streamed = QuerySession(index).run_stream(iter(batch), batch_size=16)
        assert streamed == QuerySession(index).run(batch)
        with pytest.raises(ValueError):
            QuerySession(index).run_stream(iter(batch), batch_size=0)

    def test_empty_batch(self, index):
        assert QuerySession(index).run([]) == []
        assert execute_batch(index, []) == []

    def test_format_stats_mentions_counters(self, index):
        session = QuerySession(index)
        session.run([(0, 1, 3)])
        text = session.format_stats()
        assert "cache" in text and "queries" in text


class TestExecutorDispatch:
    def test_powcov_gets_specialized_executor(self, undirected, landmarks):
        index = PowCovIndex(undirected, landmarks).build()
        assert isinstance(executor_for(index), PowCovExecutor)

    def test_baseline_gets_scalar_adapter(self, undirected):
        executor = executor_for(BidirectionalBFSBaseline(undirected))
        assert isinstance(executor, ScalarLoopExecutor)

    def test_unbuilt_index_rejected(self, undirected, landmarks):
        with pytest.raises(RuntimeError):
            executor_for(PowCovIndex(undirected, landmarks))


class TestEngineConfig:
    def test_resolve_forms(self):
        assert resolve_engine(None) == default_engine()
        assert resolve_engine(True).enabled
        assert not resolve_engine(False).enabled
        config = EngineConfig(enabled=True, cache_size=7)
        assert resolve_engine(config) is config

    def test_default_roundtrip(self):
        original = default_engine()
        try:
            set_default_engine(EngineConfig(enabled=True, cache_size=123))
            assert resolve_engine(None).cache_size == 123
        finally:
            set_default_engine(original)


class TestCacheGraphIdentity:
    """Answer-cache keys carry the graph fingerprint (regression).

    Before the fingerprint component, a session rebound to an oracle over a
    *different* graph kept serving the old graph's cached distances for any
    ``(s, t, mask)`` it had already seen.
    """

    def _disagreeing_oracles(self):
        # Same vertex count and label universe, different structure: the
        # two graphs answer (0, 3, {r}) differently.
        close = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 0), (2, 3, 0)], num_labels=2
        )
        far = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 1), (2, 3, 0)], num_labels=2
        )
        oracle_close = BidirectionalBFSBaseline(close)
        oracle_far = BidirectionalBFSBaseline(far)
        assert oracle_close.query(0, 3, 1) != oracle_far.query(0, 3, 1)
        return oracle_close, oracle_far

    def test_rebind_never_serves_stale_answers(self):
        oracle_close, oracle_far = self._disagreeing_oracles()
        batch = [(0, 3, 1), (0, 2, 1)]
        session = QuerySession(oracle_close, cache_size=64)
        assert session.run(batch) == scalar_answers(oracle_close, batch)
        session.rebind(oracle_far)
        # The old graph's entries must not match: fresh, correct answers.
        assert session.run(batch) == scalar_answers(oracle_far, batch)
        assert session.query(0, 3, 1) == oracle_far.query(0, 3, 1)

    def test_rebind_back_revalidates_cached_answers(self):
        oracle_close, oracle_far = self._disagreeing_oracles()
        session = QuerySession(oracle_close, cache_size=64)
        session.run([(0, 3, 1)])
        session.rebind(oracle_far)
        session.run([(0, 3, 1)])
        hits_before = session.stats.counters.get("cache_hits", 0)
        session.rebind(oracle_close)
        assert session.run([(0, 3, 1)]) == [oracle_close.query(0, 3, 1)]
        # Served from cache: the original graph's entry became a hit again.
        assert session.stats.counters["cache_hits"] == hits_before + 1

    def test_rebind_drops_plans_keeps_answers(self, undirected, landmarks):
        index = PowCovIndex(undirected, landmarks).build()
        session = QuerySession(index, cache_size=64)
        batch = mixed_batch(undirected, num_queries=20)
        session.run(batch)
        assert session.cache_info()["cached_plans"] > 0
        session.rebind(ChromLandIndex(undirected, landmarks,
                                      [0] * len(landmarks)).build())
        assert session.cache_info()["cached_plans"] == 0
        assert session.cache_info()["cached_answers"] > 0


class TestRebindRepairAcrossMutations:
    """``rebind(repair=True)`` vs ``rebind(repair=False)`` across a delta.

    The repair path migrates cached answers whose mask avoids the delta's
    touched labels; the invalidate path starts cold.  Both must serve the
    exact same answers — migration is a cache optimization, never a
    semantic change.
    """

    def _mutated(self, graph):
        from repro.graph.delta import GraphDelta, apply_delta

        present = set()
        for u in range(graph.num_vertices):
            for neighbor, label in zip(graph.neighbors_of(u), graph.labels_of(u)):
                if u < int(neighbor):
                    present.add((u, int(neighbor), int(label)))
        u, v, label = min(e for e in present if e[2] == 0)
        return apply_delta(graph, GraphDelta(deletions=((u, v, label),)))

    def test_repair_and_invalidate_paths_agree(self, undirected, landmarks):
        from repro.core.dynamic import repair_index

        batch = mixed_batch(undirected, num_queries=80)
        repaired_session = QuerySession(
            PowCovIndex(undirected, landmarks).build(), cache_size=4096
        )
        invalidated_session = QuerySession(
            PowCovIndex(undirected, landmarks).build(), cache_size=4096
        )
        assert repaired_session.run(batch) == invalidated_session.run(batch)

        new_graph = self._mutated(undirected)
        for session in (repaired_session, invalidated_session):
            repair_index(session.oracle, new_graph)
        repaired_session.rebind(repaired_session.oracle, repair=True)
        invalidated_session.rebind(invalidated_session.oracle, repair=False)

        reference = scalar_answers(repaired_session.oracle, batch)
        assert repaired_session.run(batch) == reference
        assert invalidated_session.run(batch) == reference
        # The repair path actually migrated something...
        migrated = repaired_session.stats.counters["rebind_answers_migrated"]
        assert migrated > 0
        # ...and the invalidate path migrated nothing.
        assert "rebind_answers_migrated" not in (
            invalidated_session.stats.counters
        ) or invalidated_session.stats.counters["rebind_answers_migrated"] == 0

    def test_migrated_answers_hit_without_recompute(self, undirected, landmarks):
        from repro.core.dynamic import repair_index

        index = PowCovIndex(undirected, landmarks).build()
        session = QuerySession(index, cache_size=4096)
        # Touched labels will be {0}; mask 0b1110 avoids it, 0b0001 doesn't.
        avoiding = [(1, 7, 0b1110), (2, 9, 0b0110)]
        intersecting = [(1, 7, 0b0001), (2, 9, 0b0011)]
        session.run(avoiding + intersecting)

        new_graph = self._mutated(undirected)
        assert new_graph.applied_delta.touched_label_mask() == 0b0001
        repair_index(index, new_graph)
        session.rebind(index)

        hits_before = session.stats.counters.get("cache_hits", 0)
        assert session.run(avoiding) == scalar_answers(index, avoiding)
        assert session.stats.counters["cache_hits"] == hits_before + len(avoiding)
        # Intersecting masks went cold: re-answered, not served stale.
        misses_before = session.stats.counters.get("cache_misses", 0)
        assert session.run(intersecting) == scalar_answers(index, intersecting)
        assert session.stats.counters["cache_misses"] == misses_before + len(
            intersecting
        )

    def test_unrelated_rebind_migrates_nothing(self, undirected, landmarks):
        # Rebinding to an oracle over an unrelated graph (no lineage) must
        # fall back to plain invalidation.
        other = labeled_erdos_renyi(40, 130, num_labels=4, seed=77)
        session = QuerySession(
            PowCovIndex(undirected, landmarks).build(), cache_size=4096
        )
        batch = mixed_batch(undirected, num_queries=40)
        session.run(batch)
        replacement = PowCovIndex(other, landmarks).build()
        session.rebind(replacement, repair=True)
        assert session.stats.counters.get("rebind_answers_migrated", 0) == 0
        assert session.run(batch) == scalar_answers(replacement, batch)
