"""Tests for the CLI entry point and the scaling experiment."""

from __future__ import annotations

import os

import pytest

from repro.eval.cli import main
from repro.eval.scaling import render_scaling, scaling_sweep


class TestScalingSweep:
    def test_points_structure(self):
        points = scaling_sweep(
            dataset="youtube-sim", scales=(0.1, 0.2), k=4, num_pairs=20,
            seed=3, chromland_iterations=5,
        )
        assert len(points) == 2
        small, large = points
        assert large.num_vertices > small.num_vertices
        assert small.exact_query_seconds > 0
        assert small.powcov_speedup > 0
        text = render_scaling(points)
        assert "speed-up" in text.lower()

    def test_exact_cost_grows_with_scale(self):
        points = scaling_sweep(
            dataset="biogrid-sim", scales=(0.1, 0.4), k=4, num_pairs=15,
            seed=3, chromland_iterations=5,
        )
        assert points[1].exact_query_seconds > points[0].exact_query_seconds


class TestCli:
    def test_table1_runs(self, capsys, tmp_path):
        out = tmp_path / "t1.txt"
        code = main(["table1", "--scale", "0.1", "--pairs", "15",
                     "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Table 1" in captured
        assert out.read_text().startswith("Table 1")

    def test_csv_export(self, capsys, tmp_path):
        csv_dir = tmp_path / "csv"
        code = main(["table1", "--scale", "0.1", "--pairs", "15",
                     "--csv-dir", str(csv_dir)])
        assert code == 0
        assert (csv_dir / "table1.csv").exists()
        header = (csv_dir / "table1.csv").read_text().splitlines()[0]
        assert "dataset" in header

    def test_profile_runs(self, capsys):
        code = main(["profile", "--scale", "0.1"])
        assert code == 0
        assert "structural profiles" in capsys.readouterr().out

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_ks_parsing(self, capsys):
        # table2 with a custom k exercises the int parsing path quickly.
        code = main(["table2", "--scale", "0.08", "--k", "3"])
        assert code == 0
        assert "Table 2" in capsys.readouterr().out
