"""Tests for the ChromLand index and its two query strategies."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.chromland import ChromLandIndex
from repro.core.chromland.query import (
    auxiliary_graph_distance,
    simple_triangle_distance,
)
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.traversal import UNREACHABLE, constrained_bfs

from conftest import all_pairs_all_masks, make_line


@pytest.fixture(scope="module")
def built():
    graph = labeled_erdos_renyi(45, 130, num_labels=3, seed=17)
    landmarks = [0, 5, 11, 17, 23, 29, 35, 41]
    colors = [0, 1, 2, 0, 1, 2, 0, 1]
    aux = ChromLandIndex(graph, landmarks, colors).build()
    simple = ChromLandIndex(graph, landmarks, colors, query_mode="simple").build()
    return graph, landmarks, colors, aux, simple


class TestConstruction:
    def test_parallel_arrays_required(self, random_graph):
        with pytest.raises(ValueError, match="parallel"):
            ChromLandIndex(random_graph, [0, 1], [0])

    def test_duplicate_landmarks_rejected(self, random_graph):
        with pytest.raises(ValueError, match="distinct"):
            ChromLandIndex(random_graph, [0, 0], [0, 1])

    def test_color_out_of_range(self, random_graph):
        with pytest.raises(ValueError, match="color"):
            ChromLandIndex(random_graph, [0], [99])

    def test_bad_query_mode(self, random_graph):
        with pytest.raises(ValueError, match="query_mode"):
            ChromLandIndex(random_graph, [0], [0], query_mode="psychic")

    def test_query_before_build(self, random_graph):
        index = ChromLandIndex(random_graph, [0], [0])
        with pytest.raises(RuntimeError):
            index.query(0, 1, 1)


class TestStoredDistances:
    def test_mono_rows_match_constrained_bfs(self, built):
        graph, landmarks, colors, aux, _ = built
        for i, (x, c) in enumerate(zip(landmarks, colors)):
            expected = constrained_bfs(graph, x, 1 << c)
            assert np.array_equal(aux.mono[i], expected)

    def test_bichromatic_symmetric(self, built):
        _, _, _, aux, _ = built
        assert np.array_equal(aux.bi, aux.bi.T)

    def test_bichromatic_values(self, built):
        graph, landmarks, colors, aux, _ = built
        for i, (x, cx) in enumerate(zip(landmarks, colors)):
            for j, (y, cy) in enumerate(zip(landmarks, colors)):
                if i == j or cx == cy:
                    continue
                mask = (1 << cx) | (1 << cy)
                expected = constrained_bfs(graph, x, mask)[y]
                assert aux.bi[i, j] == expected

    def test_chromatic_distance_accessor(self, built):
        graph, landmarks, colors, aux, _ = built
        expected = constrained_bfs(graph, landmarks[0], 1 << colors[0])
        for u in (1, 2, 3):
            want = float(expected[u]) if expected[u] != UNREACHABLE else math.inf
            assert aux.chromatic_distance(0, u) == want


class TestQueryBounds:
    def test_upper_bound_no_false_positives(self, built):
        graph, _, _, aux, simple = built
        for s, t, mask, exact in all_pairs_all_masks(graph):
            if s == t:
                continue
            est_aux = aux.query(s, t, mask)
            est_simple = simple.query(s, t, mask)
            if math.isinf(exact):
                assert math.isinf(est_aux)
                assert math.isinf(est_simple)
            else:
                assert est_aux >= exact
                assert est_simple >= exact

    def test_auxiliary_never_worse_than_simple(self, built):
        graph, _, _, aux, simple = built
        for s in range(0, graph.num_vertices, 4):
            for t in range(1, graph.num_vertices, 5):
                for mask in range(1, 8):
                    assert aux.query(s, t, mask) <= simple.query(s, t, mask)

    def test_same_vertex_and_empty_mask(self, built):
        _, _, _, aux, _ = built
        assert aux.query(4, 4, 7) == 0.0
        assert math.isinf(aux.query(0, 1, 0))

    def test_no_usable_landmark_gives_infinity(self):
        graph = make_line([0, 1], num_labels=3)
        index = ChromLandIndex(graph, [1], [0]).build()
        # Query constraint {label 2}: the single landmark has color 0.
        assert math.isinf(index.query(0, 2, 0b100))


class TestMultiLandmarkComposition:
    def test_figure3_style_two_landmark_path(self):
        """A two-color path answered exactly only via two landmarks."""
        # s -g- x -g- y -o- t with landmarks x (green) and y (orange).
        g = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 0), (2, 3, 1)], num_labels=2
        )
        index = ChromLandIndex(g, [1, 2], [0, 1]).build()
        # Simple strategy: no single landmark sees both s and t.
        simple = ChromLandIndex(g, [1, 2], [0, 1], query_mode="simple").build()
        assert math.isinf(simple.query(0, 3, 0b11))
        # Auxiliary graph composes s->x (green), x->y (green), y->t (orange).
        assert index.query(0, 3, 0b11) == 3.0

    def test_figure5_vertex_cover_insufficient(self, figure5):
        """Figure 5: {x} is a vertex cover but ChromLand cannot be exact."""
        graph, u, x, v = figure5
        for color in range(graph.num_labels):
            index = ChromLandIndex(graph, [x], [color]).build()
            estimate = index.query(u, v, 0b11)
            assert math.isinf(estimate)  # whatever the color, no answer

    def test_same_color_landmarks_do_not_chain(self):
        """Same-color landmark pairs have no auxiliary edge (paper's G_X)."""
        g = make_line([0, 0, 0, 0], num_labels=2)
        index = ChromLandIndex(g, [1, 3], [0, 0]).build()
        assert index.bi[0, 1] == UNREACHABLE
        # Single-landmark bounds still answer the query exactly here.
        assert index.query(0, 4, 0b01) == 4.0


class TestQueryHelpers:
    def test_simple_triangle_empty_usable(self):
        mono = np.zeros((2, 5), dtype=np.int32)
        assert simple_triangle_distance(
            mono, np.array([], dtype=np.int64), 0, 1
        ) == math.inf

    def test_auxiliary_empty_usable(self):
        mono = np.zeros((2, 5), dtype=np.int32)
        bi = np.zeros((2, 2), dtype=np.int32)
        colors = np.array([0, 1])
        assert auxiliary_graph_distance(
            mono, bi, colors, np.array([], dtype=np.int64), 0, 1
        ) == math.inf

    def test_index_size_entries(self, built):
        graph, landmarks, _, aux, _ = built
        k = len(landmarks)
        assert aux.index_size_entries() == k * graph.num_vertices + k * (k - 1) // 2

    def test_describe(self, built):
        _, _, _, aux, _ = built
        assert "chromland" in aux.describe()
