"""Direct checks of the paper's formal claims on exhaustively-searched graphs."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.core.chromland import ChromLandIndex
from repro.core.powcov import PowCovIndex, brute_force_sp_minimal
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labelsets import popcount
from repro.landmarks import is_vertex_cover

from conftest import all_pairs_all_masks


def powcov_exact_on_all_queries(graph, landmarks) -> bool:
    index = PowCovIndex(graph, list(landmarks)).build()
    for s, t, mask, exact in all_pairs_all_masks(graph):
        if s == t:
            continue
        estimate = index.query(s, t, mask)
        if math.isinf(exact) != math.isinf(estimate):
            return False
        if not math.isinf(exact) and estimate != exact:
            return False
    return True


class TestTheorem3VertexCover:
    """PowCov is exact on all queries iff the landmarks form a vertex cover."""

    @pytest.mark.parametrize("seed", range(3))
    def test_both_directions(self, seed):
        graph = labeled_erdos_renyi(8, 12, num_labels=2, seed=seed)
        vertices = range(graph.num_vertices)
        # check all subsets of size 3..5 (keeps the test fast but covers
        # both cover and non-cover subsets)
        for size in (3, 4, 5):
            for subset in itertools.combinations(vertices, size):
                cover = is_vertex_cover(graph, list(subset))
                exact = powcov_exact_on_all_queries(graph, subset)
                assert exact == cover, (seed, subset)

    def test_full_vertex_set_is_exact(self):
        graph = labeled_erdos_renyi(7, 10, num_labels=2, seed=5)
        assert powcov_exact_on_all_queries(graph, range(7))


class TestProposition1:
    """H <= sum_{d<=d_max} C(|L|, d); tighter: every stored |C| <= its d."""

    @pytest.mark.parametrize("seed", range(3))
    def test_bound(self, seed):
        graph = labeled_erdos_renyi(30, 80, num_labels=4, seed=seed)
        result = brute_force_sp_minimal(graph, 0)
        d_max = 0
        for pairs in result.entries.values():
            for dist, mask in pairs:
                assert popcount(mask) <= dist
                d_max = max(d_max, dist)
        bound = sum(
            math.comb(graph.num_labels, d)
            for d in range(1, min(d_max, graph.num_labels) + 1)
        )
        h = max(len(p) for p in result.entries.values())
        assert h <= bound


class TestTheorem5Tightness:
    """The auxiliary-graph bound is the tightest derivable one: it is
    never looser than any landmark-sequence composition bound."""

    def test_aux_at_most_any_two_landmark_chain(self):
        graph = labeled_erdos_renyi(40, 140, num_labels=3, seed=8)
        landmarks = [0, 5, 10, 15, 20, 25]
        colors = [0, 1, 2, 0, 1, 2]
        index = ChromLandIndex(graph, landmarks, colors).build()
        for s in range(0, 40, 7):
            for t in range(1, 40, 9):
                for mask in (0b011, 0b101, 0b111):
                    aux = index.query(s, t, mask)
                    # any manual chain s -> x -> y -> t must be >= aux bound
                    for i in range(6):
                        if not (1 << colors[i]) & mask:
                            continue
                        for j in range(6):
                            if i == j or colors[i] == colors[j]:
                                continue
                            if not (1 << colors[j]) & mask:
                                continue
                            ds = index.chromatic_distance(i, s)
                            dxy = index.bi[i, j]
                            dt = index.chromatic_distance(j, t)
                            if dxy < 0 or math.isinf(ds) or math.isinf(dt):
                                continue
                            assert aux <= ds + float(dxy) + dt


class TestObservationSoundness:
    """Monotonicity (the base fact behind subsumption): growing C never
    grows the distance; subsumption implies reconstructability."""

    def test_distance_monotone_in_labels(self):
        graph = labeled_erdos_renyi(30, 90, num_labels=4, seed=3)
        from repro.graph.traversal import UNREACHABLE, constrained_bfs
        import numpy as np

        for mask in (0b0001, 0b0011, 0b0111):
            bigger = mask | 0b1000
            a = constrained_bfs(graph, 0, mask)
            b = constrained_bfs(graph, 0, bigger)
            a = np.where(a == UNREACHABLE, 10**6, a)
            b = np.where(b == UNREACHABLE, 10**6, b)
            assert (b <= a).all()

    def test_theorem1_infinite_when_no_subset_stored(self):
        """d_C = inf iff no stored SP-minimal subset of C exists."""
        graph = labeled_erdos_renyi(25, 60, num_labels=3, seed=6)
        from repro.graph.traversal import UNREACHABLE, constrained_bfs

        result = brute_force_sp_minimal(graph, 0)
        for mask in range(1, 8):
            dist = constrained_bfs(graph, 0, mask)
            for u in range(1, graph.num_vertices):
                stored = result.entries.get(u, [])
                has_subset = any(m & mask == m for _, m in stored)
                assert has_subset == (dist[u] != UNREACHABLE), (u, mask)
