"""Tests for the exact baselines (bidirectional BFS and CH)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BidirectionalBFSBaseline,
    LabelConstrainedCH,
    UnidirectionalBFSBaseline,
)
from repro.baselines.rice_tsotras import _pareto_insert
from repro.graph.generators import labeled_erdos_renyi, labeled_grid
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import full_mask

from conftest import exact_constrained_distance


class TestParetoInsert:
    def test_insert_into_empty(self):
        entries: list[tuple[int, int]] = []
        assert _pareto_insert(entries, 3, 0b01)
        assert entries == [(3, 0b01)]

    def test_dominated_rejected(self):
        entries = [(2, 0b01)]
        assert not _pareto_insert(entries, 3, 0b11)  # longer AND wider
        assert not _pareto_insert(entries, 2, 0b01)  # identical
        assert entries == [(2, 0b01)]

    def test_dominating_evicts(self):
        entries = [(5, 0b11)]
        assert _pareto_insert(entries, 3, 0b01)
        assert entries == [(3, 0b01)]

    def test_incomparable_coexist(self):
        entries = [(2, 0b10)]
        assert _pareto_insert(entries, 3, 0b01)  # longer but narrower
        assert sorted(entries) == [(2, 0b10), (3, 0b01)]
        assert _pareto_insert(entries, 1, 0b100)
        assert len(entries) == 3


class TestBidirectionalBaseline:
    def test_matches_reference(self, random_graph):
        oracle = BidirectionalBFSBaseline(random_graph)
        uni = UnidirectionalBFSBaseline(random_graph)
        for s in range(0, 60, 11):
            for t in range(1, 60, 13):
                for mask in (1, 5, 15):
                    expected = exact_constrained_distance(random_graph, s, t, mask)
                    assert oracle.query(s, t, mask) == expected
                    assert uni.query(s, t, mask) == expected

    def test_same_vertex(self, random_graph):
        assert UnidirectionalBFSBaseline(random_graph).query(4, 4, 1) == 0.0


class TestCHExactness:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(12, 35), st.integers(15, 70), st.integers(1, 4),
        st.integers(0, 300),
    )
    def test_random_graphs_all_masks(self, n, m, labels, seed):
        g = labeled_erdos_renyi(n, m, num_labels=labels, seed=seed)
        ch = LabelConstrainedCH(g, degree_limit=64).build()
        universe = full_mask(labels)
        for s in range(0, n, max(1, n // 4)):
            for t in range(1, n, max(1, n // 3)):
                for mask in range(1, universe + 1):
                    expected = exact_constrained_distance(g, s, t, mask)
                    assert ch.query(s, t, mask) == expected, (s, t, mask)

    def test_grid_exactness(self):
        g = labeled_grid(8, 8, 3, seed=1)
        ch = LabelConstrainedCH(g).build()
        for s in (0, 17, 39):
            for t in (5, 30, 63):
                for mask in (1, 3, 7):
                    assert ch.query(s, t, mask) == exact_constrained_distance(
                        g, s, t, mask
                    )

    def test_small_degree_limit_still_exact(self):
        g = labeled_erdos_renyi(40, 120, num_labels=3, seed=7)
        ch = LabelConstrainedCH(g, degree_limit=2).build()  # huge core
        for s, t in ((0, 39), (5, 20), (11, 33)):
            for mask in (1, 3, 7):
                assert ch.query(s, t, mask) == exact_constrained_distance(
                    g, s, t, mask
                )

    def test_same_vertex(self, random_graph):
        ch = LabelConstrainedCH(random_graph).build()
        assert ch.query(3, 3, 1) == 0.0

    def test_unreachable(self):
        g = EdgeLabeledGraph.from_edges(4, [(0, 1, 0), (2, 3, 1)], num_labels=2)
        ch = LabelConstrainedCH(g).build()
        assert math.isinf(ch.query(0, 3, 0b11))
        assert math.isinf(ch.query(0, 1, 0b10))  # wrong label


class TestCHStructure:
    def test_query_before_build(self, random_graph):
        with pytest.raises(RuntimeError):
            LabelConstrainedCH(random_graph).query(0, 1, 1)

    def test_directed_rejected(self):
        g = EdgeLabeledGraph.from_edges(2, [(0, 1, 0)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            LabelConstrainedCH(g)

    def test_degree_limit_validation(self, random_graph):
        with pytest.raises(ValueError):
            LabelConstrainedCH(random_graph, degree_limit=0)

    def test_core_shrinks_with_degree_limit(self):
        g = labeled_erdos_renyi(100, 300, num_labels=3, seed=0)
        loose = LabelConstrainedCH(g, degree_limit=64).build()
        tight = LabelConstrainedCH(g, degree_limit=4).build()
        assert loose.core_size <= tight.core_size

    def test_describe(self, random_graph):
        ch = LabelConstrainedCH(random_graph).build()
        assert "core=" in ch.describe()
