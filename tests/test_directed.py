"""Tests for directed-graph support (the paper's Section 2 remark).

Exactness of the substrate on directed graphs is covered in
test_traversal.py; here we verify the *indexes*: PowCov keeps a reversed
table for vertex→landmark distances, ChromLand keeps ``mono_in``, and both
remain sound upper bounds with no false positives.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.chromland import ChromLandIndex
from repro.core.powcov import PowCovIndex
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.traversal import UNREACHABLE, bidirectional_constrained_bfs, constrained_bfs


def directed_random(n=35, m=140, labels=3, seed=0) -> EdgeLabeledGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((u, v, int(rng.integers(labels))))
    return EdgeLabeledGraph.from_edges(n, sorted(edges), num_labels=labels,
                                       directed=True)


def exact_directed(graph, s, t, mask) -> float:
    dist = constrained_bfs(graph, s, mask)
    return float(dist[t]) if dist[t] != UNREACHABLE else math.inf


@pytest.fixture(scope="module")
def setup():
    graph = directed_random(seed=3)
    landmarks = [0, 7, 14, 21, 28]
    powcov = PowCovIndex(graph, landmarks).build()
    chroml = ChromLandIndex(graph, landmarks, [0, 1, 2, 0, 1]).build()
    return graph, landmarks, powcov, chroml


class TestDirectedPowCov:
    @pytest.mark.parametrize("storage", ["packed", "trie"])
    def test_rejects_non_flat_storage(self, storage):
        # Documented in the PowCovIndex docstring: directed graphs keep a
        # reversed-graph table that only the flat layout serves, so the
        # restriction must surface at construction time for both layouts.
        graph = directed_random(seed=1)
        with pytest.raises(ValueError, match="flat"):
            PowCovIndex(graph, [0], storage=storage)

    def test_flat_storage_accepted(self):
        graph = directed_random(seed=1)
        PowCovIndex(graph, [0], storage="flat")  # must not raise

    def test_landmark_distance_both_directions(self, setup):
        graph, landmarks, powcov, _ = setup
        reversed_graph = graph.reversed()
        for i, x in enumerate(landmarks):
            for mask in (1, 3, 7):
                fwd = constrained_bfs(graph, x, mask)
                bwd = constrained_bfs(reversed_graph, x, mask)
                for u in range(0, graph.num_vertices, 4):
                    want_fwd = float(fwd[u]) if fwd[u] != UNREACHABLE else math.inf
                    want_bwd = float(bwd[u]) if bwd[u] != UNREACHABLE else math.inf
                    assert powcov.landmark_distance(i, u, mask) == want_fwd
                    assert powcov.landmark_distance(
                        i, u, mask, direction="to-landmark"
                    ) == want_bwd

    def test_upper_bound_and_no_false_positives(self, setup):
        graph, _, powcov, _ = setup
        for s in range(0, graph.num_vertices, 3):
            for t in range(1, graph.num_vertices, 4):
                if s == t:
                    continue
                for mask in range(1, 8):
                    exact = exact_directed(graph, s, t, mask)
                    answer = powcov.query_answer(s, t, mask)
                    if math.isinf(exact):
                        assert math.isinf(answer.estimate)
                    else:
                        assert answer.estimate >= exact
                        assert answer.lower <= exact

    def test_exact_through_landmark(self, setup):
        graph, landmarks, powcov, _ = setup
        s = landmarks[2]
        for t in range(0, graph.num_vertices, 5):
            if t == s:
                continue
            for mask in (3, 7):
                assert powcov.query(s, t, mask) == exact_directed(graph, s, t, mask)

    def test_asymmetry_respected(self, setup):
        """d(s,t) and d(t,s) differ on directed graphs; so must estimates."""
        graph, _, powcov, _ = setup
        asymmetric = 0
        for s in range(0, 30, 2):
            for t in range(1, 30, 3):
                a = powcov.query(s, t, 7)
                b = powcov.query(t, s, 7)
                if a != b:
                    asymmetric += 1
        assert asymmetric > 0

    def test_size_accounting_includes_reverse(self, setup):
        graph, landmarks, powcov, _ = setup
        forward_only = sum(r.total_entries for r in powcov.per_landmark)
        assert powcov.index_size_entries() > forward_only


class TestDirectedChromLand:
    def test_mono_in_table(self, setup):
        graph, landmarks, _, chroml = setup
        reversed_graph = graph.reversed()
        for i, x in enumerate(landmarks):
            expected = constrained_bfs(reversed_graph, x, 1 << int(chroml.colors[i]))
            assert np.array_equal(chroml.mono_in[i], expected)

    def test_upper_bound_and_no_false_positives(self, setup):
        graph, _, _, chroml = setup
        for s in range(0, graph.num_vertices, 3):
            for t in range(1, graph.num_vertices, 4):
                if s == t:
                    continue
                for mask in range(1, 8):
                    exact = exact_directed(graph, s, t, mask)
                    estimate = chroml.query(s, t, mask)
                    if math.isinf(exact):
                        assert math.isinf(estimate)
                    else:
                        assert estimate >= exact

    def test_directed_chain_composition(self):
        """s -a-> x -a-> y -b-> t answered via two landmarks, directed."""
        g = EdgeLabeledGraph.from_edges(
            4, [(0, 1, 0), (1, 2, 0), (2, 3, 1)], num_labels=2, directed=True
        )
        index = ChromLandIndex(g, [1, 2], [0, 1]).build()
        assert index.query(0, 3, 0b11) == 3.0
        # The reverse direction has no path at all.
        assert math.isinf(index.query(3, 0, 0b11))

    def test_bidirectional_bfs_agrees(self, setup):
        graph, _, _, _ = setup
        for s in range(0, 30, 7):
            for t in range(1, 30, 6):
                for mask in (1, 5, 7):
                    assert bidirectional_constrained_bfs(graph, s, t, mask) == (
                        exact_directed(graph, s, t, mask)
                    )
