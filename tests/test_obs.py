"""Tests for the observability layer (``repro.obs``): tracing, metrics,
profiling, and the engine aggregate that now lives in the registry."""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

from repro.engine.instrument import (
    Instrumentation,
    global_snapshot,
    merge_global,
    reset_global,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_enabled,
    registry,
    set_metrics,
)
from repro.obs.profiling import profile_phase, set_profiling
from repro.obs.trace import (
    Span,
    attach_spans,
    current_span,
    export_trace,
    get_trace,
    render_trace,
    reset_trace,
    set_tracing,
    span,
    trace_to_jsonl,
    tracing_enabled,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def _clean_observability():
    """Leave the process-wide tracer/metrics/profiling as we found them."""
    set_tracing(False)
    reset_trace()
    yield
    set_tracing(False)
    reset_trace()
    set_metrics(False)
    set_profiling(False)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestSpan:
    def test_count_and_tag(self):
        sp = Span("work")
        sp.count("items", 3)
        sp.count("items")
        sp.tag("k", 8)
        assert sp.counters == {"items": 4}
        assert sp.tags == {"k": "8"}

    def test_dict_round_trip(self):
        root = Span("root", tags={"a": "1"}, wall_seconds=0.5, cpu_seconds=0.25)
        root.count("n", 7)
        root.children.append(Span("child", status="error"))
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt == root

    def test_to_dict_omits_empty_fields(self):
        data = Span("bare").to_dict()
        assert "tags" not in data and "counters" not in data
        assert "children" not in data


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        handle_a = span("a")
        handle_b = span("b", k=3)
        assert handle_a is handle_b  # one shared object: no per-call alloc
        with handle_a as sp:
            sp.count("ignored")
            sp.tag("ignored", 1)
        assert get_trace() == []

    def test_nesting_builds_a_tree(self):
        set_tracing(True)
        with span("outer", phase="build") as outer:
            outer.count("widgets", 2)
            with span("inner"):
                pass
            with span("inner2"):
                pass
        roots = get_trace()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner", "inner2"]
        assert roots[0].wall_seconds >= roots[0].children[0].wall_seconds
        assert roots[0].tags == {"phase": "build"}

    def test_error_status_and_reraise(self):
        set_tracing(True)
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        (root,) = get_trace()
        assert root.status == "error"

    def test_current_span(self):
        set_tracing(True)
        assert current_span().count("noop") is None  # null span outside
        with span("live") as sp:
            assert current_span() is sp

    def test_threads_get_their_own_roots(self):
        set_tracing(True)

        def worker():
            with span("thread-root"):
                pass

        with span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        names = sorted(r.name for r in get_trace())
        assert names == ["main-root", "thread-root"]

    def test_attach_spans_grafts_under_active(self):
        set_tracing(True)
        payload = [Span("shipped", wall_seconds=1.0).to_dict()]
        with span("parent"):
            attach_spans(payload)
        (root,) = get_trace()
        assert [c.name for c in root.children] == ["shipped"]
        # Without an active span the graft lands at the roots.
        attach_spans(payload)
        assert [r.name for r in get_trace()] == ["parent", "shipped"]

    def test_export_and_reset(self):
        set_tracing(True)
        with span("once"):
            pass
        assert [e["name"] for e in export_trace()] == ["once"]
        reset_trace()
        assert export_trace() == []
        assert tracing_enabled()  # reset drops spans, not the flag

    def test_render_trace(self):
        set_tracing(True)
        with span("build", dataset="toy") as sp:
            sp.count("entries", 5)
            with span("wave"):
                pass
        text = render_trace(title="trace (test)")
        assert text.startswith("trace (test)")
        assert "build" in text and "dataset=toy" in text and "entries=5" in text
        assert "\n    wave" in text  # child indented under root
        assert "(no spans recorded)" in render_trace([], title="empty")

    def test_jsonl_parent_links(self, tmp_path):
        set_tracing(True)
        with span("root"):
            with span("child"):
                pass
        records = [json.loads(line) for line in trace_to_jsonl().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert by_name["root"]["parent_id"] is None
        assert by_name["child"]["parent_id"] == by_name["root"]["id"]
        out = tmp_path / "trace.jsonl"
        write_jsonl(str(out))
        assert len(out.read_text().strip().splitlines()) == 2


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7)
        assert reg.counter("c").value == 3.5
        assert reg.gauge("g").value == 7.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_histogram_validates_construction(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", lo=1.0, hi=0.5)

    def test_histogram_quantiles_are_accurate(self):
        hist = Histogram("lat")
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-7.0, sigma=1.0, size=5000)
        for value in samples:
            hist.observe(float(value))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            estimate = hist.quantile(q)
            # log-bucket resolution: within one decade/10 of the true value
            assert abs(math.log10(estimate) - math.log10(exact)) < 0.15
        assert hist.count == 5000
        assert hist.quantile(0.0) == pytest.approx(float(samples.min()))
        assert hist.quantile(1.0) == pytest.approx(float(samples.max()))

    def test_histogram_weighted_observe(self):
        hist = Histogram("batch")
        hist.observe(0.001, count=99)
        hist.observe(10.0)
        assert hist.count == 100
        assert hist.total == pytest.approx(0.099 + 10.0)
        assert hist.p50 == pytest.approx(0.001, rel=0.3)
        assert hist.p99 <= 10.0
        hist.observe(1.0, count=0)  # non-positive weights are ignored
        assert hist.count == 100

    def test_histogram_empty_and_bounds(self):
        hist = Histogram("empty")
        assert hist.quantile(0.5) == 0.0
        assert hist.snapshot()["count"] == 0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_snapshot_render_reset(self):
        reg = MetricsRegistry()
        reg.counter("engine.queries").inc(10)
        reg.histogram("engine.lat").observe(0.01)
        reg.gauge("build.k").set(8)
        snap = reg.snapshot()
        assert snap["engine.queries"] == 10
        assert snap["engine.lat"]["count"] == 1
        text = reg.render()
        assert "engine.queries" in text and "p95=" in text
        assert json.loads(reg.to_json())["build.k"] == 8.0
        reg.reset(prefix="engine.")
        assert reg.names() == ["build.k"]
        reg.reset()
        assert reg.names() == []
        assert "(no metrics recorded)" in reg.render()

    def test_metrics_flag(self):
        assert not metrics_enabled()
        set_metrics(True)
        assert metrics_enabled()
        set_metrics(False)
        assert not metrics_enabled()

    def test_process_registry_is_shared(self):
        assert registry() is registry()
        assert isinstance(registry().counter("test_obs.shared"), Counter)
        assert isinstance(registry().gauge("test_obs.gauge"), Gauge)
        registry().reset(prefix="test_obs.")


# ----------------------------------------------------------------------
# Engine aggregate backed by the registry
# ----------------------------------------------------------------------
class TestEngineAggregate:
    def test_merge_snapshot_round_trip(self):
        reset_global()
        instr = Instrumentation()
        instr.count("queries", 5)
        instr.count("cache_hits", 2)
        instr.add_seconds("total_seconds", 0.5)
        merge_global(instr)
        merge_global(instr)
        snap = global_snapshot()
        assert snap.counters["queries"] == 10
        assert snap.counters["cache_hits"] == 4
        assert snap.seconds["total_seconds"] == pytest.approx(1.0)
        # The aggregate is visible in the shared registry under engine.*.
        assert registry().counter("engine.queries").value == 10
        reset_global()
        fresh = global_snapshot()
        assert fresh.counters == {} and fresh.seconds == {}

    def test_snapshot_skips_structured_engine_metrics(self):
        reset_global()
        registry().histogram("engine.query_seconds.powcov").observe(0.001)
        snap = global_snapshot()
        assert "query_seconds.powcov" not in snap.counters
        assert "query_seconds.powcov" not in snap.seconds
        reset_global()


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
class TestProfiling:
    def test_disabled_is_noop(self, tmp_path):
        set_profiling(False, directory=str(tmp_path))
        with profile_phase("nothing"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_enabled_writes_artifacts(self, tmp_path):
        set_profiling(True, directory=str(tmp_path))
        with profile_phase("unit test/phase"):
            sum(range(1000))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "profile-unit_test_phase.pstats",
            "profile-unit_test_phase.txt",
        ]
        text = (tmp_path / "profile-unit_test_phase.txt").read_text()
        assert "tracemalloc:" in text and "cumulative" in text

    def test_phases_do_not_nest(self, tmp_path):
        set_profiling(True, directory=str(tmp_path))
        with profile_phase("outer"):
            with profile_phase("inner"):
                pass
        names = {p.name for p in tmp_path.iterdir()}
        assert "profile-outer.pstats" in names
        assert not any("inner" in name for name in names)

    def test_env_var_enables(self, tmp_path, monkeypatch):
        set_profiling(False, directory=str(tmp_path))
        monkeypatch.setenv("REPRO_PROFILE", "1")
        with profile_phase("via-env"):
            pass
        assert (tmp_path / "profile-via-env.pstats").exists()
