"""Tests for workload generation (the Section 5 query recipe)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.labelsets import popcount
from repro.workloads import generate_workload, random_label_set

from conftest import exact_constrained_distance


@pytest.fixture(scope="module")
def workload():
    graph = labeled_erdos_renyi(60, 200, num_labels=4, seed=1)
    return graph, generate_workload(graph, num_pairs=40, seed=3)


class TestRandomLabelSet:
    def test_exact_size(self):
        rng = np.random.default_rng(0)
        for size in range(1, 6):
            mask = random_label_set(rng, 5, size)
            assert popcount(mask) == size

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_label_set(rng, 3, 0)
        with pytest.raises(ValueError):
            random_label_set(rng, 3, 4)


class TestGenerateWorkload:
    def test_all_queries_finite(self, workload):
        graph, wl = workload
        for q in wl:
            assert not math.isinf(q.exact)
            assert q.source != q.target

    def test_exact_values_correct(self, workload):
        graph, wl = workload
        for q in wl.queries[:40]:
            assert q.exact == exact_constrained_distance(
                graph, q.source, q.target, q.label_mask
            )

    def test_sizes_one_to_L_sampled(self, workload):
        graph, wl = workload
        sizes = {popcount(q.label_mask) for q in wl}
        # the full-label-set queries always survive the finite filter
        assert graph.num_labels in sizes
        assert 1 in sizes or 2 in sizes  # small sets often infinite, not always

    def test_at_most_L_queries_per_pair(self, workload):
        graph, wl = workload
        from collections import Counter
        per_pair = Counter((q.source, q.target) for q in wl)
        assert max(per_pair.values()) <= graph.num_labels

    def test_deterministic(self):
        g = labeled_erdos_renyi(40, 120, num_labels=3, seed=5)
        a = generate_workload(g, num_pairs=15, seed=9)
        b = generate_workload(g, num_pairs=15, seed=9)
        assert [(q.source, q.target, q.label_mask) for q in a] == [
            (q.source, q.target, q.label_mask) for q in b
        ]

    def test_keep_infinite(self):
        g = labeled_erdos_renyi(40, 100, num_labels=4, seed=2)
        wl = generate_workload(g, num_pairs=20, seed=1, keep_infinite=True)
        assert len(wl) == 20 * g.num_labels  # nothing filtered
        assert any(math.isinf(q.exact) for q in wl)

    def test_average_distance(self, workload):
        _, wl = workload
        avg = wl.average_distance()
        assert 0 < avg < 60

    def test_validation(self):
        g = labeled_erdos_renyi(20, 40, num_labels=2, seed=0)
        with pytest.raises(ValueError):
            generate_workload(g, num_pairs=0)

    def test_disconnected_graph_raises(self):
        g = EdgeLabeledGraph.from_edges(100, [(0, 1, 0)], num_labels=1)
        with pytest.raises(RuntimeError, match="connected pairs"):
            generate_workload(g, num_pairs=50, seed=0)
