"""Shared fixtures for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.graph.datasets import (
    figure1_graph,
    figure2_graph,
    figure5_graph,
    toy_two_triangles,
)
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labeled_graph import EdgeLabeledGraph
from repro.graph.traversal import UNREACHABLE, constrained_bfs

INF = math.inf


@pytest.fixture
def path_graph() -> EdgeLabeledGraph:
    """0 -r- 1 -g- 2 -r- 3 (labels r=0, g=1)."""
    return EdgeLabeledGraph.from_edges(
        4, [(0, 1, 0), (1, 2, 1), (2, 3, 0)], num_labels=2
    )


@pytest.fixture
def two_triangles() -> EdgeLabeledGraph:
    return toy_two_triangles()


@pytest.fixture
def figure1():
    return figure1_graph()


@pytest.fixture
def figure2():
    return figure2_graph()


@pytest.fixture
def figure5():
    return figure5_graph()


@pytest.fixture
def random_graph() -> EdgeLabeledGraph:
    """A reproducible 60-vertex random graph with 4 labels."""
    return labeled_erdos_renyi(60, 150, num_labels=4, seed=42)


@pytest.fixture
def small_graphs() -> list[EdgeLabeledGraph]:
    """A pool of tiny random graphs for exhaustive cross-checks."""
    return [
        labeled_erdos_renyi(25, 50, num_labels=3, seed=s) for s in range(5)
    ]


def exact_constrained_distance(
    graph: EdgeLabeledGraph, source: int, target: int, mask: int
) -> float:
    """Reference oracle: full constrained BFS (slow, trivially correct)."""
    dist = constrained_bfs(graph, source, mask)
    value = int(dist[target])
    return float(value) if value != UNREACHABLE else INF


def all_pairs_all_masks(graph: EdgeLabeledGraph):
    """Yield (s, t, mask, exact) over every vertex pair and label set."""
    num_masks = (1 << graph.num_labels) - 1
    for mask in range(1, num_masks + 1):
        dists = {
            s: constrained_bfs(graph, s, mask) for s in range(graph.num_vertices)
        }
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                value = int(dists[s][t])
                yield s, t, mask, (float(value) if value != UNREACHABLE else INF)


def make_line(labels: list[int], num_labels: int | None = None) -> EdgeLabeledGraph:
    """Path graph whose i-th edge has ``labels[i]``."""
    edges = [(i, i + 1, label) for i, label in enumerate(labels)]
    return EdgeLabeledGraph.from_edges(
        len(labels) + 1, edges, num_labels=num_labels
    )
