"""Exact query baselines: bidirectional BFS and label-restricted CH."""

from __future__ import annotations

from .bidirectional import BidirectionalBFSBaseline, UnidirectionalBFSBaseline
from .rice_tsotras import LabelConstrainedCH

__all__ = [
    "BidirectionalBFSBaseline",
    "UnidirectionalBFSBaseline",
    "LabelConstrainedCH",
]
