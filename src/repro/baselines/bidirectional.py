"""Bidirectional BFS baseline (the paper's strongest exact competitor).

Section 5.2 measures index speed-ups against the faster of two exact
methods; on all the paper's datasets that is the label-constrained
bidirectional BFS (footnote 3).  The traversal lives in
:mod:`repro.graph.traversal`; this module packages it as a
:class:`DistanceOracle` so the evaluation harness can treat baselines and
indexes uniformly, and adds the unidirectional variant for comparison.
"""

from __future__ import annotations

from ..graph.traversal import UNREACHABLE, bidirectional_constrained_bfs, constrained_bfs
from ..core.types import DistanceOracle

__all__ = ["BidirectionalBFSBaseline", "UnidirectionalBFSBaseline"]


class BidirectionalBFSBaseline(DistanceOracle):
    """Exact label-constrained bidirectional BFS; no preprocessing."""

    name = "bidirectional-bfs"

    def query(self, source: int, target: int, label_mask: int) -> float:
        return bidirectional_constrained_bfs(self.graph, source, target, label_mask)

    def make_batch_executor(self):
        """Trivial engine adapter: a traversal has no per-mask plan to
        amortize, so batches run through the scalar loop."""
        from ..engine.executors import ScalarLoopExecutor

        return ScalarLoopExecutor(self)


class UnidirectionalBFSBaseline(DistanceOracle):
    """Exact single-direction BFS (runs the full SSSP; used in ablations)."""

    name = "unidirectional-bfs"

    def query(self, source: int, target: int, label_mask: int) -> float:
        if source == target:
            return 0.0
        dist = constrained_bfs(self.graph, source, label_mask)
        value = int(dist[target])
        return float(value) if value != UNREACHABLE else float("inf")

    def make_batch_executor(self):
        """Trivial engine adapter (see :class:`BidirectionalBFSBaseline`)."""
        from ..engine.executors import ScalarLoopExecutor

        return ScalarLoopExecutor(self)
