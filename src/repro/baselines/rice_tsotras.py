"""Label-restricted contraction hierarchies, after Rice & Tsotras (PVLDB'10).

The only prior work on label-constrained shortest paths the paper compares
against adapts *contraction hierarchies* (Geisberger et al.) to label
restrictions: shortcuts record the **set of labels** of the path they
replace, and queries only relax edges/shortcuts whose label set is inside
the query constraint ``C``.

This is a from-scratch reimplementation of that idea, faithful in spirit:

* vertices are contracted in an edge-difference order; contracting ``v``
  adds, for each pair of remaining neighbors ``(u, w)``, a shortcut with
  weight ``w(u,v) + w(v,w)`` and label mask ``M(u,v) | M(v,w)``;
* parallel connections between a vertex pair are kept as a **Pareto set**
  over ``(weight, label mask)``: an entry is dropped when another has both
  smaller-or-equal weight and a subset label mask (it would be usable
  whenever the dropped one is, and never longer);
* contraction stops when the next vertex's remaining degree exceeds
  ``degree_limit`` — the uncontracted remainder forms a *core* whose
  internal edges stay bidirectional (the standard partial-CH escape hatch
  for graphs whose shortcut count explodes);
* queries run a bidirectional label-filtered Dijkstra over upward edges
  (plus the core) with the usual stop-when-min-key-≥-best criterion.

Queries are **exact** for every constraint ``C`` (property-tested against
plain Dijkstra).  On road-like grids the hierarchy is shallow and queries
are very fast; on power-law graphs the core is large and the method loses
to bidirectional BFS — precisely the comparison reported in the paper's
Section 5.2 ("bidirectional Dijkstra is often more efficient than the
method by Rice and Tsotras" on non-road graphs).
"""

from __future__ import annotations

import heapq

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import label_bit
from ..core.types import DistanceOracle

__all__ = ["LabelConstrainedCH"]


def _pareto_insert(entries: list[tuple[int, int]], weight: int, mask: int) -> bool:
    """Insert ``(weight, mask)`` into a Pareto list; True if kept.

    Domination: ``(w1, m1)`` dominates ``(w2, m2)`` iff ``w1 <= w2`` and
    ``m1 ⊆ m2`` — the dominating connection is usable under every
    constraint the dominated one is, at no extra length.
    """
    for w_other, m_other in entries:
        if w_other <= weight and (m_other & mask) == m_other:
            return False
    entries[:] = [
        (w_other, m_other)
        for w_other, m_other in entries
        if not (weight <= w_other and (mask & m_other) == mask)
    ]
    entries.append((weight, mask))
    return True


class LabelConstrainedCH(DistanceOracle):
    """Partial contraction hierarchy with label-set-annotated shortcuts.

    Parameters
    ----------
    degree_limit:
        Contraction stops at the first vertex whose remaining degree
        exceeds this; the rest become the core.  Low values keep
        preprocessing fast on dense graphs at the price of a bigger core.
    """

    name = "rice-tsotras-ch"

    def __init__(self, graph: EdgeLabeledGraph, degree_limit: int = 24):
        super().__init__(graph)
        if graph.directed:
            raise ValueError("this CH implementation supports undirected graphs")
        if degree_limit < 1:
            raise ValueError("degree_limit must be positive")
        self.degree_limit = degree_limit
        #: contraction rank; core vertices share the maximal rank.
        self.rank: list[int] = []
        #: upward adjacency: vertex -> list of (neighbor, weight, mask).
        self.upward: list[list[tuple[int, int, int]]] = []
        self.core_size = 0
        self.num_shortcuts = 0
        self._built = False

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def build(self) -> "LabelConstrainedCH":
        n = self.graph.num_vertices
        # Working adjacency: adj[u][v] -> Pareto list of (weight, mask).
        adj: list[dict[int, list[tuple[int, int]]]] = [dict() for _ in range(n)]
        for u, v, label in self.graph.iter_edges():
            mask = label_bit(label)
            _pareto_insert(adj[u].setdefault(v, []), 1, mask)
            _pareto_insert(adj[v].setdefault(u, []), 1, mask)

        def priority(v: int) -> int:
            degree = len(adj[v])
            return degree * (degree - 1) // 2 - degree

        heap = [(priority(v), v) for v in range(n)]
        heapq.heapify(heap)
        self.rank = [n] * n  # default: core rank
        self.upward = [[] for _ in range(n)]
        contracted = [False] * n
        next_rank = 0

        while heap:
            prio, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            current = priority(v)
            if current > prio:
                heapq.heappush(heap, (current, v))  # lazy re-evaluation
                continue
            if len(adj[v]) > self.degree_limit:
                break  # remaining vertices form the core
            # Freeze v's current connections as its upward edges.
            self.rank[v] = next_rank
            next_rank += 1
            contracted[v] = True
            neighbors = list(adj[v].items())
            for u, entries in neighbors:
                self.upward[v].extend((u, w, m) for w, m in entries)
                del adj[u][v]
            # Shortcuts between every remaining neighbor pair.
            for i in range(len(neighbors)):
                u, entries_u = neighbors[i]
                for j in range(i + 1, len(neighbors)):
                    w_vertex, entries_w = neighbors[j]
                    for weight_u, mask_u in entries_u:
                        for weight_w, mask_w in entries_w:
                            weight = weight_u + weight_w
                            mask = mask_u | mask_w
                            kept_uw = _pareto_insert(
                                adj[u].setdefault(w_vertex, []), weight, mask
                            )
                            kept_wu = _pareto_insert(
                                adj[w_vertex].setdefault(u, []), weight, mask
                            )
                            if kept_uw or kept_wu:
                                self.num_shortcuts += 1
                    if not adj[u].get(w_vertex):
                        adj[u].pop(w_vertex, None)
                    if not adj[w_vertex].get(u):
                        adj[w_vertex].pop(u, None)
            adj[v].clear()

        # Core: all uncontracted vertices keep their remaining connections
        # (bidirectional — both endpoints list each other).
        for v in range(n):
            if not contracted[v]:
                self.core_size += 1
                for u, entries in adj[v].items():
                    self.upward[v].extend((u, w, m) for w, m in entries)
        self._built = True
        return self

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, label_mask: int) -> float:
        if not self._built:
            raise RuntimeError("call build() before querying")
        if source == target:
            return 0.0
        infinity = float("inf")
        best = infinity
        dist: list[dict[int, float]] = [{source: 0.0}, {target: 0.0}]
        heaps: list[list[tuple[float, int]]] = [[(0.0, source)], [(0.0, target)]]
        settled: list[set[int]] = [set(), set()]

        while heaps[0] or heaps[1]:
            # Alternate over the side with the smaller current key.
            side = 0
            if not heaps[0] or (heaps[1] and heaps[1][0][0] < heaps[0][0][0]):
                side = 1
            d, u = heapq.heappop(heaps[side])
            if u in settled[side] or d > dist[side].get(u, infinity):
                continue
            if d >= best:
                heaps[side] = []  # this side can no longer improve
                continue
            settled[side].add(u)
            other = dist[1 - side].get(u)
            if other is not None and d + other < best:
                best = d + other
            for v, weight, mask in self.upward[u]:
                if mask & label_mask != mask:
                    continue
                nd = d + weight
                if nd < dist[side].get(v, infinity) and nd < best:
                    dist[side][v] = nd
                    heapq.heappush(heaps[side], (nd, v))
        return best

    def make_batch_executor(self):
        """Trivial engine adapter: bidirectional Dijkstra state is per-query,
        so batches run through the scalar loop."""
        from ..engine.executors import ScalarLoopExecutor

        return ScalarLoopExecutor(self)

    def describe(self) -> str:
        return (
            f"{self.name}(core={self.core_size}, shortcuts={self.num_shortcuts}) "
            f"on {self.graph!r}"
        )
