"""Zero-copy PowCov serving directly off the flat sorted store arrays.

``load_powcov`` (the ``.npz`` path) regroups the persisted parallel arrays
into per-landmark Python dicts before the first query can run — the cost
that dominates cold start.  :class:`MappedPowCovIndex` skips that step
entirely: the store file keeps the entries sorted by the combined key
``landmark_index * n + vertex`` (distance-ascending within a key, ties by
mask, exactly the flat layout's scan order), so

* a scalar :meth:`~MappedPowCovIndex.landmark_distance` is two
  ``np.searchsorted`` probes plus a first-subset scan of one short slice,
* the batch executor resolves whole endpoint sets with one vectorized
  slice-expansion per mask group,

and neither ever materializes per-pair Python objects.  When the arrays
are ``np.memmap`` sections, only the pages a query actually touches are
faulted in, and N worker processes mapping the same file share one
physical copy through the page cache.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.powcov import PowCovIndex
from ..core.types import INF
from ..engine.executors import OracleExecutor, PowCovExecutor
from ..graph.labeled_graph import EdgeLabeledGraph

__all__ = ["MappedTable", "MappedPowCovIndex", "MappedPowCovExecutor"]


class MappedTable:
    """One direction's entries as flat sorted parallel arrays.

    ``key`` is ``landmark_index * num_vertices + vertex`` (int64, sorted
    ascending); ``dist`` and ``mask`` are parallel.  Within one key the
    entries are sorted by ``(distance, mask)``, matching the flat
    storage's per-pair list order, so "first subset hit" is the Theorem 1
    minimum in both layouts.
    """

    __slots__ = ("key", "dist", "mask", "num_landmarks", "num_vertices")

    def __init__(
        self,
        key: np.ndarray,
        dist: np.ndarray,
        mask: np.ndarray,
        num_landmarks: int,
        num_vertices: int,
    ) -> None:
        if not (len(key) == len(dist) == len(mask)):
            raise ValueError("key/dist/mask must be parallel arrays")
        self.key = key
        self.dist = dist
        self.mask = mask
        self.num_landmarks = num_landmarks
        self.num_vertices = num_vertices

    def __len__(self) -> int:
        return len(self.key)

    def lookup_one(self, landmark_index: int, vertex: int, label_mask: int) -> float:
        """Exact ``d_C(x, u)``: searchsorted slice + first-subset scan."""
        # Deliberate domain mix: the probe key *packs* (landmark, vertex)
        # into one int64, mirroring how the table's key column was built.
        key = landmark_index * self.num_vertices + vertex  # noqa: REPRO010
        lo = int(np.searchsorted(self.key, key, side="left"))
        hi = int(np.searchsorted(self.key, key, side="right"))
        masks = self.mask[lo:hi]
        for offset in range(hi - lo):
            mask = int(masks[offset])
            if mask & label_mask == mask:
                return float(self.dist[lo + offset])
        return INF

    def lookup_many(self, vertices: np.ndarray, label_mask: int) -> np.ndarray:
        """``d_C(x, u)`` for every landmark × every vertex in one sweep.

        Returns ``(len(vertices), k)`` float64 with ``inf`` where no stored
        label set is a subset of ``label_mask`` — the vectorized
        counterpart of :meth:`lookup_one`, same first-hit semantics via
        ``np.unique``'s first-occurrence indexing.
        """
        k = self.num_landmarks
        out = np.full((len(vertices), k), INF, dtype=np.float64)
        if len(vertices) == 0 or len(self.key) == 0:
            return out
        keys = (
            np.asarray(vertices, dtype=np.int64)[:, None]
            + np.arange(k, dtype=np.int64)[None, :] * self.num_vertices
        ).ravel()
        lo = np.searchsorted(self.key, keys, side="left")
        hi = np.searchsorted(self.key, keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return out
        # Flat entry indices of every key's slice, concatenated.
        starts = np.repeat(lo, counts)
        within = np.arange(total, dtype=np.int64)
        within -= np.repeat(np.cumsum(counts) - counts, counts)
        idx = starts + within
        grid = np.repeat(np.arange(len(keys), dtype=np.int64), counts)
        masks = np.asarray(self.mask)[idx]
        ok = (masks & label_mask) == masks
        if not ok.any():
            return out
        grid = grid[ok]
        dists = np.asarray(self.dist)[idx][ok]
        first_grid, first_pos = np.unique(grid, return_index=True)
        out[first_grid // k, first_grid % k] = dists[first_pos]
        return out

    def pair_counts(self) -> np.ndarray:
        """Entries per distinct ``(landmark, vertex)`` pair (run lengths)."""
        if len(self.key) == 0:
            return np.empty(0, dtype=np.int64)
        boundaries = np.nonzero(np.diff(np.asarray(self.key)))[0]
        edges = np.empty(len(boundaries) + 2, dtype=np.int64)
        edges[0] = 0
        edges[1:-1] = boundaries + 1
        edges[-1] = len(self.key)
        return np.diff(edges)


class MappedPowCovIndex(PowCovIndex):
    """A PowCov index served straight from flat sorted (mapped) arrays.

    Query answers are bit-identical to the flat in-memory layout (asserted
    by the persistence round-trip tests); only the physical lookup differs.
    Mapped indexes are read-only serving objects: ``per_landmark`` is never
    materialized, so they cannot be re-saved or used as build output.
    """

    #: Marks serving-only indexes; ``save_powcov``/``save_index`` reject them.
    is_mapped = True

    def __init__(
        self,
        graph: EdgeLabeledGraph,
        landmarks: Sequence[int],
        forward: MappedTable,
        reverse: MappedTable | None = None,
        estimator: str = "upper",
        stored_fingerprint: int | None = None,
    ) -> None:
        super().__init__(
            graph, landmarks, builder="traverse", storage="flat",
            estimator=estimator,
        )
        if graph.directed and reverse is None:
            raise ValueError("directed mapped PowCov needs the reverse table")
        self.storage = "mapped"
        self._forward = forward
        self._reverse = reverse if graph.directed else None
        #: fingerprint recorded in the store file (session open re-checks it).
        self.stored_fingerprint = stored_fingerprint
        self._built = True

    # ------------------------------------------------------------------
    # Lookup: searchsorted slicing instead of dict regrouping
    # ------------------------------------------------------------------
    def landmark_distance(
        self,
        landmark_index: int,
        vertex: int,
        label_mask: int,
        direction: str = "from-landmark",
    ) -> float:
        self._require_built()
        if vertex == self.landmarks[landmark_index]:
            return 0.0
        if direction == "to-landmark" and self.graph.directed:
            assert self._reverse is not None
            return self._reverse.lookup_one(landmark_index, vertex, label_mask)
        return self._forward.lookup_one(landmark_index, vertex, label_mask)

    def make_batch_executor(self) -> "MappedPowCovExecutor":
        return MappedPowCovExecutor(self)

    # ------------------------------------------------------------------
    # Size accounting, from the arrays (Table 2)
    # ------------------------------------------------------------------
    def index_size_entries(self) -> int:
        total = len(self._forward)
        if self._reverse is not None:
            total += len(self._reverse)
        return total

    def reachable_pairs(self) -> int:
        pairs = len(self._forward.pair_counts())
        if self._reverse is not None:
            pairs += len(self._reverse.pair_counts())
        return pairs

    def max_entries_per_pair(self) -> int:
        counts = self._forward.pair_counts()
        return int(counts.max()) if len(counts) else 0


class MappedPowCovExecutor(PowCovExecutor):
    """The PowCov batch executor over mapped tables.

    Reuses the parent's mask plans, row caches and triangle-bound group
    execution wholesale; only the table views differ — searchsorted key
    slicing instead of the per-vertex CSR the in-memory executor packs.
    """

    def __init__(self, oracle: MappedPowCovIndex) -> None:
        # Bypass PowCovExecutor.__init__: there are no flat dicts to pack.
        OracleExecutor.__init__(self, oracle)
        oracle._require_built()  # noqa: SLF001 - engine-facing friend class
        self._forward = oracle._forward  # noqa: SLF001
        self._reverse = oracle._reverse  # noqa: SLF001
        self._landmark_index_of = dict(oracle._landmark_index_of)  # noqa: SLF001
