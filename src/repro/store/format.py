"""The versioned, mmap-able binary container every store file uses.

A store file is a **header followed by 64-byte-aligned little-endian
sections**.  The fixed prefix is::

    bytes 0..7    magic  b"REPROIDX"
    bytes 8..9    format version, uint16 little-endian
    bytes 10..11  reserved (zero)
    bytes 12..15  header-table length in bytes, uint32 little-endian
    bytes 16..    header table: UTF-8 JSON (kind, metadata, section table)

Section payloads start at ``align64(16 + header_len)`` and each section is
padded to a 64-byte boundary, so every raw numpy section can be handed to
``np.memmap`` directly — opening a store touches the header pages only,
and array pages fault in lazily on first access.  The section table
records, per section: dtype (numpy string, always little-endian), shape,
offset/length relative to the payload start, an optional compression codec
(:mod:`repro.store.compress`), and the decoded byte count.

Raw sections are zero-copy: :meth:`Store.array` returns an ``np.memmap``
view, so N processes opening the same file share one physical copy through
the page cache.  Compressed sections trade that laziness for size — they
are decoded eagerly on first access (and the decoded array is cached on
the reader).

:class:`FormatError` is the single failure type for anything wrong with a
persisted payload — bad magic, unknown version, truncated data — shared
with the ``.npz`` fallback in :mod:`repro.core.serialize`.  It subclasses
``ValueError`` so pre-existing callers that caught ``ValueError`` keep
working.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "FormatError",
    "MAGIC",
    "FORMAT_VERSION",
    "ALIGNMENT",
    "Section",
    "Store",
    "write_store",
    "is_store_file",
]

#: File magic; also what :func:`repro.core.serialize.load_index` sniffs.
MAGIC = b"REPROIDX"
#: Current (and only) store format version.
FORMAT_VERSION = 1
#: Section payload alignment in bytes.
ALIGNMENT = 64

_PREFIX = struct.Struct("<8sHHI")


class FormatError(ValueError):
    """A persisted index/graph payload is malformed or unsupported."""


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _little_endian_dtype(dtype: np.dtype) -> str:
    """Numpy dtype string pinned to little-endian (or endian-free)."""
    if dtype.byteorder == ">":
        raise FormatError("store sections must be little-endian")
    return dtype.newbyteorder("<").str if dtype.byteorder == "=" else dtype.str


@dataclass(frozen=True)
class Section:
    """One entry of the header's section table."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    #: byte offset relative to the payload start (64-byte aligned).
    offset: int
    #: stored byte count (compressed size when ``codec`` is set).
    nbytes: int
    #: ``None`` (raw, mmap-able) or a :mod:`repro.store.compress` codec.
    codec: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
            "codec": self.codec,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Section":
        try:
            return cls(
                name=str(payload["name"]),
                dtype=str(payload["dtype"]),
                shape=tuple(int(d) for d in payload["shape"]),
                offset=int(payload["offset"]),
                nbytes=int(payload["nbytes"]),
                codec=payload.get("codec"),
            )
        except KeyError as exc:  # pragma: no cover - header built by us
            raise FormatError(f"section table entry missing {exc}") from exc


def write_store(
    path: str | os.PathLike[str],
    kind: str,
    meta: dict[str, Any],
    sections: list[tuple[str, np.ndarray, str | None]],
) -> None:
    """Write a store file: ``sections`` is ``(name, array, codec)`` triples.

    Raw sections (``codec=None``) are written as contiguous little-endian
    bytes at 64-byte-aligned offsets; compressed sections are encoded
    through :func:`repro.store.compress.encode_array`.  ``meta`` must be
    JSON-serializable and is returned verbatim by :attr:`Store.meta`.
    """
    from .compress import encode_array  # local: compress imports FormatError

    table: list[Section] = []
    payloads: list[bytes | np.ndarray] = []
    offset = 0
    for name, array, codec in sections:
        array = np.ascontiguousarray(array)
        dtype = _little_endian_dtype(array.dtype)
        if codec is None:
            payload: bytes | np.ndarray = array.astype(dtype, copy=False)
            nbytes = array.nbytes
        else:
            payload = encode_array(array, codec)
            nbytes = len(payload)
        table.append(
            Section(
                name=name, dtype=dtype, shape=tuple(array.shape),
                offset=offset, nbytes=nbytes, codec=codec,
            )
        )
        payloads.append(payload)
        offset = _align(offset + nbytes)

    header = json.dumps(
        {"kind": kind, "meta": meta, "sections": [s.to_json() for s in table]},
        separators=(",", ":"),
    ).encode("utf-8")
    data_start = _align(_PREFIX.size + len(header))
    with open(path, "wb") as handle:
        handle.write(_PREFIX.pack(MAGIC, FORMAT_VERSION, 0, len(header)))
        handle.write(header)
        handle.write(b"\0" * (data_start - _PREFIX.size - len(header)))
        position = 0
        for section, payload in zip(table, payloads):
            handle.write(b"\0" * (section.offset - position))
            if isinstance(payload, np.ndarray):
                handle.write(memoryview(payload).cast("B"))
            else:
                handle.write(payload)
            position = section.offset + section.nbytes


def is_store_file(path: str | os.PathLike[str]) -> bool:
    """True iff ``path`` starts with the store magic (format autodetect)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class Store:
    """Reader over one store file: header eagerly, sections lazily.

    Opening parses the fixed prefix and the JSON header table; no section
    bytes are read.  :meth:`array` maps raw sections with ``np.memmap``
    (page-fault-lazy, shared across processes through the page cache) and
    decodes compressed ones on first access.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as handle:
            prefix = handle.read(_PREFIX.size)
            if len(prefix) < _PREFIX.size:
                raise FormatError(f"{self.path}: truncated store header")
            magic, version, _reserved, header_len = _PREFIX.unpack(prefix)
            if magic != MAGIC:
                raise FormatError(f"{self.path}: not a repro store file")
            if version != FORMAT_VERSION:
                raise FormatError(
                    f"{self.path}: unsupported store format version {version} "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            header = handle.read(header_len)
            if len(header) < header_len:
                raise FormatError(f"{self.path}: truncated store header table")
        try:
            parsed = json.loads(header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FormatError(f"{self.path}: corrupt store header table") from exc
        self.kind: str = str(parsed.get("kind", ""))
        self.meta: dict[str, Any] = dict(parsed.get("meta", {}))
        self._sections: dict[str, Section] = {
            section.name: section
            for section in (Section.from_json(s) for s in parsed["sections"])
        }
        self._data_start = _align(_PREFIX.size + header_len)
        self._file_size = os.path.getsize(self.path)
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Section access
    # ------------------------------------------------------------------
    def section_names(self) -> list[str]:
        return list(self._sections)

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def section(self, name: str) -> Section:
        try:
            return self._sections[name]
        except KeyError:
            raise FormatError(f"{self.path}: no section {name!r}") from None

    def file_offset(self, name: str) -> int:
        """Absolute byte offset of a section's payload within the file."""
        return self._data_start + self.section(name).offset

    def array(self, name: str) -> np.ndarray:
        """The section as an array: memmap view (raw) or decoded (codec)."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        section = self.section(name)
        start = self.file_offset(name)
        if start + section.nbytes > self._file_size:
            raise FormatError(
                f"{self.path}: section {name!r} extends past end of file"
            )
        dtype = np.dtype(section.dtype)
        if section.codec is None:
            if section.nbytes == 0:
                out: np.ndarray = np.empty(section.shape, dtype=dtype)
            else:
                out = np.memmap(
                    self.path, mode="r", dtype=dtype,
                    shape=section.shape, offset=start,
                )
        else:
            from .compress import decode_array  # local: avoids import cycle

            raw = np.fromfile(
                self.path, dtype=np.uint8, count=section.nbytes, offset=start
            )
            out = decode_array(raw, section.codec, dtype, section.shape)
        self._cache[name] = out
        return out

    def __repr__(self) -> str:
        return (
            f"Store({self.path!r}, kind={self.kind!r}, "
            f"sections={len(self._sections)})"
        )
