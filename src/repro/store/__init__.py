"""``repro.store`` — the mmap-able zero-copy index/graph store.

Layered so that importing the package stays cheap and cycle-free:

* :mod:`repro.store.format` (binary container) and
  :mod:`repro.store.compress` (varint/delta codecs) depend on numpy and
  the stdlib only and load eagerly — ``repro.core.serialize`` imports
  :class:`FormatError` from here at module import time.
* :mod:`repro.store.index_store`, :mod:`repro.store.mapped` and
  :mod:`repro.store.cache` pull in the index and engine packages; they
  load lazily through module ``__getattr__`` on first attribute access.
"""

from __future__ import annotations

from .format import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    FormatError,
    Section,
    Store,
    is_store_file,
    write_store,
)

__all__ = [
    "ALIGNMENT",
    "FORMAT_VERSION",
    "MAGIC",
    "FormatError",
    "Section",
    "Store",
    "is_store_file",
    "write_store",
    # lazy (module __getattr__):
    "save_index",
    "open_index",
    "save_graph",
    "open_graph",
    "STORE_SUFFIX",
    "MappedPowCovIndex",
    "MappedPowCovExecutor",
    "MappedTable",
    "IndexStore",
    "set_default_index_store",
    "get_default_index_store",
]

_LAZY = {
    "save_index": "index_store",
    "open_index": "index_store",
    "save_graph": "index_store",
    "open_graph": "index_store",
    "STORE_SUFFIX": "index_store",
    "MappedPowCovIndex": "mapped",
    "MappedPowCovExecutor": "mapped",
    "MappedTable": "mapped",
    "IndexStore": "cache",
    "set_default_index_store": "cache",
    "get_default_index_store": "cache",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
