"""Reading and writing graphs/indexes in the mmap-able store format.

The writers canonicalize an in-memory object into the section layout of
:mod:`repro.store.format`; the readers hand the mapped sections straight to
the serving structures:

* ``kind="graph"`` — the CSR arrays in their native dtypes (``indptr``
  int64, ``neighbors`` int32, ``edge_labels`` int16), so
  :class:`~repro.graph.labeled_graph.EdgeLabeledGraph` adopts the memmap
  views without copying.
* ``kind="powcov"`` — the PowCov entries as flat parallel arrays globally
  sorted by ``key = landmark_index * n + vertex`` (distance, then mask,
  within a key).  :func:`open_index` wraps them in a
  :class:`~repro.store.mapped.MappedPowCovIndex`; no per-landmark dicts are
  ever rebuilt.
* ``kind="chromland"`` — the ``mono`` / ``bi`` (and directed ``mono_in``)
  matrices verbatim; a regular :class:`ChromLandIndex` serves directly off
  the mapped matrices.

``compress=True`` runs the integer sections through
:mod:`repro.store.compress` (delta-varint for the sorted key/``indptr``
sections, plain varint elsewhere); compressed sections decode eagerly on
open, trading the page-fault laziness for file size — the index-store
benchmark reports the measured trade-off.  Float distance sections
(weighted PowCov) always stay raw.

Every file records the owning graph's fingerprint; the readers verify it
against the supplied graph and the loaded index carries it as
``stored_fingerprint`` for the engine session's open-time re-check.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from ..core.chromland import ChromLandIndex
from ..core.powcov import PowCovIndex
from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import LabelUniverse
from .format import FormatError, Store, write_store
from .mapped import MappedPowCovIndex, MappedTable

__all__ = [
    "STORE_SUFFIX",
    "save_index",
    "open_index",
    "save_graph",
    "open_graph",
]

#: Conventional file suffix for store files (``save_index`` accepts any).
STORE_SUFFIX = ".repro"


def _codec(compress: bool, sorted_values: bool = False) -> str | None:
    if not compress:
        return None
    return "delta-varint" if sorted_values else "varint"


def _require_meta(store: Store, *names: str) -> list[Any]:
    values = []
    for name in names:
        if name not in store.meta:
            raise FormatError(f"{store.path}: header missing {name!r}")
        values.append(store.meta[name])
    return values


def _check_fingerprint(store: Store, graph: EdgeLabeledGraph) -> int:
    from ..core.serialize import graph_fingerprint  # local: avoids cycle

    (stored,) = _require_meta(store, "fingerprint")
    if int(stored) != int(graph_fingerprint(graph)):
        raise FormatError("index file was built for a different graph")
    return int(stored)


# ----------------------------------------------------------------------
# Indexes
# ----------------------------------------------------------------------
def _powcov_sections(
    index: PowCovIndex, compress: bool
) -> list[tuple[str, np.ndarray, str | None]]:
    from ..core.serialize import _entries_to_arrays  # local: avoids cycle

    n = index.graph.num_vertices
    tables = [("fwd", index.per_landmark)]
    if index.graph.directed:
        tables.append(("rev", index.per_landmark_reverse))
    sections: list[tuple[str, np.ndarray, str | None]] = []
    for prefix, per_landmark in tables:
        landmark_idx, vertex, distance, mask = _entries_to_arrays(per_landmark)
        key = landmark_idx.astype(np.int64) * n + vertex
        # Global sort by (key, distance, mask): within one (landmark,
        # vertex) pair this is exactly the flat layout's list order, so the
        # mapped first-subset-hit scan returns the Theorem 1 minimum.
        order = np.lexsort((mask, distance, key))
        key = key[order]
        distance = distance[order]
        mask = mask[order]
        integral = bool(np.all(distance == np.floor(distance)))
        sections.append((f"{prefix}_key", key, _codec(compress, sorted_values=True)))
        if integral:
            sections.append(
                (f"{prefix}_dist", distance.astype(np.int64), _codec(compress))
            )
        else:
            sections.append((f"{prefix}_dist", distance, None))
        sections.append((f"{prefix}_mask", mask, _codec(compress)))
    return sections


def save_index(
    index: PowCovIndex | ChromLandIndex,
    path: str | os.PathLike[str],
    compress: bool = False,
) -> None:
    """Write a built index as a store file (see the module docstring)."""
    from ..core.serialize import graph_fingerprint  # local: avoids cycle

    if getattr(index, "is_mapped", False):
        raise ValueError(
            "mapped indexes are serving-only; save the originally built index"
        )
    fingerprint = int(graph_fingerprint(index.graph))
    if isinstance(index, PowCovIndex):
        if not index._built:  # noqa: SLF001 - store is a friend module
            raise ValueError("build the index before saving it")
        meta = {
            "fingerprint": fingerprint,
            "estimator": index.estimator,
            "directed": index.graph.directed,
            "num_vertices": index.graph.num_vertices,
        }
        sections = [
            ("landmarks", np.asarray(index.landmarks, dtype=np.int64),
             _codec(compress)),
        ]
        sections.extend(_powcov_sections(index, compress))
        write_store(path, "powcov", meta, sections)
        return
    if isinstance(index, ChromLandIndex):
        if index.mono is None:
            raise ValueError("build the index before saving it")
        meta = {
            "fingerprint": fingerprint,
            "query_mode": index.query_mode,
            "directed": index.graph.directed,
        }
        sections = [
            ("landmarks", np.asarray(index.landmarks, dtype=np.int64),
             _codec(compress)),
            ("colors", np.asarray(index.colors, dtype=np.int64),
             _codec(compress)),
            ("mono", index.mono, _codec(compress)),
            ("bi", index.bi, _codec(compress)),
        ]
        if index.mono_in is not None:
            sections.append(("mono_in", index.mono_in, _codec(compress)))
        write_store(path, "chromland", meta, sections)
        return
    raise TypeError(f"cannot save index of type {type(index).__name__}")


def open_index(
    path: str | os.PathLike[str], graph: EdgeLabeledGraph
) -> PowCovIndex | ChromLandIndex:
    """Open a store file for ``graph``: mapped PowCov or ChromLand index.

    Opening reads the header only; index sections fault in lazily as
    queries touch them (compressed sections decode on first access).
    """
    store = Store(path)
    if store.kind == "powcov":
        stored = _check_fingerprint(store, graph)
        landmarks = [int(x) for x in store.array("landmarks")]
        n = graph.num_vertices
        k = len(landmarks)
        forward = MappedTable(
            store.array("fwd_key"), store.array("fwd_dist"),
            store.array("fwd_mask"), k, n,
        )
        reverse = None
        if "rev_key" in store:
            reverse = MappedTable(
                store.array("rev_key"), store.array("rev_dist"),
                store.array("rev_mask"), k, n,
            )
        (estimator,) = _require_meta(store, "estimator")
        index: PowCovIndex | ChromLandIndex = MappedPowCovIndex(
            graph, landmarks, forward, reverse,
            estimator=str(estimator), stored_fingerprint=stored,
        )
        index.source_store = store
        return index
    if store.kind == "chromland":
        stored = _check_fingerprint(store, graph)
        (query_mode,) = _require_meta(store, "query_mode")
        index = ChromLandIndex(
            graph,
            [int(x) for x in store.array("landmarks")],
            [int(c) for c in store.array("colors")],
            query_mode=str(query_mode),
        )
        index.mono = store.array("mono")
        index.bi = store.array("bi")
        if "mono_in" in store:
            index.mono_in = store.array("mono_in")
        index._built = True  # noqa: SLF001 - store is a friend module
        index.stored_fingerprint = stored
        index.source_store = store
        return index
    raise FormatError(
        f"{store.path} does not hold an index (kind={store.kind!r})"
    )


# ----------------------------------------------------------------------
# Graphs
# ----------------------------------------------------------------------
def save_graph(
    graph: EdgeLabeledGraph,
    path: str | os.PathLike[str],
    compress: bool = False,
) -> None:
    """Write a graph's CSR arrays as a ``kind="graph"`` store file."""
    from ..core.serialize import graph_fingerprint  # local: avoids cycle

    label_names = None
    if graph.label_universe is not None:
        label_names = list(graph.label_universe)
    meta = {
        "fingerprint": int(graph_fingerprint(graph)),
        "num_labels": graph.num_labels,
        "directed": graph.directed,
        "num_edges": graph.num_edges,
        "label_names": label_names,
    }
    sections = [
        ("indptr", graph.indptr, _codec(compress, sorted_values=True)),
        ("neighbors", graph.neighbors, _codec(compress)),
        ("edge_labels", graph.edge_labels, _codec(compress)),
    ]
    write_store(path, "graph", meta, sections)


def open_graph(path: str | os.PathLike[str]) -> EdgeLabeledGraph:
    """Open a graph store file as a zero-copy mapped graph.

    The CSR sections are stored in the exact dtypes the constructor keeps
    (int64/int32/int16), so the returned graph's arrays *are* the memmap
    views — N processes opening the same file share one physical copy.
    """
    store = Store(path)
    if store.kind != "graph":
        raise FormatError(f"{store.path} is not a graph store file")
    num_labels, directed, num_edges, fingerprint = _require_meta(
        store, "num_labels", "directed", "num_edges", "fingerprint"
    )
    names = store.meta.get("label_names")
    graph = EdgeLabeledGraph(
        store.array("indptr"),
        store.array("neighbors"),
        store.array("edge_labels"),
        num_labels=int(num_labels),
        directed=bool(directed),
        label_universe=LabelUniverse(names) if names else None,
        num_edges=int(num_edges),
    )
    graph._fingerprint = np.int64(int(fingerprint))  # noqa: SLF001
    return graph
