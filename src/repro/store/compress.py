"""Varint/delta codecs for integer store sections — all numpy-vectorized.

Two codecs, picked per section by :mod:`repro.store.index_store`:

``"varint"``
    ZigZag-map each value to an unsigned integer (so small-magnitude
    negatives stay short), then LEB128-style varint-encode: 7 payload bits
    per byte, high bit = continuation.  Good for distance, mask and
    neighbor arrays whose values are small but unsorted.
``"delta-varint"``
    First-difference the array (keeping the first value), then ZigZag +
    varint.  Sorted or near-sorted arrays — CSR ``indptr``, the packed
    PowCov key array — collapse to one or two bytes per element.

Both directions are loops over *byte positions* (at most 10 iterations),
never over elements, so decoding a million-entry section is a handful of
vectorized passes.  The decoder validates the stream shape and raises
:class:`~repro.store.format.FormatError` on truncation or overlong values,
so a corrupt section cannot silently decode to garbage.
"""

from __future__ import annotations

import numpy as np

from .format import FormatError

__all__ = [
    "CODECS",
    "zigzag_encode",
    "zigzag_decode",
    "varint_encode",
    "varint_decode",
    "encode_array",
    "decode_array",
]

#: Codec names accepted by ``encode_array`` / store section tables.
CODECS = ("varint", "delta-varint")

_SEVEN = np.uint64(7)
_ONE = np.uint64(1)
_LOW7 = np.uint64(0x7F)
#: A uint64 varint spans at most ceil(64 / 7) = 10 bytes.
_MAX_VARINT_BYTES = 10


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map int64 values onto uint64 so small magnitudes encode short."""
    signed = np.ascontiguousarray(values, dtype=np.int64)
    left = signed.astype(np.uint64) << _ONE
    # Arithmetic shift: 0 for non-negative values, all-ones for negatives.
    right = (signed >> 63).astype(np.uint64)
    return left ^ right


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    unsigned = np.ascontiguousarray(values, dtype=np.uint64)
    sign = unsigned & _ONE
    return ((unsigned >> _ONE) ^ (np.uint64(0) - sign)).astype(np.int64)


def varint_encode(values: np.ndarray) -> np.ndarray:
    """LEB128-varint a uint64 array into a flat uint8 stream."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if len(values) == 0:
        return np.empty(0, dtype=np.uint8)
    # Byte count per value: the number of 7-bit groups, at least one.
    nbytes = np.ones(len(values), dtype=np.int64)
    remaining = values >> _SEVEN
    while remaining.any():
        nbytes += remaining != 0
        remaining >>= _SEVEN
    starts = np.cumsum(nbytes) - nbytes
    out = np.zeros(int(nbytes.sum()), dtype=np.uint8)
    for j in range(int(nbytes.max())):
        has_byte = nbytes > j
        group = (values[has_byte] >> np.uint64(7 * j)) & _LOW7
        continues = (nbytes[has_byte] > j + 1).astype(np.uint8)
        out[starts[has_byte] + j] = group.astype(np.uint8) | continues * 0x80
    return out


def varint_decode(buffer: np.ndarray, count: int) -> np.ndarray:
    """Decode a flat uint8 varint stream back into ``count`` uint64 values."""
    buffer = np.ascontiguousarray(buffer, dtype=np.uint8)
    if len(buffer) == 0:
        if count != 0:
            raise FormatError(f"empty varint stream cannot hold {count} values")
        return np.empty(0, dtype=np.uint64)
    is_last = (buffer & 0x80) == 0
    if not is_last[-1]:
        raise FormatError("truncated varint stream")
    ends = np.nonzero(is_last)[0]
    if len(ends) != count:
        raise FormatError(
            f"varint stream holds {len(ends)} values, expected {count}"
        )
    starts = np.empty(len(ends), dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > _MAX_VARINT_BYTES:
        raise FormatError("overlong varint (more than 10 bytes)")
    within = np.arange(len(buffer), dtype=np.uint64)
    within -= np.repeat(starts, lengths).astype(np.uint64)
    contributions = (buffer & 0x7F).astype(np.uint64) << (_SEVEN * within)
    return np.bitwise_or.reduceat(contributions, starts)


def _delta_encode(values: np.ndarray) -> np.ndarray:
    out = np.empty_like(values)
    out[:1] = values[:1]
    np.subtract(values[1:], values[:-1], out=out[1:])
    return out


def encode_array(array: np.ndarray, codec: str) -> bytes:
    """Encode an integer array with ``codec`` (see :data:`CODECS`)."""
    if codec not in CODECS:
        raise FormatError(f"unknown section codec {codec!r}")
    if array.dtype.kind not in "iu":
        raise FormatError(
            f"codec {codec!r} requires an integer array, got {array.dtype}"
        )
    flat = np.ascontiguousarray(array, dtype=np.int64).reshape(-1)
    if codec == "delta-varint":
        flat = _delta_encode(flat)
    return varint_encode(zigzag_encode(flat)).tobytes()


def decode_array(
    buffer: np.ndarray, codec: str, dtype: np.dtype, shape: tuple[int, ...]
) -> np.ndarray:
    """Decode ``buffer`` back into an array of ``dtype`` and ``shape``."""
    if codec not in CODECS:
        raise FormatError(f"unknown section codec {codec!r}")
    count = 1
    for dim in shape:
        count *= dim
    flat = zigzag_decode(varint_decode(buffer, count))
    if codec == "delta-varint":
        np.cumsum(flat, out=flat)
    out = flat.astype(dtype, copy=False).reshape(shape)
    if out.dtype != dtype:  # pragma: no cover - astype always converts
        raise FormatError(f"decoded dtype {out.dtype} != section dtype {dtype}")
    return out
