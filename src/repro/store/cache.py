"""Directory-backed index store: fingerprint-addressed save/load.

An :class:`IndexStore` names files by ``{kind}-{fingerprint:016x}-{tag}``
inside one directory, so a cached index can never be served against the
wrong graph — a different graph hashes to a different filename, and the
loader re-verifies the embedded fingerprint anyway.  ``format`` picks the
on-disk representation: ``"mmap"`` (the zero-copy store format, default)
or ``"npz"`` (the eager fallback in :mod:`repro.core.serialize`).

The process-wide default mirrors the other opt-in defaults
(:func:`repro.core.powcov.set_default_builder`,
:func:`repro.perf.parallel.set_default_parallel`): the eval CLI's
``--save-index`` / ``--load-index`` flags route through
:func:`set_default_index_store`, and the eval runners consult
:func:`get_default_index_store` before rebuilding an index from scratch.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..core.chromland import ChromLandIndex
    from ..core.powcov import PowCovIndex
    from ..graph.labeled_graph import EdgeLabeledGraph

__all__ = [
    "IndexStore",
    "set_default_index_store",
    "get_default_index_store",
]

_FORMATS = ("mmap", "npz")
_SUFFIX_OF = {"mmap": ".repro", "npz": ".npz"}


class IndexStore:
    """One directory of persisted indexes, addressed by graph fingerprint.

    Parameters
    ----------
    directory:
        Where the files live; created on first save.
    format:
        ``"mmap"`` (store format, lazy open) or ``"npz"`` (eager fallback).
    compress:
        Store format only: varint/delta-compress the integer sections.
    writable:
        ``False`` makes :meth:`save` a no-op — the CLI's pure
        ``--load-index`` mode, where a read-only cache directory (e.g. a
        shared artifact volume) must never be written to.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        format: str = "mmap",
        compress: bool = False,
        writable: bool = True,
    ) -> None:
        if format not in _FORMATS:
            raise ValueError(f"format must be one of {_FORMATS}, got {format!r}")
        self.directory = os.fspath(directory)
        self.format = format
        self.compress = compress
        self.writable = writable

    def path_for(
        self, kind: str, graph: "EdgeLabeledGraph", tag: str = "default"
    ) -> str:
        """Canonical path for (kind, graph, tag) in the configured format."""
        from ..core.serialize import graph_fingerprint  # local: avoids cycle

        name = f"{kind}-{int(graph_fingerprint(graph)):016x}-{tag}"
        return os.path.join(self.directory, name + _SUFFIX_OF[self.format])

    def find(
        self, kind: str, graph: "EdgeLabeledGraph", tag: str = "default"
    ) -> str | None:
        """An existing file for (kind, graph, tag), preferring the
        configured format but accepting the other one."""
        from ..core.serialize import graph_fingerprint  # local: avoids cycle

        name = f"{kind}-{int(graph_fingerprint(graph)):016x}-{tag}"
        preferred = _SUFFIX_OF[self.format]
        for suffix in (preferred, *(s for s in _SUFFIX_OF.values() if s != preferred)):
            candidate = os.path.join(self.directory, name + suffix)
            if os.path.isfile(candidate):
                return candidate
        return None

    def load(
        self, kind: str, graph: "EdgeLabeledGraph", tag: str = "default"
    ) -> "PowCovIndex | ChromLandIndex | None":
        """Open the cached index for ``graph``, or ``None`` if absent."""
        path = self.find(kind, graph, tag)
        if path is None:
            return None
        from ..core.serialize import load_index  # local: avoids cycle

        return load_index(path, graph)

    def save(
        self, index: "PowCovIndex | ChromLandIndex", tag: str = "default"
    ) -> str | None:
        """Persist a built index; returns the path (``None`` if read-only)."""
        if not self.writable:
            return None
        from ..core.chromland import ChromLandIndex  # local: avoids cycle
        from ..core.serialize import save_index  # local: avoids cycle

        kind = "chromland" if isinstance(index, ChromLandIndex) else "powcov"
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(kind, index.graph, tag)
        save_index(index, path, format=self.format, compress=self.compress)
        return path

    def __repr__(self) -> str:
        return (
            f"IndexStore({self.directory!r}, format={self.format!r}, "
            f"compress={self.compress}, writable={self.writable})"
        )


#: Process-wide default store consulted by the eval runners (``None`` =
#: always rebuild, the historical behavior).
_default_store: IndexStore | None = None


def set_default_index_store(store: IndexStore | None) -> None:
    """Install (or clear, with ``None``) the process-wide index store."""
    global _default_store
    _default_store = store


def get_default_index_store() -> IndexStore | None:
    """The current process-wide index store, if any."""
    return _default_store
