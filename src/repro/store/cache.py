"""Directory-backed index store: fingerprint-addressed save/load.

An :class:`IndexStore` names files by ``{kind}-{fingerprint:016x}-{tag}``
inside one directory, so a cached index can never be served against the
wrong graph — a different graph hashes to a different filename, and the
loader re-verifies the embedded fingerprint anyway.  ``format`` picks the
on-disk representation: ``"mmap"`` (the zero-copy store format, default)
or ``"npz"`` (the eager fallback in :mod:`repro.core.serialize`).

The process-wide default mirrors the other opt-in defaults
(:func:`repro.core.powcov.set_default_builder`,
:func:`repro.perf.parallel.set_default_parallel`): the eval CLI's
``--save-index`` / ``--load-index`` flags route through
:func:`set_default_index_store`, and the eval runners consult
:func:`get_default_index_store` before rebuilding an index from scratch.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..core.chromland import ChromLandIndex
    from ..core.powcov import PowCovIndex
    from ..graph.labeled_graph import EdgeLabeledGraph

__all__ = [
    "IndexStore",
    "set_default_index_store",
    "get_default_index_store",
]

_FORMATS = ("mmap", "npz")
_SUFFIX_OF = {"mmap": ".repro", "npz": ".npz"}
_LINEAGE_FILE = "lineage.jsonl"


class IndexStore:
    """One directory of persisted indexes, addressed by graph fingerprint.

    Parameters
    ----------
    directory:
        Where the files live; created on first save.
    format:
        ``"mmap"`` (store format, lazy open) or ``"npz"`` (eager fallback).
    compress:
        Store format only: varint/delta-compress the integer sections.
    writable:
        ``False`` makes :meth:`save` a no-op — the CLI's pure
        ``--load-index`` mode, where a read-only cache directory (e.g. a
        shared artifact volume) must never be written to.
    capacity:
        Maximum number of index files retained (``None`` = unbounded, the
        historical behavior).  When a save pushes the directory past the
        cap, the least-recently-*used* files are deleted — :meth:`load`
        hits refresh a file's timestamp, so hot indexes survive.
        Evictions are counted on :attr:`evictions` (and the
        ``store.cache_evictions`` metric when metrics are enabled).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        format: str = "mmap",
        compress: bool = False,
        writable: bool = True,
        capacity: int | None = None,
    ) -> None:
        if format not in _FORMATS:
            raise ValueError(f"format must be one of {_FORMATS}, got {format!r}")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.directory = os.fspath(directory)
        self.format = format
        self.compress = compress
        self.writable = writable
        self.capacity = capacity
        #: index files deleted by the LRU cap over this store's lifetime.
        self.evictions = 0

    def path_for(
        self, kind: str, graph: "EdgeLabeledGraph", tag: str = "default"
    ) -> str:
        """Canonical path for (kind, graph, tag) in the configured format."""
        from ..core.serialize import graph_fingerprint  # local: avoids cycle

        name = f"{kind}-{int(graph_fingerprint(graph)):016x}-{tag}"
        return os.path.join(self.directory, name + _SUFFIX_OF[self.format])

    def find(
        self, kind: str, graph: "EdgeLabeledGraph", tag: str = "default"
    ) -> str | None:
        """An existing file for (kind, graph, tag), preferring the
        configured format but accepting the other one."""
        from ..core.serialize import graph_fingerprint  # local: avoids cycle

        name = f"{kind}-{int(graph_fingerprint(graph)):016x}-{tag}"
        preferred = _SUFFIX_OF[self.format]
        for suffix in (preferred, *(s for s in _SUFFIX_OF.values() if s != preferred)):
            candidate = os.path.join(self.directory, name + suffix)
            if os.path.isfile(candidate):
                return candidate
        return None

    def load(
        self, kind: str, graph: "EdgeLabeledGraph", tag: str = "default"
    ) -> "PowCovIndex | ChromLandIndex | None":
        """Open the cached index for ``graph``, or ``None`` if absent."""
        path = self.find(kind, graph, tag)
        if path is None:
            return None
        from ..core.serialize import load_index  # local: avoids cycle

        index = load_index(path, graph)
        if self.capacity is not None and self.writable:
            try:
                os.utime(path)  # refresh recency so the LRU cap spares it
            except OSError:
                pass
        return index

    def save(
        self, index: "PowCovIndex | ChromLandIndex", tag: str = "default"
    ) -> str | None:
        """Persist a built index; returns the path (``None`` if read-only)."""
        if not self.writable:
            return None
        from ..core.chromland import ChromLandIndex  # local: avoids cycle
        from ..core.serialize import save_index  # local: avoids cycle

        kind = "chromland" if isinstance(index, ChromLandIndex) else "powcov"
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(kind, index.graph, tag)
        save_index(index, path, format=self.format, compress=self.compress)
        self._record_lineage(index.graph)
        self._enforce_capacity(keep=path)
        return path

    # ------------------------------------------------------------------
    # LRU capacity
    # ------------------------------------------------------------------
    def _index_files(self) -> list[str]:
        suffixes = tuple(_SUFFIX_OF.values())
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.directory, name)
            for name in sorted(names)
            if name.endswith(suffixes)
        ]

    def _enforce_capacity(self, keep: str) -> None:
        if self.capacity is None:
            return
        files = self._index_files()
        if len(files) <= self.capacity:
            return
        def mtime(path: str) -> float:
            try:
                return os.path.getmtime(path)
            except OSError:
                return float("inf")  # vanished concurrently; never evict

        # Oldest-access first; the file just written is always spared.
        victims = sorted(
            (f for f in files if f != keep), key=mtime
        )[: len(files) - self.capacity]
        for victim in victims:
            try:
                os.remove(victim)
            except OSError:
                continue
            self.evictions += 1
        if victims:
            from ..obs.metrics import metrics_enabled, registry

            if metrics_enabled():
                registry().counter("store.cache_evictions").inc(len(victims))

    # ------------------------------------------------------------------
    # Fingerprint lineage
    # ------------------------------------------------------------------
    @property
    def lineage_path(self) -> str:
        return os.path.join(self.directory, _LINEAGE_FILE)

    def _record_lineage(self, graph: "EdgeLabeledGraph") -> None:
        """Append this graph version's parent link to the lineage manifest.

        Saved indexes are fingerprint-addressed, so after a mutation the
        old version's files look unrelated to the new version's.  The
        manifest records ``child fingerprint -> parent fingerprint`` (plus
        the delta shape) for every versioned graph saved here, letting
        :meth:`lineage_of` walk a cached index back to its build ancestor.
        """
        parent = getattr(graph, "parent_fingerprint", None)
        delta = getattr(graph, "applied_delta", None)
        if parent is None or delta is None:
            return
        from ..core.serialize import graph_fingerprint  # local: avoids cycle

        entry = {
            "fingerprint": f"{int(graph_fingerprint(graph)):016x}",
            "parent": f"{int(parent):016x}",
            "version": int(getattr(graph, "version", 0)),
            "delta": delta.describe(),
        }
        known = {e["fingerprint"]: e for e in self._read_lineage()}
        if known.get(entry["fingerprint"]) == entry:
            return
        with open(self.lineage_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def _read_lineage(self) -> list[dict[str, Any]]:
        try:
            with open(self.lineage_path, encoding="utf-8") as handle:
                return [json.loads(line) for line in handle if line.strip()]
        except FileNotFoundError:
            return []

    def lineage_of(self, graph: "EdgeLabeledGraph") -> list[dict[str, Any]]:
        """The recorded version chain ending at ``graph``, child-first.

        Each element is a manifest entry (``fingerprint``, ``parent``,
        ``version``, ``delta``); an empty list means the graph was never
        saved here as a mutated version (or is an original build).
        """
        from ..core.serialize import graph_fingerprint  # local: avoids cycle

        by_child = {e["fingerprint"]: e for e in self._read_lineage()}
        chain: list[dict[str, Any]] = []
        cursor = f"{int(graph_fingerprint(graph)):016x}"
        while cursor in by_child and len(chain) < len(by_child):
            entry = by_child[cursor]
            chain.append(entry)
            cursor = entry["parent"]
        return chain

    def __repr__(self) -> str:
        return (
            f"IndexStore({self.directory!r}, format={self.format!r}, "
            f"compress={self.compress}, writable={self.writable}, "
            f"capacity={self.capacity})"
        )


#: Process-wide default store consulted by the eval runners (``None`` =
#: always rebuild, the historical behavior).
_default_store: IndexStore | None = None


def set_default_index_store(store: IndexStore | None) -> None:
    """Install (or clear, with ``None``) the process-wide index store."""
    global _default_store
    _default_store = store


def get_default_index_store() -> IndexStore | None:
    """The current process-wide index store, if any."""
    return _default_store
