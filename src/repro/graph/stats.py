"""Structural statistics for edge-labeled graphs.

These diagnostics explain *why* the indexes behave as they do on a given
graph, mirroring the discussion in the paper's Section 5:

* label frequency skew — skewed labels mean small SP-minimal sets and good
  mono-chromatic connectivity;
* per-label subgraph connectivity — fragmented label subgraphs drive the
  ChromLand / PowCov false-negative rates (the String dataset effect);
* degree distribution — power-law graphs are where the CH baseline loses.

The :func:`graph_profile` aggregate is used by the extended Table 1 and by
the dataset stand-in validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .labeled_graph import EdgeLabeledGraph
from .labelsets import label_bit
from .traversal import connected_components

__all__ = [
    "LabelConnectivity",
    "GraphProfile",
    "label_entropy",
    "per_label_connectivity",
    "degree_statistics",
    "graph_profile",
]


@dataclass(frozen=True)
class LabelConnectivity:
    """Connectivity of a single label's subgraph."""

    label: int
    num_edges: int
    num_components: int
    giant_fraction: float


@dataclass(frozen=True)
class GraphProfile:
    """Aggregate structural profile of an edge-labeled graph."""

    num_vertices: int
    num_edges: int
    num_labels: int
    label_frequencies: tuple[int, ...]
    label_entropy_bits: float
    mean_degree: float
    max_degree: int
    degree_gini: float
    per_label: tuple[LabelConnectivity, ...]

    @property
    def dominant_label_share(self) -> float:
        """Fraction of edges carrying the most frequent label."""
        total = sum(self.label_frequencies)
        return max(self.label_frequencies) / total if total else 0.0

    @property
    def mean_giant_fraction(self) -> float:
        """Mean giant-component share across per-label subgraphs.

        High values mean mono-chromatic paths exist between most vertex
        pairs — the regime where ChromLand is accurate.
        """
        if not self.per_label:
            return 0.0
        return sum(c.giant_fraction for c in self.per_label) / len(self.per_label)


def label_entropy(graph: EdgeLabeledGraph) -> float:
    """Shannon entropy (bits) of the edge-label distribution.

    ``log2(|L|)`` for uniform labels; near 0 when one label dominates.
    """
    counts = graph.label_frequencies().astype(np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


def per_label_connectivity(graph: EdgeLabeledGraph) -> list[LabelConnectivity]:
    """Component structure of each single-label subgraph.

    Vertices not touched by the label are excluded from the component
    count, so ``num_components`` counts only non-trivial components and
    ``giant_fraction`` is relative to the touched vertex set.
    """
    results = []
    for label in range(graph.num_labels):
        sub = graph.subgraph_by_mask(label_bit(label))
        touched = np.zeros(graph.num_vertices, dtype=bool)
        for u, v, _ in sub.iter_edges():
            touched[u] = True
            touched[v] = True
        num_touched = int(touched.sum())
        if num_touched == 0:
            results.append(LabelConnectivity(label, 0, 0, 0.0))
            continue
        comp = connected_components(sub)
        comp_sizes = np.bincount(comp[touched])
        comp_sizes = comp_sizes[comp_sizes > 0]
        results.append(
            LabelConnectivity(
                label=label,
                num_edges=sub.num_edges,
                num_components=int(len(comp_sizes)),
                giant_fraction=float(comp_sizes.max() / num_touched),
            )
        )
    return results


def degree_statistics(graph: EdgeLabeledGraph) -> tuple[float, int, float]:
    """``(mean degree, max degree, Gini coefficient of degrees)``.

    The Gini coefficient separates the paper's graph families: ~0.3 for the
    clustered biological stand-ins, >0.5 for the power-law YouTube one.
    """
    degrees = np.sort(graph.degrees().astype(np.float64))
    n = len(degrees)
    if n == 0 or degrees.sum() == 0:
        return 0.0, 0, 0.0
    cumulative = np.cumsum(degrees)
    gini = float(
        (n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n
    )
    return float(degrees.mean()), int(degrees.max()), gini


def graph_profile(graph: EdgeLabeledGraph) -> GraphProfile:
    """Full structural profile (see :class:`GraphProfile`)."""
    mean_degree, max_degree, gini = degree_statistics(graph)
    return GraphProfile(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_labels=graph.num_labels,
        label_frequencies=tuple(int(c) for c in graph.label_frequencies()),
        label_entropy_bits=label_entropy(graph),
        mean_degree=mean_degree,
        max_degree=max_degree,
        degree_gini=gini,
        per_label=tuple(per_label_connectivity(graph)),
    )
