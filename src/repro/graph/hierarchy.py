"""Label hierarchies: querying through upper-level label categories.

Footnote 2 of the paper: on RDF-style graphs "what really matters are the
few upper-level labels of the hierarchies that are typically exploited to
semantically organize the whole set of low-level labels".  This module
makes that first-class: a :class:`LabelHierarchy` is a forest over label
names whose leaves are the graph's edge labels; querying with an internal
category expands to the bitmask of all leaf labels below it.

Two usage modes:

* **query-time expansion** — keep the graph at leaf granularity and pass
  ``hierarchy.mask(graph, ["interaction"])`` as the constraint (exact,
  zero preprocessing);
* **index-time collapse** — :meth:`LabelHierarchy.collapse` rewrites the
  graph so that each edge carries its ancestor category at a chosen depth,
  shrinking ``|L|`` before building a PowCov index (the paper's practical
  recipe; see :func:`repro.graph.transform.merge_labels`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from .labeled_graph import EdgeLabeledGraph
from .labelsets import label_bit
from .transform import merge_labels

__all__ = ["LabelHierarchy"]


class LabelHierarchy:
    """A forest of label categories over leaf label names.

    Built from ``child -> parent`` edges; names without a parent are
    roots.  Leaves must correspond to the graph's label names when used
    against a graph.

    >>> h = LabelHierarchy({"friend": "social", "family": "social",
    ...                     "colleague": "work"})
    >>> sorted(h.leaves_under("social"))
    ['family', 'friend']
    """

    def __init__(self, parent_of: Mapping[str, str]):
        self._parent: dict[str, str] = dict(parent_of)
        self._children: dict[str, list[str]] = {}
        for child, parent in self._parent.items():
            if child == parent:
                raise ValueError(f"{child!r} cannot be its own parent")
            self._children.setdefault(parent, []).append(child)
        # cycle check: walk up from every node with a visited set
        for start in self._parent:
            seen = {start}
            node = start
            while node in self._parent:
                node = self._parent[node]
                if node in seen:
                    raise ValueError(f"hierarchy contains a cycle through {node!r}")
                seen.add(node)

    @property
    def nodes(self) -> set[str]:
        """All names mentioned anywhere in the forest."""
        return set(self._parent) | set(self._children)

    def roots(self) -> list[str]:
        """Names with no parent, sorted."""
        return sorted(
            name for name in self.nodes if name not in self._parent
        )

    def is_leaf(self, name: str) -> bool:
        return name not in self._children

    def parent(self, name: str) -> str | None:
        return self._parent.get(name)

    def leaves_under(self, name: str) -> set[str]:
        """All leaf names in the subtree rooted at ``name`` (itself if leaf)."""
        if name not in self.nodes:
            raise KeyError(f"unknown hierarchy node {name!r}")
        if self.is_leaf(name):
            return {name}
        leaves: set[str] = set()
        stack = [name]
        while stack:
            node = stack.pop()
            children = self._children.get(node)
            if children is None:
                leaves.add(node)
            else:
                stack.extend(children)
        return leaves

    def ancestor_at_depth(self, name: str, depth: int) -> str:
        """The ancestor of ``name`` at the given depth (root = 0).

        If ``name``'s own depth is ``<= depth``, ``name`` itself is
        returned.
        """
        chain = [name]
        node = name
        while node in self._parent:
            node = self._parent[node]
            chain.append(node)
        chain.reverse()  # root first
        index = min(depth, len(chain) - 1)
        return chain[index]

    # ------------------------------------------------------------------
    # Graph integration
    # ------------------------------------------------------------------
    def mask(self, graph: EdgeLabeledGraph, names: Iterable[str]) -> int:
        """Constraint bitmask expanding category names to graph leaf labels.

        Leaves not present in the graph's label universe are ignored
        (hierarchies often cover more vocabulary than one dataset uses).
        """
        if graph.label_universe is None:
            raise ValueError("graph has no label universe to expand against")
        result = 0
        for name in names:
            leaves = self.leaves_under(name) if name in self.nodes else {name}
            for leaf in leaves:
                if leaf in graph.label_universe:
                    result |= label_bit(graph.label_universe.id(leaf))
        return result

    def collapse(self, graph: EdgeLabeledGraph, depth: int = 0) -> EdgeLabeledGraph:
        """Rewrite edge labels to their depth-``depth`` ancestor categories.

        The returned graph's labels are the distinct categories, in sorted
        order, with a fresh label universe — the paper's "index the few
        upper-level labels" preprocessing.
        """
        if graph.label_universe is None:
            raise ValueError("graph has no label universe to collapse")
        categories: list[str] = []
        category_ids: dict[str, int] = {}
        table = []
        for leaf_id in range(graph.num_labels):
            leaf = graph.label_universe.name(leaf_id)
            category = (
                self.ancestor_at_depth(leaf, depth) if leaf in self.nodes else leaf
            )
            if category not in category_ids:
                category_ids[category] = len(categories)
                categories.append(category)
            table.append(category_ids[category])
        return merge_labels(
            graph, table, num_labels=len(categories), label_names=categories
        )
