"""Incremental construction of :class:`EdgeLabeledGraph` instances.

``GraphBuilder`` accepts edges one at a time with either dense integer labels
or string label names, deduplicates repeated ``(u, v, label)`` triples, grows
the vertex space on demand, and produces an immutable CSR graph.
"""

from __future__ import annotations

from .labeled_graph import EdgeLabeledGraph
from .labelsets import LabelUniverse

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable accumulator for edge-labeled graphs.

    >>> builder = GraphBuilder()
    >>> builder.add_edge("a", "b", "red")
    >>> builder.add_edge("b", "c", "green")
    >>> graph = builder.build()
    >>> graph.num_vertices, graph.num_edges, graph.num_labels
    (3, 2, 2)

    Vertices may be named with arbitrary hashable objects; dense ids are
    assigned in first-seen order and the mapping is kept in
    :attr:`vertex_names`.
    """

    def __init__(self, directed: bool = False):
        self.directed = directed
        self._edges: list[tuple[int, int, int]] = []
        self._seen: set[tuple[int, int, int]] = set()
        self._vertex_ids: dict = {}
        self.vertex_names: list = []
        self.labels = LabelUniverse([])

    def vertex_id(self, name) -> int:
        """Dense id for vertex ``name``, creating it if new."""
        existing = self._vertex_ids.get(name)
        if existing is not None:
            return existing
        vertex = len(self.vertex_names)
        self._vertex_ids[name] = vertex
        self.vertex_names.append(name)
        return vertex

    def add_vertex(self, name) -> int:
        """Ensure an (possibly isolated) vertex exists; returns its id."""
        return self.vertex_id(name)

    def add_edge(self, u, v, label) -> None:
        """Add edge ``(u, v)`` with ``label`` (a name or a dense id).

        Duplicate ``(u, v, label)`` triples are silently dropped; for
        undirected graphs ``(v, u, label)`` counts as a duplicate too.
        Parallel edges with *different* labels are kept — the paper's
        multi-label remark is modeled this way.
        """
        u_id = self.vertex_id(u)
        v_id = self.vertex_id(v)
        if u_id == v_id:
            raise ValueError(f"self-loop on vertex {u!r} is not allowed")
        if isinstance(label, str):
            label_id = self.labels.add(label)
        else:
            label_id = int(label)
            if label_id < 0:
                raise ValueError(f"negative label id {label_id}")
            while len(self.labels) <= label_id:
                self.labels.add(f"label_{len(self.labels)}")
        key = (u_id, v_id, label_id)
        if not self.directed and u_id > v_id:
            key = (v_id, u_id, label_id)
        if key in self._seen:
            return
        self._seen.add(key)
        self._edges.append(key)

    @property
    def num_edges_added(self) -> int:
        """Number of distinct edges accumulated so far."""
        return len(self._edges)

    def build(self, num_labels: int | None = None) -> EdgeLabeledGraph:
        """Freeze the accumulated edges into an :class:`EdgeLabeledGraph`."""
        if num_labels is None:
            num_labels = max(len(self.labels), 1)
        return EdgeLabeledGraph.from_edges(
            num_vertices=len(self.vertex_names),
            edges=self._edges,
            num_labels=num_labels,
            directed=self.directed,
            label_universe=self.labels,
        )
