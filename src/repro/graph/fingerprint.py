"""Graph fingerprints: content hashes and delta-lineage hashes.

Two kinds of fingerprint identify a graph version:

* **Content fingerprint** (:func:`graph_fingerprint` on a graph built from
  scratch): an FNV-1a fold of the summary counts plus a strided sample of
  the CSR arrays.  Two independently constructed graphs with the same
  content hash the same.
* **Lineage fingerprint** (set by :func:`repro.graph.delta.apply_delta`):
  ``fold(parent_fingerprint, delta)`` computed in ``O(|delta|)`` without
  rehashing the CSR arrays.  Two graphs reached from the same parent by
  the same delta hash the same — which is what the fingerprint-addressed
  caches need for temporal replays — but a delta-derived graph does *not*
  hash equal to the same content built from scratch.  The fingerprint
  identifies a *version*, not a canonical content encoding.

Both kinds live in the same 63-bit space and are memoized on
``graph._fingerprint``; :func:`repro.core.serialize.graph_fingerprint`
re-exports :func:`graph_fingerprint` for callers above the graph layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .delta import GraphDelta
    from .labeled_graph import EdgeLabeledGraph

__all__ = ["graph_fingerprint", "delta_fingerprint"]

_FNV_OFFSET = 1469598103934665603
_FNV_PRIME = 1099511628211
#: at most this many strided samples are folded in per CSR array.
_FINGERPRINT_SAMPLES = 1024


def _fold(acc: int, value: int) -> int:
    return ((acc ^ (int(value) & ((1 << 64) - 1))) * _FNV_PRIME) % (1 << 63)


def _fold_array(acc: int, array: np.ndarray) -> int:
    """FNV-fold a strided content sample of ``array`` into ``acc``.

    Up to :data:`_FINGERPRINT_SAMPLES` evenly spaced elements (always
    including the first and last) are hashed individually, so two graphs
    with identical summary counts but different adjacency or labeling
    content fingerprint differently — a pure checksum-of-sums would let
    permuted arrays collide.
    """
    n = len(array)
    acc = _fold(acc, n)
    if n == 0:
        return acc
    stride = max(1, n // _FINGERPRINT_SAMPLES)
    sample = array[::stride]
    for value in np.asarray(sample, dtype=np.int64).tolist():
        acc = _fold(acc, value)
    return _fold(acc, int(array[-1]))


def graph_fingerprint(graph: EdgeLabeledGraph) -> np.int64:
    """Fingerprint binding an index file or cache entry to its graph.

    For a graph built from scratch this folds the summary counts *and* a
    strided FNV sample of the CSR arrays (``indptr``, ``neighbors``,
    ``edge_labels``), so graphs that merely share sizes — or permute
    edges/labels — are told apart.  For a graph produced by
    :func:`repro.graph.delta.apply_delta` the memoized value is the
    incrementally computed lineage fingerprint (see the module docstring).

    Memoized per graph instance (the CSR arrays are never mutated in
    place), so repeated saves/loads against the same graph hash it once.
    """
    if graph._fingerprint is not None:
        return graph._fingerprint
    acc = _FNV_OFFSET
    for value in (
        graph.num_vertices,
        graph.num_edges,
        graph.num_labels,
        int(graph.directed),
        int(graph.indptr[-1]),
    ):
        acc = _fold(acc, value)
    acc = _fold_array(acc, graph.indptr)
    acc = _fold_array(acc, graph.neighbors)
    acc = _fold_array(acc, graph.edge_labels)
    graph._fingerprint = np.int64(acc)
    return graph._fingerprint


def delta_fingerprint(parent_fingerprint: np.int64, delta: GraphDelta) -> np.int64:
    """Lineage hash of ``parent + delta``, computed in ``O(|delta|)``.

    Deterministic in the delta's canonical op order, so replaying the same
    delta against the same parent always lands on the same version id —
    the property the fingerprint-addressed :class:`repro.store.cache
    .IndexStore` and the session answer cache rely on.
    """
    acc = _fold(_FNV_OFFSET, int(parent_fingerprint))
    for tag, ops in ((1, delta.insertions), (2, delta.deletions)):
        acc = _fold(acc, tag)
        acc = _fold(acc, len(ops))
        for u, v, label in ops:
            acc = _fold(acc, u)
            acc = _fold(acc, v)
            acc = _fold(acc, label)
    acc = _fold(acc, 3)
    acc = _fold(acc, len(delta.relabels))
    for u, v, old_label, new_label in delta.relabels:
        acc = _fold(acc, u)
        acc = _fold(acc, v)
        acc = _fold(acc, old_label)
        acc = _fold(acc, new_label)
    return np.int64(acc)
