"""Edge-labeled graph substrate: graph type, traversal, generators, datasets."""

from __future__ import annotations

from .builder import GraphBuilder
from .delta import GraphDelta, apply_delta
from .fingerprint import delta_fingerprint, graph_fingerprint
from .labeled_graph import EdgeLabeledGraph
from .labelsets import (
    LabelUniverse,
    full_mask,
    labels_from_mask,
    mask_from_labels,
    mask_to_str,
    popcount,
)
from .traversal import (
    UNREACHABLE,
    bfs,
    bidirectional_constrained_bfs,
    connected_components,
    constrained_bfs,
    constrained_bfs_levels,
    constrained_bfs_parents,
    constrained_bfs_tree,
    constrained_dijkstra,
    constrained_distance,
    constrained_shortest_path,
    estimate_diameter,
    monochromatic_sp_labels,
)
from .stats import graph_profile, label_entropy, per_label_connectivity
from .transform import (
    collapse_rare_labels,
    extract_k_core,
    merge_labels,
    relabel_vertices,
)
from .hierarchy import LabelHierarchy
from .generators import (
    chromatic_cluster_graph,
    labeled_barabasi_albert,
    labeled_erdos_renyi,
    labeled_grid,
)
from .datasets import (
    DATASETS,
    PAPER_TABLE1,
    DatasetSpec,
    dataset_names,
    figure1_graph,
    figure2_graph,
    figure5_graph,
    load_dataset,
    paper_synthetic,
)
from .io import load_edge_list, load_npz, save_edge_list, save_npz

__all__ = [
    "EdgeLabeledGraph",
    "GraphBuilder",
    "GraphDelta",
    "apply_delta",
    "delta_fingerprint",
    "graph_fingerprint",
    "LabelUniverse",
    "UNREACHABLE",
    "full_mask",
    "labels_from_mask",
    "mask_from_labels",
    "mask_to_str",
    "popcount",
    "bfs",
    "bidirectional_constrained_bfs",
    "connected_components",
    "constrained_bfs",
    "constrained_bfs_levels",
    "constrained_bfs_parents",
    "constrained_bfs_tree",
    "constrained_dijkstra",
    "constrained_distance",
    "constrained_shortest_path",
    "estimate_diameter",
    "monochromatic_sp_labels",
    "graph_profile",
    "label_entropy",
    "per_label_connectivity",
    "collapse_rare_labels",
    "extract_k_core",
    "merge_labels",
    "relabel_vertices",
    "LabelHierarchy",
    "chromatic_cluster_graph",
    "labeled_barabasi_albert",
    "labeled_erdos_renyi",
    "labeled_grid",
    "DATASETS",
    "PAPER_TABLE1",
    "DatasetSpec",
    "dataset_names",
    "figure1_graph",
    "figure2_graph",
    "figure5_graph",
    "load_dataset",
    "paper_synthetic",
    "load_edge_list",
    "load_npz",
    "save_edge_list",
    "save_npz",
]
