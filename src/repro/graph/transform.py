"""Graph and label transformations.

Footnote 2 of the paper notes that RDF graphs with thousands of low-level
predicates are queried through "the few upper-level labels of the
hierarchies that are typically exploited to semantically organize the
whole set of low-level labels" — i.e. practitioners *collapse* label
hierarchies before indexing.  This module provides those preprocessing
steps:

* :func:`merge_labels` — apply an arbitrary label-to-label mapping
  (e.g. hierarchy level-up);
* :func:`collapse_rare_labels` — keep the ``k`` most frequent labels and
  fold everything else into a single "other" label, the pragmatic RDF
  recipe;
* :func:`relabel_vertices` — permute/compact vertex ids;
* :func:`extract_k_core` — iteratively strip low-degree vertices, the
  usual densification step before landmark methods are applied.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .labeled_graph import EdgeLabeledGraph
from .labelsets import LabelUniverse

__all__ = [
    "merge_labels",
    "collapse_rare_labels",
    "relabel_vertices",
    "extract_k_core",
]


def merge_labels(
    graph: EdgeLabeledGraph,
    mapping: Mapping[int, int] | Sequence[int],
    num_labels: int | None = None,
    label_names: Sequence[str] | None = None,
) -> EdgeLabeledGraph:
    """Rewrite every edge label through ``mapping`` (old id -> new id).

    ``mapping`` may be a dict (missing ids map to themselves) or a dense
    sequence of length ``graph.num_labels``.  Parallel edges whose labels
    merge into the same new label are deduplicated.
    """
    if isinstance(mapping, Mapping):
        table = np.arange(graph.num_labels, dtype=np.int64)
        for old, new in mapping.items():
            if not 0 <= old < graph.num_labels:
                raise ValueError(f"label id {old} out of range")
            table[old] = new
    else:
        if len(mapping) != graph.num_labels:
            raise ValueError("dense mapping must cover every label")
        table = np.asarray(mapping, dtype=np.int64)
    if (table < 0).any():
        raise ValueError("mapped label ids must be non-negative")
    if num_labels is None:
        num_labels = int(table.max()) + 1

    universe = None
    if label_names is not None:
        universe = LabelUniverse(label_names)
        if len(universe) < num_labels:
            raise ValueError("label_names must cover every new label id")

    seen: set[tuple[int, int, int]] = set()
    edges = []
    for u, v, label in graph.iter_edges():
        new_label = int(table[label])
        key = (u, v, new_label) if graph.directed else (min(u, v), max(u, v), new_label)
        if key in seen:
            continue
        seen.add(key)
        edges.append((u, v, new_label))
    return EdgeLabeledGraph.from_edges(
        graph.num_vertices, edges, num_labels=num_labels,
        directed=graph.directed, label_universe=universe,
    )


def collapse_rare_labels(
    graph: EdgeLabeledGraph, keep: int, other_name: str = "other"
) -> EdgeLabeledGraph:
    """Keep the ``keep`` most frequent labels; fold the rest into one.

    The surviving labels keep their relative frequency order (new id 0 is
    the most frequent); the fold-all bucket gets the last id.  This is the
    RDF-hierarchy recipe from the paper's footnote 2 reduced to its
    frequency-based core.
    """
    if not 1 <= keep < graph.num_labels:
        raise ValueError("keep must be in [1, num_labels)")
    frequencies = graph.label_frequencies()
    order = np.argsort(-frequencies, kind="stable")
    table = np.full(graph.num_labels, keep, dtype=np.int64)  # default: other
    names = []
    for new_id, old_id in enumerate(order[:keep]):
        table[old_id] = new_id
        if graph.label_universe is not None:
            names.append(graph.label_universe.name(int(old_id)))
        else:
            names.append(f"label_{int(old_id)}")
    names.append(other_name)
    return merge_labels(graph, table, num_labels=keep + 1, label_names=names)


def relabel_vertices(
    graph: EdgeLabeledGraph, permutation: Sequence[int]
) -> EdgeLabeledGraph:
    """Renumber vertices: new id of vertex ``v`` is ``permutation[v]``."""
    perm = np.asarray(permutation, dtype=np.int64)
    if len(perm) != graph.num_vertices:
        raise ValueError("permutation must cover every vertex")
    if sorted(perm.tolist()) != list(range(graph.num_vertices)):
        raise ValueError("permutation must be a bijection on vertex ids")
    edges = [
        (int(perm[u]), int(perm[v]), label) for u, v, label in graph.iter_edges()
    ]
    return EdgeLabeledGraph.from_edges(
        graph.num_vertices, edges, num_labels=graph.num_labels,
        directed=graph.directed, label_universe=graph.label_universe,
    )


def extract_k_core(graph: EdgeLabeledGraph, k: int) -> tuple[EdgeLabeledGraph, np.ndarray]:
    """The maximal subgraph with all degrees ``>= k``.

    Returns ``(core_graph, kept_vertices)`` where ``kept_vertices`` maps the
    core's dense ids back to the original ids.  Undirected graphs only.
    """
    if graph.directed:
        raise ValueError("k-core extraction supports undirected graphs")
    if k < 1:
        raise ValueError("k must be positive")
    alive = np.ones(graph.num_vertices, dtype=bool)
    degree = graph.degrees().astype(np.int64)
    changed = True
    while changed:
        drop = alive & (degree < k)
        changed = bool(drop.any())
        if not changed:
            break
        for v in np.nonzero(drop)[0]:
            alive[v] = False
            for u, _label in graph.iter_neighbors(int(v)):
                if alive[u]:
                    degree[u] -= 1
        degree[drop] = 0
    kept = np.nonzero(alive)[0]
    new_id = {int(old): i for i, old in enumerate(kept)}
    edges = [
        (new_id[u], new_id[v], label)
        for u, v, label in graph.iter_edges()
        if alive[u] and alive[v]
    ]
    core = EdgeLabeledGraph.from_edges(
        len(kept), edges, num_labels=graph.num_labels,
        directed=False, label_universe=graph.label_universe,
    )
    return core, kept
