"""The mutation API: :class:`GraphDelta` and :func:`apply_delta`.

Graph *instances* stay immutable — every array a built oracle or a mapped
store hands out keeps meaning what it meant — but graphs are no longer
terminal: applying a delta produces a **new versioned graph** whose

* ``version`` is ``parent.version + 1``,
* ``parent_fingerprint`` is the parent's fingerprint,
* ``applied_delta`` is the delta itself (the repair layers read it), and
* fingerprint is the :func:`~repro.graph.fingerprint.delta_fingerprint`
  lineage hash, computed in ``O(|delta|)`` without rehashing the CSR.

Copy-on-write CSR adoption: a relabel-only delta shares ``indptr`` and
``neighbors`` with its parent outright (only ``edge_labels`` is copied),
so graphs opened zero-copy from the mmap store stay zero-copy — the
parent's arrays are only ever *read*.  Structural deltas rebuild the three
arrays with vectorized numpy ops.

Deltas are intentionally strict: every op must name an existing (for
deletions/relabels) or genuinely new (for insertions) edge, and one delta
may touch each vertex pair at most once.  That keeps application
order-independent and makes the lineage fingerprint well-defined.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from .fingerprint import delta_fingerprint, graph_fingerprint
from .labeled_graph import EdgeLabeledGraph
from .labelsets import label_bit

__all__ = ["GraphDelta", "apply_delta"]


@dataclass(frozen=True)
class GraphDelta:
    """One batch of edge mutations: insertions, deletions, label changes.

    Ops are plain integer tuples — ``(u, v, label)`` for insertions and
    deletions, ``(u, v, old_label, new_label)`` for relabels.  For
    undirected graphs the orientation of ``(u, v)`` is irrelevant; for
    directed graphs each op names the arc ``u -> v``.
    """

    insertions: tuple[tuple[int, int, int], ...] = field(default=())
    deletions: tuple[tuple[int, int, int], ...] = field(default=())
    relabels: tuple[tuple[int, int, int, int], ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "insertions",
            tuple((int(u), int(v), int(l)) for u, v, l in self.insertions),
        )
        object.__setattr__(
            self,
            "deletions",
            tuple((int(u), int(v), int(l)) for u, v, l in self.deletions),
        )
        object.__setattr__(
            self,
            "relabels",
            tuple(
                (int(u), int(v), int(a), int(b)) for u, v, a, b in self.relabels
            ),
        )

    @property
    def is_empty(self) -> bool:
        return not (self.insertions or self.deletions or self.relabels)

    @property
    def num_ops(self) -> int:
        return len(self.insertions) + len(self.deletions) + len(self.relabels)

    def touched_label_mask(self) -> int:
        """Mask of every label any op mentions.

        A constraint mask ``C`` with ``C & touched == 0`` sees the exact
        same label-restricted subgraph before and after the delta — the
        soundness condition the repair layers and the rebound answer cache
        share (relabels contribute *both* their old and new label).
        """
        mask = 0
        for _, _, label in self.insertions:
            mask |= label_bit(label)
        for _, _, label in self.deletions:
            mask |= label_bit(label)
        for _, _, old_label, new_label in self.relabels:
            mask |= label_bit(old_label) | label_bit(new_label)
        return mask

    def describe(self) -> str:
        return (
            f"delta(+{len(self.insertions)} -{len(self.deletions)} "
            f"~{len(self.relabels)})"
        )


def _arc_index(graph: EdgeLabeledGraph, u: int, v: int, label: int) -> int | None:
    """Index of the stored arc ``u -> v`` with ``label``, or ``None``."""
    start = int(graph.indptr[u])
    stop = int(graph.indptr[u + 1])
    block = graph.neighbors[start:stop]
    hits = np.nonzero((block == v) & (graph.edge_labels[start:stop] == label))[0]
    if len(hits) == 0:
        return None
    return start + int(hits[0])


def _validate_endpoint(graph: EdgeLabeledGraph, u: int, v: int, label: int) -> None:
    n = graph.num_vertices
    if not (0 <= u < n and 0 <= v < n):
        raise ValueError(f"delta op ({u}, {v}) out of range for n={n}")
    if u == v:
        raise ValueError(f"self-loop on vertex {u} is not allowed")
    if not (0 <= label < graph.num_labels):
        raise ValueError(
            f"label id {label} out of range for |L|={graph.num_labels}"
        )


def _check_distinct_pairs(graph: EdgeLabeledGraph, delta: GraphDelta) -> None:
    seen: set[tuple[int, int]] = set()
    ops: Iterable[tuple[int, int]] = (
        [(u, v) for u, v, _ in delta.insertions]
        + [(u, v) for u, v, _ in delta.deletions]
        + [(u, v) for u, v, _, _ in delta.relabels]
    )
    for u, v in ops:
        pair = (u, v) if graph.directed else (min(u, v), max(u, v))
        if pair in seen:
            raise ValueError(
                f"delta touches edge {pair} more than once; split the "
                "mutations into successive deltas"
            )
        seen.add(pair)


def _version_result(
    graph: EdgeLabeledGraph, delta: GraphDelta, child: EdgeLabeledGraph
) -> EdgeLabeledGraph:
    child.version = graph.version + 1
    child.parent_fingerprint = graph_fingerprint(graph)
    child.applied_delta = delta
    child._fingerprint = delta_fingerprint(child.parent_fingerprint, delta)
    return child


def apply_delta(graph: EdgeLabeledGraph, delta: GraphDelta) -> EdgeLabeledGraph:
    """Apply ``delta`` to ``graph``, returning the next graph version.

    ``graph`` itself is untouched (its arrays are only read), so existing
    oracles, sessions and mapped stores bound to it stay valid; the result
    carries the version metadata described in the module docstring.
    """
    for u, v, label in delta.insertions:
        _validate_endpoint(graph, u, v, label)
        if _arc_index(graph, u, v, label) is not None:
            raise ValueError(f"edge ({u}, {v}, label={label}) already exists")
    for u, v, label in delta.deletions:
        _validate_endpoint(graph, u, v, label)
        if _arc_index(graph, u, v, label) is None:
            raise ValueError(f"edge ({u}, {v}, label={label}) does not exist")
    for u, v, old_label, new_label in delta.relabels:
        _validate_endpoint(graph, u, v, old_label)
        _validate_endpoint(graph, u, v, new_label)
        if old_label == new_label:
            raise ValueError(f"relabel of ({u}, {v}) to the same label")
        if _arc_index(graph, u, v, old_label) is None:
            raise ValueError(f"edge ({u}, {v}, label={old_label}) does not exist")
        if _arc_index(graph, u, v, new_label) is not None:
            raise ValueError(
                f"relabel target ({u}, {v}, label={new_label}) already exists"
            )
    _check_distinct_pairs(graph, delta)

    if not delta.insertions and not delta.deletions:
        return _version_result(graph, delta, _apply_relabels_cow(graph, delta))
    return _version_result(graph, delta, _apply_structural(graph, delta))


def _relabel_arcs(
    graph: EdgeLabeledGraph,
    labels: np.ndarray,
    relabels: tuple[tuple[int, int, int, int], ...],
) -> None:
    for u, v, old_label, new_label in relabels:
        for a, b in ((u, v),) if graph.directed else ((u, v), (v, u)):
            index = _arc_index(graph, a, b, old_label)
            assert index is not None  # validated by apply_delta
            labels[index] = new_label


def _apply_relabels_cow(
    graph: EdgeLabeledGraph, delta: GraphDelta
) -> EdgeLabeledGraph:
    """Relabel-only fast path: ``indptr``/``neighbors`` shared zero-copy."""
    labels = graph.edge_labels.copy()
    _relabel_arcs(graph, labels, delta.relabels)
    child = EdgeLabeledGraph(
        graph.indptr,
        graph.neighbors,
        labels,
        num_labels=graph.num_labels,
        directed=graph.directed,
        label_universe=graph.label_universe,
        num_edges=graph.num_edges,
    )
    # ``ascontiguousarray`` in the constructor is a same-object no-op for
    # the already-contiguous parent arrays; pin the sharing regardless so
    # mapped graphs provably stay zero-copy.
    child.indptr = graph.indptr
    child.neighbors = graph.neighbors
    return child


def _apply_structural(
    graph: EdgeLabeledGraph, delta: GraphDelta
) -> EdgeLabeledGraph:
    """General path: rebuild the CSR arrays (parent arrays only read)."""
    num_arcs = graph.num_arcs
    arc_sources = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    labels = graph.edge_labels
    if delta.relabels:
        labels = labels.copy()
        _relabel_arcs(graph, labels, delta.relabels)

    keep = np.ones(num_arcs, dtype=bool)
    for u, v, label in delta.deletions:
        for a, b in ((u, v),) if graph.directed else ((u, v), (v, u)):
            index = _arc_index(graph, a, b, label)
            assert index is not None  # validated by apply_delta
            keep[index] = False

    new_count = len(delta.insertions) * (1 if graph.directed else 2)
    new_sources = np.empty(new_count, dtype=np.int64)
    new_targets = np.empty(new_count, dtype=np.int32)
    new_labels = np.empty(new_count, dtype=np.int16)
    for i, (u, v, label) in enumerate(delta.insertions):
        if graph.directed:
            new_sources[i], new_targets[i], new_labels[i] = u, v, label
        else:
            new_sources[2 * i], new_targets[2 * i] = u, v
            new_sources[2 * i + 1], new_targets[2 * i + 1] = v, u
            new_labels[2 * i] = new_labels[2 * i + 1] = label

    sources = np.concatenate([arc_sources[keep], new_sources])
    targets = np.concatenate([graph.neighbors[keep], new_targets])
    arc_labels = np.concatenate([labels[keep], new_labels])
    order = np.argsort(sources, kind="stable")
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    np.add.at(indptr, sources + 1, 1)
    np.cumsum(indptr, out=indptr)
    return EdgeLabeledGraph(
        indptr,
        targets[order],
        arc_labels[order],
        num_labels=graph.num_labels,
        directed=graph.directed,
        label_universe=graph.label_universe,
        num_edges=graph.num_edges - len(delta.deletions) + len(delta.insertions),
    )
