"""The edge-labeled graph substrate.

``EdgeLabeledGraph`` is the graph type every oracle and baseline in this
package operates on.  It matches the paper's model (Section 2): an
undirected, unweighted graph ``G = (V, E, L, l)`` where ``l`` assigns exactly
one label to each edge.  Directed graphs are supported as well (the paper
notes the extension is straightforward); weighted queries are handled by the
constrained Dijkstra in :mod:`repro.graph.traversal`.

Storage is CSR (compressed sparse row): three numpy arrays ``indptr``,
``neighbors`` and ``edge_labels``.  For an undirected graph every edge is
stored in both directions so that neighborhood iteration never branches.

Each *instance* is immutable — its CSR arrays are never written after
construction, so indexes, mapped stores and caches built against it stay
valid forever.  Graphs still evolve: :meth:`EdgeLabeledGraph.apply_delta`
/ :meth:`EdgeLabeledGraph.apply_edges` (see :mod:`repro.graph.delta`)
return the *next version* as a new instance carrying ``version``,
``parent_fingerprint`` and ``applied_delta`` lineage metadata.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .delta import GraphDelta

from .labelsets import LabelUniverse, full_mask, mask_from_labels, np_label_bits

__all__ = ["EdgeLabeledGraph"]


class EdgeLabeledGraph:
    """Edge-labeled graph in CSR form (instances immutable, versions linked).

    Construct instances through :class:`repro.graph.builder.GraphBuilder` or
    the :meth:`from_edges` convenience constructor rather than by hand.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbors of vertex ``u``
        live in ``neighbors[indptr[u]:indptr[u + 1]]``.
    neighbors:
        ``int32`` array of neighbor vertex ids, one entry per directed arc.
    edge_labels:
        ``int8``/``int16`` array parallel to ``neighbors`` with the dense
        label id of each arc.
    """

    __slots__ = (
        "indptr",
        "neighbors",
        "edge_labels",
        "num_labels",
        "directed",
        "label_universe",
        "version",
        "parent_fingerprint",
        "applied_delta",
        "_num_edges",
        "_incident_label_masks",
        "_label_filter_cache",
        "_label_csr",
        "_fingerprint",
        "_reversed",
        "_neighbor_search",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        edge_labels: np.ndarray,
        num_labels: int,
        directed: bool = False,
        label_universe: LabelUniverse | None = None,
        num_edges: int | None = None,
    ):
        if indptr.ndim != 1 or neighbors.ndim != 1 or edge_labels.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if len(neighbors) != len(edge_labels):
            raise ValueError("neighbors and edge_labels must be parallel arrays")
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(neighbors):
            raise ValueError("malformed indptr array")
        if num_labels <= 0:
            raise ValueError("graphs must have at least one label")
        if edge_labels.size and int(edge_labels.max(initial=0)) >= num_labels:
            raise ValueError("edge label id out of range")

        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.neighbors = np.ascontiguousarray(neighbors, dtype=np.int32)
        self.edge_labels = np.ascontiguousarray(edge_labels, dtype=np.int16)
        self.num_labels = int(num_labels)
        self.directed = bool(directed)
        self.label_universe = label_universe
        if num_edges is None:
            num_edges = len(neighbors) if directed else len(neighbors) // 2
        self._num_edges = int(num_edges)
        self._incident_label_masks: np.ndarray | None = None
        #: per-mask boolean label tables, filled lazily by ``label_filter``.
        self._label_filter_cache: dict[int, np.ndarray] = {}
        self._label_csr: tuple[np.ndarray, np.ndarray] | None = None
        #: cached structural fingerprint, filled by ``graph_fingerprint``
        #: (or preset with the lineage hash by ``apply_delta``).
        self._fingerprint: np.int64 | None = None
        self._reversed: EdgeLabeledGraph | None = None
        #: per-slice target-sorted neighbor view for ``edge_label`` probes.
        self._neighbor_search: tuple[np.ndarray, np.ndarray] | None = None
        #: version metadata; ``apply_delta`` stamps these on its results.
        self.version: int = 0
        self.parent_fingerprint: np.int64 | None = None
        self.applied_delta: GraphDelta | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int, int]],
        num_labels: int | None = None,
        directed: bool = False,
        label_universe: LabelUniverse | None = None,
    ) -> "EdgeLabeledGraph":
        """Build a graph from ``(u, v, label_id)`` triples.

        For undirected graphs each input edge is materialized as two arcs.
        Self-loops are rejected: they never participate in a shortest path of
        an unweighted graph and complicate degree accounting.
        """
        edge_list = list(edges)
        for u, v, label in edge_list:
            if u == v:
                raise ValueError(f"self-loop on vertex {u} is not allowed")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(f"edge ({u}, {v}) out of range for n={num_vertices}")
            if label < 0:
                raise ValueError(f"negative label id {label}")
        if num_labels is None:
            num_labels = 1 + max((label for _, _, label in edge_list), default=0)

        arc_count = len(edge_list) if directed else 2 * len(edge_list)
        sources = np.empty(arc_count, dtype=np.int64)
        targets = np.empty(arc_count, dtype=np.int32)
        labels = np.empty(arc_count, dtype=np.int16)
        for i, (u, v, label) in enumerate(edge_list):
            if directed:
                sources[i], targets[i], labels[i] = u, v, label
            else:
                sources[2 * i], targets[2 * i], labels[2 * i] = u, v, label
                sources[2 * i + 1], targets[2 * i + 1], labels[2 * i + 1] = v, u, label

        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        labels = labels[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, sources + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            indptr,
            targets,
            labels,
            num_labels=num_labels,
            directed=directed,
            label_universe=label_universe,
            num_edges=len(edge_list),
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges ``m``."""
        return self._num_edges

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (``2m`` for undirected graphs)."""
        return len(self.neighbors)

    def degree(self, u: int) -> int:
        """Out-degree of ``u`` (== degree for undirected graphs)."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array."""
        return np.diff(self.indptr)

    def neighbors_of(self, u: int) -> np.ndarray:
        """Neighbor ids of ``u`` (a CSR slice — do not mutate)."""
        return self.neighbors[self.indptr[u] : self.indptr[u + 1]]

    def labels_of(self, u: int) -> np.ndarray:
        """Arc labels of ``u``'s incident arcs, parallel to :meth:`neighbors_of`."""
        return self.edge_labels[self.indptr[u] : self.indptr[u + 1]]

    def iter_neighbors(self, u: int) -> Iterator[tuple[int, int]]:
        """Yield ``(neighbor, label_id)`` pairs for ``u``."""
        start, stop = self.indptr[u], self.indptr[u + 1]
        for i in range(start, stop):
            yield int(self.neighbors[i]), int(self.edge_labels[i])

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield each edge once as ``(u, v, label_id)``.

        For undirected graphs only the ``u < v`` orientation is yielded
        (parallel edges with distinct labels are yielded once per label).
        """
        for u in range(self.num_vertices):
            start, stop = self.indptr[u], self.indptr[u + 1]
            for i in range(start, stop):
                v = int(self.neighbors[i])
                if self.directed or u < v:
                    yield u, v, int(self.edge_labels[i])

    def _neighbor_search_view(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted_neighbors, order)``: each CSR slice sorted by target id.

        ``sorted_neighbors[indptr[u]:indptr[u+1]]`` is ``neighbors_of(u)``
        in ascending order and ``order`` maps positions in the sorted view
        back to original arc indices.  Built lazily in one vectorized
        ``O(arcs log arcs)`` pass; ``edge_label``/``has_edge`` then probe a
        slice in ``O(log degree)`` instead of scanning it.
        """
        if self._neighbor_search is None:
            arc_sources = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
            )
            key = arc_sources * (self.num_vertices + 1) + self.neighbors
            order = np.argsort(key, kind="stable")
            self._neighbor_search = (self.neighbors[order], order)
        return self._neighbor_search

    def edge_label(self, u: int, v: int) -> int | None:
        """Dense label id of edge ``(u, v)``, or ``None`` if absent.

        If parallel edges with different labels exist, the first stored one
        is returned.  Binary search over the target-sorted slice view
        (``O(log degree)`` after a lazy one-off sort of all arcs).
        """
        start, stop = int(self.indptr[u]), int(self.indptr[u + 1])
        if start == stop:
            return None
        sorted_neighbors, order = self._neighbor_search_view()
        block = sorted_neighbors[start:stop]
        lo = int(np.searchsorted(block, v, side="left"))
        hi = int(np.searchsorted(block, v, side="right"))
        if lo == hi:
            return None
        # Parallel edges: the minimum original arc index preserves the
        # documented "first stored" semantics of the old linear scan.
        arc = int(order[start + lo : start + hi].min())
        return int(self.edge_labels[arc])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff an arc ``u -> v`` exists (``O(log degree)``)."""
        start, stop = int(self.indptr[u]), int(self.indptr[u + 1])
        if start == stop:
            return False
        block = self._neighbor_search_view()[0][start:stop]
        lo = int(np.searchsorted(block, v, side="left"))
        return lo < stop - start and int(block[lo]) == v

    # ------------------------------------------------------------------
    # Versioned mutation
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> "EdgeLabeledGraph":
        """Apply a :class:`~repro.graph.delta.GraphDelta`, returning the
        next graph version (this instance is untouched; see
        :func:`repro.graph.delta.apply_delta`)."""
        from .delta import apply_delta

        return apply_delta(self, delta)

    def apply_edges(
        self,
        insertions: Iterable[tuple[int, int, int]] = (),
        deletions: Iterable[tuple[int, int, int]] = (),
        relabels: Iterable[tuple[int, int, int, int]] = (),
    ) -> "EdgeLabeledGraph":
        """Convenience wrapper: build a delta from the op lists and apply it.

        ``insertions``/``deletions`` take ``(u, v, label)`` triples,
        ``relabels`` takes ``(u, v, old_label, new_label)``.
        """
        from .delta import GraphDelta

        return self.apply_delta(
            GraphDelta(
                insertions=tuple(insertions),
                deletions=tuple(deletions),
                relabels=tuple(relabels),
            )
        )

    # ------------------------------------------------------------------
    # Label-oriented accessors
    # ------------------------------------------------------------------
    def full_label_mask(self) -> int:
        """Mask with every label of the graph set."""
        return full_mask(self.num_labels)

    def incident_label_mask(self, u: int) -> int:
        """Mask of labels on edges incident to ``u`` (the paper's ``L_x``).

        Used by Observation 1: a label set ``C`` disconnects landmark ``x``
        from the whole graph iff ``C`` avoids every label in ``L_x``.
        """
        return int(self.incident_label_masks()[u])

    def incident_label_masks(self) -> np.ndarray:
        """``L_u`` masks for all vertices, cached (``int64`` array).

        Only valid while ``num_labels <= 63``; callers with more labels
        should derive masks via :meth:`labels_of`.  All the paper's datasets
        have at most a few tens of labels.
        """
        if self._incident_label_masks is None:
            if self.num_labels > 63:
                raise ValueError("incident label mask cache supports <= 63 labels")
            masks = np.zeros(self.num_vertices, dtype=np.int64)
            arc_sources = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
            )
            np.bitwise_or.at(masks, arc_sources, np_label_bits(self.edge_labels))
            if self.directed:
                # Incidence for directed graphs counts in-arcs as well.
                np.bitwise_or.at(
                    masks,
                    self.neighbors.astype(np.int64),
                    np_label_bits(self.edge_labels),
                )
            self._incident_label_masks = masks
        return self._incident_label_masks

    def label_grouped_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(group_indptr, grouped_neighbors)``: arcs bucketed by (vertex, label).

        ``grouped_neighbors`` is :attr:`neighbors` reordered so every
        vertex's slice is sorted by label; the arcs leaving ``u`` with
        label ``l`` are
        ``grouped_neighbors[group_indptr[u * L + l]:group_indptr[u * L + l + 1]]``.
        Cached after the first call.  The batched multi-mask BFS kernel
        uses this view to expand only the arcs a row's constraint mask
        allows, instead of gathering every arc and filtering.
        """
        if self._label_csr is None:
            arc_sources = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
            )
            key = arc_sources * self.num_labels + self.edge_labels
            order = np.argsort(key, kind="stable")
            counts = np.bincount(key, minlength=self.num_vertices * self.num_labels)
            dtype = np.int32 if len(self.neighbors) < 2**31 else np.int64
            group_indptr = np.zeros(
                self.num_vertices * self.num_labels + 1, dtype=dtype
            )
            np.cumsum(counts, out=group_indptr[1:], dtype=dtype)
            self._label_csr = (group_indptr, self.neighbors[order])
        return self._label_csr

    def label_frequencies(self) -> np.ndarray:
        """Number of edges per label (length ``num_labels``)."""
        counts = np.bincount(self.edge_labels, minlength=self.num_labels)
        return counts if self.directed else counts // 2

    def mask(self, labels: Iterable) -> int:
        """Convert label names (if a universe is attached) or ids to a mask."""
        labels = list(labels)
        if self.label_universe is not None and labels and isinstance(labels[0], str):
            return self.label_universe.mask(labels)
        return mask_from_labels(labels)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph_by_mask(self, mask: int) -> "EdgeLabeledGraph":
        """The graph restricted to edges whose label lies in ``mask``.

        This is the object the exact LC-PPSPD definition works on; oracles
        never materialize it (they filter during traversal) but the exact
        baseline and several tests do.
        """
        keep = (np_label_bits(self.edge_labels) & mask) != 0
        arc_sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )
        sources = arc_sources[keep]
        targets = self.neighbors[keep]
        labels = self.edge_labels[keep]
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, sources + 1, 1)
        np.cumsum(indptr, out=indptr)
        num_edges = len(targets) if self.directed else len(targets) // 2
        return EdgeLabeledGraph(
            indptr,
            targets.copy(),
            labels.copy(),
            num_labels=self.num_labels,
            directed=self.directed,
            label_universe=self.label_universe,
            num_edges=num_edges,
        )

    def reversed(self) -> "EdgeLabeledGraph":
        """Reverse of a directed graph (returns self for undirected ones).

        Cached: traversals that need in-arcs (the wave-batched PowCov
        builder, the bit-parallel batched BFS) call this once per sweep.
        """
        if not self.directed:
            return self
        if self._reversed is not None:
            return self._reversed
        arc_sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )
        order = np.argsort(self.neighbors, kind="stable")
        sources = self.neighbors[order].astype(np.int64)
        targets = arc_sources[order].astype(np.int32)
        labels = self.edge_labels[order]
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, sources + 1, 1)
        np.cumsum(indptr, out=indptr)
        self._reversed = EdgeLabeledGraph(
            indptr,
            targets,
            labels.copy(),
            num_labels=self.num_labels,
            directed=True,
            label_universe=self.label_universe,
            num_edges=self._num_edges,
        )
        return self._reversed

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"EdgeLabeledGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"labels={self.num_labels}, {kind})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeLabeledGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and self.num_labels == other.num_labels
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.neighbors, other.neighbors)
            and np.array_equal(self.edge_labels, other.edge_labels)
        )

    def __hash__(self) -> int:
        # Instances are never mutated in place (mutation mints a new
        # version via ``apply_delta``), so identity hashing stays sound.
        return id(self)
