"""Traversal primitives over :class:`EdgeLabeledGraph`.

Everything here is label-aware: the central routine is the *C-constrained*
breadth-first search — a BFS that ignores edges whose label is not in the
constraint mask ``C``.  All oracles, baselines and index builders are
assembled from these primitives.

Distances are returned as numpy ``int32`` arrays with ``-1`` denoting
"unreachable"; the module constant :data:`UNREACHABLE` names that sentinel.
Point-to-point helpers return ``math.inf`` for unreachable pairs, matching
the paper's ``d_C(u, v) = ∞`` convention.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from .labeled_graph import EdgeLabeledGraph
from .labelsets import full_mask, np_label_bits

__all__ = [
    "UNREACHABLE",
    "label_filter",
    "constrained_bfs",
    "constrained_bfs_levels",
    "constrained_bfs_tree",
    "constrained_bfs_parents",
    "constrained_shortest_path",
    "bfs",
    "constrained_distance",
    "bidirectional_constrained_bfs",
    "constrained_dijkstra",
    "monochromatic_sp_labels",
    "connected_components",
    "largest_component_vertices",
    "eccentricity_lower_bound",
    "estimate_diameter",
]

#: Sentinel stored in distance arrays for unreachable vertices.
UNREACHABLE = -1


#: Upper bound on cached label tables per graph; a brute-force powerset
#: sweep visits each mask once, so unbounded growth buys nothing there.
_LABEL_FILTER_CACHE_LIMIT = 4096


def label_filter(graph: EdgeLabeledGraph, mask: int) -> np.ndarray:
    """Boolean lookup table: ``table[label_id]`` is True iff the label is in ``mask``.

    Computed once per ``(graph, mask)`` — the table is memoized on the
    graph, so repeated constrained traversals with the same constraint
    reuse it.  Callers must not mutate the returned array.
    """
    cache = graph._label_filter_cache
    table = cache.get(mask)
    if table is None:
        if graph.num_labels <= 63:
            shifts = np.arange(graph.num_labels, dtype=np.int64)
            table = ((np.int64(mask) >> shifts) & 1).astype(bool)
        else:  # masks beyond int64: bit-test label by label
            table = np.fromiter(
                (bool(mask >> label & 1) for label in range(graph.num_labels)),
                dtype=bool,
                count=graph.num_labels,
            )
        if len(cache) >= _LABEL_FILTER_CACHE_LIMIT:
            # Evict the oldest entry (dicts preserve insertion order)
            # instead of dropping the whole cache: a hot working set
            # larger than one mask survives the limit.
            cache.pop(next(iter(cache)))
        cache[mask] = table
    return table


def _frontier_arcs(graph: EdgeLabeledGraph, frontier: np.ndarray) -> np.ndarray:
    """Indices of all arcs leaving the vertices in ``frontier``."""
    starts = graph.indptr[frontier]
    counts = graph.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # arc_idx[j] enumerates each frontier vertex's CSR slice contiguously.
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + offsets


def constrained_bfs(
    graph: EdgeLabeledGraph,
    source: int,
    mask: int | None = None,
    allowed: np.ndarray | None = None,
) -> np.ndarray:
    """C-constrained single-source shortest paths (unweighted).

    Parameters
    ----------
    mask:
        Constraint label set as a bitmask; ``None`` means "all labels".
    allowed:
        Optional precomputed per-label boolean table (see
        :func:`label_filter`); overrides ``mask`` when given.

    Returns
    -------
    ``int32`` distance array with ``-1`` for unreachable vertices.
    """
    if allowed is None:
        if mask is None:
            mask = full_mask(graph.num_labels)
        allowed = label_filter(graph, mask)
    dist = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    fresh = np.empty(graph.num_vertices, dtype=bool)  # reused across levels
    level = 0
    while len(frontier):
        level += 1
        arc_idx = _frontier_arcs(graph, frontier)
        if len(arc_idx) == 0:
            break
        arc_idx = arc_idx[allowed[graph.edge_labels[arc_idx]]]
        # Deduplicate arc targets *before* the distance gather: high-degree
        # frontiers revisit the same target many times per level.
        targets = np.unique(graph.neighbors[arc_idx])
        if len(targets) == 0:
            break
        unvisited = np.equal(dist[targets], UNREACHABLE, out=fresh[: len(targets)])
        frontier = targets[unvisited].astype(np.int64)
        if len(frontier) == 0:
            break
        dist[frontier] = level
    return dist


def constrained_bfs_levels(
    graph: EdgeLabeledGraph,
    source: int,
    mask: int | None = None,
    allowed: np.ndarray | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Like :func:`constrained_bfs` but also returns the BFS levels.

    ``levels[t]`` is the array of vertices at distance exactly ``t``; the
    PowCov builder consumes levels to implement Observations 2 and 4.
    """
    if allowed is None:
        if mask is None:
            mask = full_mask(graph.num_labels)
        allowed = label_filter(graph, mask)
    dist = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    fresh = np.empty(graph.num_vertices, dtype=bool)
    level = 0
    while len(frontier):
        level += 1
        arc_idx = _frontier_arcs(graph, frontier)
        if len(arc_idx) == 0:
            break
        arc_idx = arc_idx[allowed[graph.edge_labels[arc_idx]]]
        targets = np.unique(graph.neighbors[arc_idx])
        if len(targets) == 0:
            break
        unvisited = np.equal(dist[targets], UNREACHABLE, out=fresh[: len(targets)])
        frontier = targets[unvisited].astype(np.int64)
        if len(frontier) == 0:
            break
        dist[frontier] = level
        levels.append(frontier)
    return dist, levels


def constrained_bfs_tree(
    graph: EdgeLabeledGraph,
    source: int,
    mask: int | None = None,
    allowed: np.ndarray | None = None,
) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Constrained BFS that also reports the shortest-path DAG arcs.

    Returns ``(dist, tree_edges)`` where ``tree_edges[t]`` is a triple of
    parallel arrays ``(sources, targets, labels)`` holding *every* allowed
    arc from a level-``t-1`` vertex to a level-``t`` vertex
    (``tree_edges[0]`` is empty).  The PowCov builder's Observation 4 and
    :func:`monochromatic_sp_labels` consume these; extracting them inside
    the BFS costs nothing beyond retaining arrays the traversal computes
    anyway.
    """
    if allowed is None:
        if mask is None:
            mask = full_mask(graph.num_labels)
        allowed = label_filter(graph, mask)
    dist = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    tree_edges: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [(empty, empty, empty)]
    level = 0
    while len(frontier):
        level += 1
        starts = graph.indptr[frontier]
        counts = graph.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        ends = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        arc_idx = np.repeat(starts, counts) + offsets
        sources = np.repeat(frontier, counts)
        arc_labels = graph.edge_labels[arc_idx]
        ok = allowed[arc_labels]
        arc_idx = arc_idx[ok]
        sources = sources[ok]
        arc_labels = arc_labels[ok]
        targets = graph.neighbors[arc_idx].astype(np.int64)
        keep = dist[targets] == UNREACHABLE
        targets = targets[keep]
        sources = sources[keep]
        arc_labels = arc_labels[keep]
        if len(targets) == 0:
            break
        frontier = np.unique(targets)
        dist[frontier] = level
        tree_edges.append((sources, targets, arc_labels.astype(np.int64)))
    return dist, tree_edges


def bfs(graph: EdgeLabeledGraph, source: int) -> np.ndarray:
    """Unconstrained single-source shortest paths."""
    return constrained_bfs(graph, source, full_mask(graph.num_labels))


def constrained_distance(
    graph: EdgeLabeledGraph, source: int, target: int, mask: int | None = None
) -> float:
    """Exact ``d_C(source, target)`` via bidirectional constrained BFS."""
    return bidirectional_constrained_bfs(graph, source, target, mask)


def bidirectional_constrained_bfs(
    graph: EdgeLabeledGraph,
    source: int,
    target: int,
    mask: int | None = None,
) -> float:
    """Label-constrained bidirectional BFS — the paper's exact baseline.

    Alternately expands the smaller of the two frontiers; terminates as soon
    as the frontiers meet.  For unweighted graphs this returns the exact
    constrained distance (the meeting level cannot be improved by further
    expansion, because per-side levels grow by exactly one per step).
    Returns ``math.inf`` when no C-constrained path exists.

    Directed graphs are supported by expanding the backward search on the
    reversed adjacency.
    """
    if source == target:
        return 0.0
    if mask is None:
        mask = full_mask(graph.num_labels)
    allowed = label_filter(graph, mask)

    forward_graph = graph
    backward_graph = graph.reversed() if graph.directed else graph

    dist_f = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int32)
    dist_b = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int32)
    dist_f[source] = 0
    dist_b[target] = 0
    frontier_f = np.array([source], dtype=np.int64)
    frontier_b = np.array([target], dtype=np.int64)
    depth_f = depth_b = 0
    best = math.inf

    while len(frontier_f) and len(frontier_b):
        # Expand the cheaper side (fewer outgoing arcs to scan).
        cost_f = int((graph.indptr[frontier_f + 1] - graph.indptr[frontier_f]).sum())
        cost_b = int(
            (backward_graph.indptr[frontier_b + 1] - backward_graph.indptr[frontier_b]).sum()
        )
        if cost_f <= cost_b:
            side_graph, frontier = forward_graph, frontier_f
            dist_mine, dist_other = dist_f, dist_b
            depth_f += 1
            depth = depth_f
        else:
            side_graph, frontier = backward_graph, frontier_b
            dist_mine, dist_other = dist_b, dist_f
            depth_b += 1
            depth = depth_b

        arc_idx = _frontier_arcs(side_graph, frontier)
        if len(arc_idx):
            arc_idx = arc_idx[allowed[side_graph.edge_labels[arc_idx]]]
        if len(arc_idx) == 0:
            new_frontier = np.empty(0, dtype=np.int64)
        else:
            targets = side_graph.neighbors[arc_idx]
            targets = targets[dist_mine[targets] == UNREACHABLE]
            new_frontier = np.unique(targets).astype(np.int64)
            dist_mine[new_frontier] = depth

        if len(new_frontier):
            met = new_frontier[dist_other[new_frontier] != UNREACHABLE]
            if len(met):
                candidate = int(
                    (dist_f[met].astype(np.int64) + dist_b[met].astype(np.int64)).min()
                )
                best = min(best, float(candidate))

        if cost_f <= cost_b:
            frontier_f = new_frontier
        else:
            frontier_b = new_frontier

        # The smallest distance still discoverable is depth_f + depth_b + 1.
        if best <= depth_f + depth_b:
            return best
    return best


def constrained_dijkstra(
    graph: EdgeLabeledGraph,
    source: int,
    mask: int | None = None,
    weights: np.ndarray | None = None,
    target: int | None = None,
) -> np.ndarray | float:
    """C-constrained single-source Dijkstra for weighted graphs.

    ``weights`` is an array parallel to the arc arrays (defaults to all-ones,
    in which case the result matches :func:`constrained_bfs`).  When
    ``target`` is given, returns the single distance as a float (``inf`` if
    unreachable) and may stop early; otherwise returns the full ``float64``
    distance array with ``inf`` for unreachable vertices.
    """
    if mask is None:
        mask = full_mask(graph.num_labels)
    allowed = label_filter(graph, mask)
    if weights is None:
        weights = np.ones(graph.num_arcs, dtype=np.float64)
    elif len(weights) != graph.num_arcs:
        raise ValueError("weights must be parallel to the arc arrays")

    dist = np.full(graph.num_vertices, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, neighbors, labels = graph.indptr, graph.neighbors, graph.edge_labels
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if target is not None and u == target:
            return float(d)
        for i in range(indptr[u], indptr[u + 1]):
            if not allowed[labels[i]]:
                continue
            v = int(neighbors[i])
            nd = d + float(weights[i])
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    if target is not None:
        return float(dist[target])
    return dist


def constrained_bfs_parents(
    graph: EdgeLabeledGraph,
    source: int,
    mask: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Constrained BFS that also returns a shortest-path parent array.

    ``parents[u]`` is a predecessor of ``u`` on some C-constrained shortest
    path from ``source`` (``-1`` for the source and unreachable vertices).
    """
    if mask is None:
        mask = full_mask(graph.num_labels)
    dist, tree_edges = constrained_bfs_tree(graph, source, mask)
    parents = np.full(graph.num_vertices, -1, dtype=np.int64)
    for sources, targets, _labels in tree_edges[1:]:
        # Later writes overwrite earlier ones; any shortest-path parent is
        # acceptable, so no tie-breaking is needed.
        parents[targets] = sources
    return dist, parents


def constrained_shortest_path(
    graph: EdgeLabeledGraph,
    source: int,
    target: int,
    mask: int | None = None,
) -> list[int] | None:
    """An actual C-constrained shortest path (vertex list), or ``None``.

    The witness-path API: callers that need to *show* the path behind a
    distance (the PathBLAST-style example, debugging index answers) use
    this; it costs one constrained BFS.
    """
    if source == target:
        return [source]
    dist, parents = constrained_bfs_parents(graph, source, mask)
    if dist[target] == UNREACHABLE:
        return None
    path = [target]
    current = target
    while current != source:
        current = int(parents[current])
        path.append(current)
    path.reverse()
    return path


def monochromatic_sp_labels(graph: EdgeLabeledGraph, source: int) -> np.ndarray:
    """Labels of monochromatic *unconstrained* shortest paths from ``source``.

    Returns an ``int64`` mask array ``mono`` where bit ``l`` of ``mono[u]``
    is set iff some unconstrained shortest path from ``source`` to ``u`` uses
    only edges labeled ``l``.  This powers Observation 3 of the paper: if
    ``mono[u]`` has bit ``l`` set, every label set strictly containing ``l``
    is non-SP-minimal w.r.t. ``(source, u)``.

    Computed by one tree-reporting BFS plus a level-by-level propagation:
    ``mono[u] = OR over shortest-path DAG arcs (v, u) of
    (mono[v] & bit(label(v, u)))`` with ``mono[source]`` = all labels.
    """
    dist, tree_edges = constrained_bfs_tree(graph, source)
    del dist
    mono = np.zeros(graph.num_vertices, dtype=np.int64)
    mono[source] = full_mask(graph.num_labels)
    for sources, targets, labels in tree_edges[1:]:
        contribution = mono[sources] & np_label_bits(labels)
        np.bitwise_or.at(mono, targets, contribution)
    return mono


def connected_components(graph: EdgeLabeledGraph) -> np.ndarray:
    """Component id per vertex (undirected semantics; directed = weak)."""
    comp = np.full(graph.num_vertices, -1, dtype=np.int64)
    # Weakly connected for directed graphs: BFS over both arc orientations.
    reverse = graph.reversed() if graph.directed else None
    next_id = 0
    for start in range(graph.num_vertices):
        if comp[start] != -1:
            continue
        comp[start] = next_id
        frontier = np.array([start], dtype=np.int64)
        while len(frontier):
            arc_idx = _frontier_arcs(graph, frontier)
            targets = graph.neighbors[arc_idx]
            if reverse is not None:
                back_idx = _frontier_arcs(reverse, frontier)
                targets = np.concatenate([targets, reverse.neighbors[back_idx]])
            targets = targets[comp[targets] == -1]
            frontier = np.unique(targets).astype(np.int64)
            comp[frontier] = next_id
        next_id += 1
    return comp


def largest_component_vertices(graph: EdgeLabeledGraph) -> np.ndarray:
    """Vertices of the largest (weakly) connected component."""
    comp = connected_components(graph)
    counts = np.bincount(comp)
    biggest = int(counts.argmax())
    return np.nonzero(comp == biggest)[0]


def eccentricity_lower_bound(graph: EdgeLabeledGraph, source: int) -> tuple[int, int]:
    """``(eccentricity, farthest_vertex)`` of ``source`` within its component."""
    dist = bfs(graph, source)
    reachable = dist >= 0
    ecc = int(dist[reachable].max())
    farthest = int(np.nonzero(dist == ecc)[0][0])
    return ecc, farthest


def estimate_diameter(
    graph: EdgeLabeledGraph, sweeps: int = 4, seed: int | None = 0
) -> int:
    """Double-sweep lower bound on the diameter of the largest component.

    Repeated double sweeps from random starting points; exact on trees and a
    tight lower bound in practice — the standard technique for Table-1 style
    "diameter" statistics.
    """
    vertices = largest_component_vertices(graph)
    if len(vertices) <= 1:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(max(1, sweeps)):
        start = int(rng.choice(vertices))
        _, far = eccentricity_lower_bound(graph, start)
        ecc, _ = eccentricity_lower_bound(graph, far)
        best = max(best, ecc)
    return best
