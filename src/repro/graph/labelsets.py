"""Bitmask algebra for label sets.

Every algorithm in this package represents a set of edge labels as a plain
Python ``int`` bitmask: label ``i`` (a dense integer in ``0..num_labels-1``)
is present in the set ``mask`` iff bit ``i`` of ``mask`` is set.  This makes
the two operations that dominate the paper's algorithms cheap:

* subset test ``S <= C`` is ``S & C == S`` (one AND, one compare);
* set size ``|S|`` is ``popcount(S)`` (``int.bit_count`` on 3.10+).

This module collects the helpers used across the code base so that the
bit-twiddling stays in one place.  All functions are pure.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import numpy as np
    import numpy.typing as npt

__all__ = [
    "EMPTY",
    "label_bit",
    "np_label_bits",
    "mask_from_labels",
    "labels_from_mask",
    "full_mask",
    "popcount",
    "is_subset",
    "is_proper_subset",
    "iter_submasks",
    "iter_one_removed",
    "iter_one_added",
    "iter_masks_of_size",
    "iter_all_masks",
    "singleton_masks",
    "mask_to_str",
    "LabelUniverse",
]

#: The empty label set.
EMPTY = 0

# ``int.bit_count`` exists from Python 3.10; fall back to ``bin().count``.
if hasattr(int, "bit_count"):

    def popcount(mask: int) -> int:
        """Number of labels in ``mask``."""
        return mask.bit_count()

else:  # pragma: no cover - exercised only on Python < 3.10

    def popcount(mask: int) -> int:
        """Number of labels in ``mask``."""
        return bin(mask).count("1")


def label_bit(label: int) -> int:
    """The singleton mask ``{label}``.

    The canonical way to turn one dense label id into a mask — the REPRO002
    lint rule bans raw ``1 << label`` shifts outside this module so that
    every mask in the code base goes through validated constructors.

    >>> label_bit(2)
    4
    """
    if label < 0:
        raise ValueError(f"label ids must be non-negative, got {label}")
    return 1 << label


def np_label_bits(labels: "npt.ArrayLike") -> "npt.NDArray[np.int64]":
    """Vectorized :func:`label_bit`: per-element ``int64`` singleton masks.

    ``labels`` is a numpy integer array (any shape); the result has the
    same shape with ``result[i] = 1 << labels[i]`` as ``int64``.  Only
    valid for label ids below 63 — beyond that callers must stay in
    Python-int mask land (see ``EdgeLabeledGraph.incident_label_masks``).
    """
    import numpy  # local: keep the scalar helpers importable without numpy

    arr = numpy.asarray(labels)
    return numpy.left_shift(numpy.int64(1), arr.astype(numpy.int64))


def mask_from_labels(labels: Iterable[int]) -> int:
    """Build a bitmask from an iterable of dense label ids.

    >>> mask_from_labels([0, 2])
    5
    """
    mask = 0
    for label in labels:
        if label < 0:
            raise ValueError(f"label ids must be non-negative, got {label}")
        mask |= 1 << label
    return mask


def labels_from_mask(mask: int) -> list[int]:
    """Return the sorted list of label ids present in ``mask``.

    >>> labels_from_mask(5)
    [0, 2]
    """
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    labels = []
    index = 0
    while mask:
        if mask & 1:
            labels.append(index)
        mask >>= 1
        index += 1
    return labels


def full_mask(num_labels: int) -> int:
    """Mask containing every label ``0..num_labels-1``."""
    if num_labels < 0:
        raise ValueError(f"num_labels must be non-negative, got {num_labels}")
    return (1 << num_labels) - 1


def is_subset(sub: int, sup: int) -> bool:
    """True iff ``sub`` is a (not necessarily proper) subset of ``sup``."""
    return sub & sup == sub


def is_proper_subset(sub: int, sup: int) -> bool:
    """True iff ``sub`` is a strict subset of ``sup``."""
    return sub != sup and sub & sup == sub


def iter_submasks(mask: int) -> Iterator[int]:
    """Iterate over every submask of ``mask``, including ``mask`` and 0.

    Uses the classic ``sub = (sub - 1) & mask`` enumeration, which visits the
    ``2^popcount(mask)`` submasks in decreasing numeric order.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_one_removed(mask: int) -> Iterator[int]:
    """Iterate over masks obtained by removing exactly one label from ``mask``.

    These are the immediate subsets used by the Theorem 2 SP-minimality test.
    """
    remaining = mask
    while remaining:
        low_bit = remaining & -remaining
        yield mask ^ low_bit
        remaining ^= low_bit


def iter_one_added(mask: int, num_labels: int) -> Iterator[int]:
    """Iterate over masks obtained by adding one label not in ``mask``."""
    absent = full_mask(num_labels) & ~mask
    while absent:
        low_bit = absent & -absent
        yield mask | low_bit
        absent ^= low_bit


def iter_masks_of_size(size: int, num_labels: int) -> Iterator[int]:
    """Iterate over all masks with exactly ``size`` bits set, ascending.

    Uses Gosper's hack to walk same-popcount masks in increasing order.
    """
    if size < 0 or num_labels < 0:
        raise ValueError("size and num_labels must be non-negative")
    if size > num_labels:
        return
    if size == 0:
        yield 0
        return
    limit = 1 << num_labels
    mask = (1 << size) - 1
    while mask < limit:
        yield mask
        # Gosper's hack: next higher integer with the same popcount.
        lowest = mask & -mask
        ripple = mask + lowest
        mask = ripple | (((mask ^ ripple) >> 2) // lowest)


def iter_all_masks(num_labels: int, include_empty: bool = False) -> Iterator[int]:
    """Iterate over all ``2^num_labels`` masks in ascending numeric order."""
    start = 0 if include_empty else 1
    for mask in range(start, 1 << num_labels):
        yield mask


def singleton_masks(num_labels: int) -> list[int]:
    """The ``num_labels`` masks containing exactly one label each."""
    return [1 << label for label in range(num_labels)]


def mask_to_str(mask: int, names: Sequence[str] | None = None) -> str:
    """Human-readable rendering of a mask, e.g. ``{r,g}``.

    ``names`` maps dense label ids to display names; ids are used when absent.
    """
    labels = labels_from_mask(mask)
    if names is None:
        parts = [str(label) for label in labels]
    else:
        parts = [names[label] for label in labels]
    return "{" + ",".join(parts) + "}"


class LabelUniverse:
    """Bidirectional mapping between label *names* and dense label ids.

    The graph substrate works on dense integer labels; user-facing APIs accept
    arbitrary hashable names (strings in all the paper's datasets).  A
    ``LabelUniverse`` owns that mapping and converts name collections to
    bitmasks.

    >>> universe = LabelUniverse(["red", "green", "blue"])
    >>> universe.mask(["red", "blue"])
    5
    >>> universe.names_from_mask(5)
    ['red', 'blue']
    """

    __slots__ = ("_names", "_ids")

    def __init__(self, names: Iterable[str]):
        self._names: list[str] = []
        self._ids: dict[str, int] = {}
        for name in names:
            self.add(name)

    def add(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its dense id."""
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        label_id = len(self._names)
        self._names.append(name)
        self._ids[name] = label_id
        return label_id

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    @property
    def names(self) -> list[str]:
        """All registered names, in dense-id order."""
        return list(self._names)

    def id(self, name: str) -> int:
        """Dense id of ``name``; raises ``KeyError`` for unknown names."""
        return self._ids[name]

    def name(self, label_id: int) -> str:
        """Display name of dense id ``label_id``."""
        return self._names[label_id]

    def mask(self, names: Iterable[str]) -> int:
        """Bitmask of the given label names."""
        return mask_from_labels(self._ids[name] for name in names)

    def names_from_mask(self, mask: int) -> list[str]:
        """Display names present in ``mask``, in dense-id order."""
        return [self._names[label] for label in labels_from_mask(mask)]

    def full_mask(self) -> int:
        """Mask containing every registered label."""
        return full_mask(len(self._names))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LabelUniverse({self._names!r})"
