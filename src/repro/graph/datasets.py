"""Dataset registry: paper datasets and their synthetic stand-ins.

The paper evaluates on five real edge-labeled graphs (BioGrid, BioMine,
String, DBLP, YouTube — Table 1) plus synthetic graphs from the generator of
its reference [6].  The real datasets are not redistributable and far too
large for a pure-Python substrate, so this module provides *simulated
stand-ins* built with :mod:`repro.graph.generators`: same number of labels,
same structural regime (power-law vs dense small-world vs clustered), scaled
down roughly 10x.  The mapping and its rationale are documented in
DESIGN.md ("Substitutions").

Each stand-in is deterministic given its seed, so experiment outputs are
reproducible run-to-run.

The module also exposes the paper's toy figures (Figures 1, 2 and 5) as tiny
graphs used by unit tests and the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .builder import GraphBuilder
from .labeled_graph import EdgeLabeledGraph
from .generators import (
    chromatic_cluster_graph,
    labeled_barabasi_albert,
    labeled_erdos_renyi,
)

__all__ = [
    "DatasetSpec",
    "PAPER_TABLE1",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "paper_synthetic",
    "figure1_graph",
    "figure2_graph",
    "figure5_graph",
    "toy_two_triangles",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset stand-in.

    ``paper_*`` fields record what the paper's Table 1 reports for the real
    dataset; ``build`` produces the scaled synthetic equivalent.
    """

    name: str
    paper_vertices: int
    paper_edges: int
    num_labels: int
    paper_diameter: int
    paper_queries: int
    description: str = ""
    params: dict = field(default_factory=dict)


#: Table 1 of the paper, verbatim (real-dataset characteristics).
PAPER_TABLE1: dict[str, DatasetSpec] = {
    "biogrid": DatasetSpec(
        "biogrid", 26_806, 298_957, 7, 18, 19_037,
        "protein-interaction network (thebiogrid.org)",
    ),
    "biomine": DatasetSpec(
        "biomine", 943_510, 5_727_448, 7, 16, 20_799,
        "biological interaction database (BioMinE project)",
    ),
    "string": DatasetSpec(
        "string", 1_490_098, 8_886_639, 6, 19, 18_149,
        "protein-interaction network (string-db.org)",
    ),
    "dblp": DatasetSpec(
        "dblp", 47_598, 252_881, 8, 19, 18_611,
        "co-authorship network with LDA topic labels",
    ),
    "youtube": DatasetSpec(
        "youtube", 15_088, 19_923_067, 5, 6, 23_499,
        "user network with 5 relationship types",
    ),
}


def _biogrid_sim(scale: float, seed: int) -> EdgeLabeledGraph:
    n = max(200, int(2700 * scale))
    m = max(800, int(24_000 * scale))
    return chromatic_cluster_graph(
        n, m, num_labels=7, num_clusters=max(8, n // 28),
        intra_fraction=0.65, label_noise=0.12, label_exponent=1.5,
        locality=0.9, label_persistence=0.8, inter_label_coherence=0.7,
        seed=seed,
    )


def _biomine_sim(scale: float, seed: int) -> EdgeLabeledGraph:
    n = max(400, int(6000 * scale))
    m = max(1600, int(42_000 * scale))
    return chromatic_cluster_graph(
        n, m, num_labels=7, num_clusters=max(10, n // 45),
        intra_fraction=0.6, label_noise=0.2, label_exponent=1.2,
        locality=0.9, label_persistence=0.7, inter_label_coherence=0.6,
        seed=seed,
    )


def _string_sim(scale: float, seed: int) -> EdgeLabeledGraph:
    # Strong label skew + little noise: rare labels induce fragmented
    # per-label subgraphs, which is what drives the paper's high
    # false-negative rate on String.
    n = max(400, int(7000 * scale))
    m = max(1500, int(40_000 * scale))
    return chromatic_cluster_graph(
        n, m, num_labels=6, num_clusters=max(16, n // 60),
        intra_fraction=0.85, label_noise=0.03, label_exponent=1.6, seed=seed,
    )


def _dblp_sim(scale: float, seed: int) -> EdgeLabeledGraph:
    n = max(300, int(4000 * scale))
    m = max(900, int(22_000 * scale))
    return chromatic_cluster_graph(
        n, m, num_labels=8, num_clusters=max(12, n // 25),
        intra_fraction=0.7, label_noise=0.1, label_exponent=0.9,
        locality=0.92, label_persistence=0.9, inter_label_coherence=0.75,
        seed=seed,
    )


def _youtube_sim(scale: float, seed: int) -> EdgeLabeledGraph:
    # Dense, tiny diameter (paper: 6): power-law with high average degree.
    n = max(200, int(1500 * scale))
    return labeled_barabasi_albert(
        n, edges_per_vertex=min(20, n // 8), num_labels=5,
        preference_strength=0.55, label_exponent=0.8, seed=seed,
    )


#: name -> (paper spec, builder(scale, seed)).
DATASETS = {
    "biogrid-sim": (PAPER_TABLE1["biogrid"], _biogrid_sim),
    "biomine-sim": (PAPER_TABLE1["biomine"], _biomine_sim),
    "string-sim": (PAPER_TABLE1["string"], _string_sim),
    "dblp-sim": (PAPER_TABLE1["dblp"], _dblp_sim),
    "youtube-sim": (PAPER_TABLE1["youtube"], _youtube_sim),
}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load_dataset`, in the paper's Table order."""
    return list(DATASETS)


def load_dataset(
    name: str, scale: float = 1.0, seed: int = 7
) -> tuple[EdgeLabeledGraph, DatasetSpec]:
    """Build the stand-in for dataset ``name`` at the given ``scale``.

    ``scale = 1.0`` yields the default reproduction size (~10x smaller than
    the paper's graphs); tests use ``scale`` around ``0.1``.
    """
    try:
        spec, build = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None
    return build(scale, seed), spec


def paper_synthetic(
    num_labels: int,
    num_vertices: int = 5000,
    num_edges: int = 25_000,
    seed: int = 11,
) -> EdgeLabeledGraph:
    """The paper's synthetic family (Section 5, Table 1 last row).

    The paper uses 500k vertices / 2.5M edges and varies the number of
    labels in 4..100; we keep the 5:1 edge/vertex ratio and the generator
    family ([6]) at a Python-friendly scale.
    """
    if num_labels < 2:
        raise ValueError("the synthetic sweep needs at least 2 labels")
    return chromatic_cluster_graph(
        num_vertices,
        num_edges,
        num_labels=num_labels,
        num_clusters=max(8, num_vertices // 100),
        intra_fraction=0.6,
        label_noise=0.2,
        label_exponent=0.6,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Paper figures as toy graphs
# ----------------------------------------------------------------------
def figure1_graph() -> tuple[EdgeLabeledGraph, int, int]:
    """The Figure 1 example: returns ``(graph, s, t)``.

    Constructed so that, as the caption states,
    ``d_{r}(s,t) = 4``, ``d_{r,g}(s,t) = 3`` and ``d_{r,g,o}(s,t) = 2``.
    Labels: 0 = r(ed), 1 = g(reen), 2 = o(range).
    """
    builder = GraphBuilder()
    s = builder.add_vertex("s")
    t = builder.add_vertex("t")
    # All-red path of length 4.
    a1, a2, a3 = (builder.add_vertex(f"a{i}") for i in (1, 2, 3))
    builder.add_edge("s", "a1", "r")
    builder.add_edge("a1", "a2", "r")
    builder.add_edge("a2", "a3", "r")
    builder.add_edge("a3", "t", "r")
    # Red/green path of length 3.
    builder.add_vertex("b1")
    builder.add_vertex("b2")
    builder.add_edge("s", "b1", "r")
    builder.add_edge("b1", "b2", "g")
    builder.add_edge("b2", "t", "r")
    # Orange/green path of length 2.
    builder.add_vertex("c1")
    builder.add_edge("s", "c1", "o")
    builder.add_edge("c1", "t", "g")
    return builder.build(), s, t


def figure2_graph() -> tuple[EdgeLabeledGraph, int, int]:
    """The Figure 2 example: returns ``(graph, x, u)``.

    Three x-u paths with label sets {o}, {r,g} and {r,o}; {o} and {r,g} are
    SP-minimal w.r.t. (x, u) while {r,o} is subsumed by {o}.
    Dense label ids follow first-seen order of names: o=0, r=1, g=2.
    """
    builder = GraphBuilder()
    x = builder.add_vertex("x")
    u = builder.add_vertex("u")
    builder.add_edge("x", "p", "o")
    builder.add_edge("p", "u", "o")
    builder.add_edge("x", "q", "r")
    builder.add_edge("q", "u", "g")
    builder.add_edge("x", "w1", "r")
    builder.add_edge("w1", "w2", "o")
    builder.add_edge("w2", "u", "o")
    return builder.build(), x, u


def figure5_graph() -> tuple[EdgeLabeledGraph, int, int, int]:
    """The Figure 5 example: returns ``(graph, u, x, v)``.

    A two-edge path ``u -r- x -g- v``.  ``{x}`` is a vertex cover but no
    single chromatic landmark can answer ``⟨u, v, {r, g}⟩`` exactly.
    """
    builder = GraphBuilder()
    u = builder.add_vertex("u")
    x = builder.add_vertex("x")
    v = builder.add_vertex("v")
    builder.add_edge("u", "x", "r")
    builder.add_edge("x", "v", "g")
    return builder.build(), u, x, v


def toy_two_triangles() -> EdgeLabeledGraph:
    """Two triangles sharing a vertex, each monochromatic — a 7-edge fixture."""
    builder = GraphBuilder()
    for a, b in [("a", "b"), ("b", "c"), ("c", "a")]:
        builder.add_edge(a, b, "red")
    for a, b in [("c", "d"), ("d", "e"), ("e", "c")]:
        builder.add_edge(a, b, "blue")
    builder.add_edge("a", "e", "green")
    return builder.build()


def small_random(seed: int = 0, num_labels: int = 4) -> EdgeLabeledGraph:
    """A small connected-ish random graph for tests (n=60, m=150)."""
    return labeled_erdos_renyi(60, 150, num_labels=num_labels, seed=seed)
