"""Synthetic edge-labeled graph generators.

The paper's synthetic datasets come from the chromatic-cluster generator of
Bonchi et al. (KDD 2012, reference [6] of the paper): vertices are grouped
into clusters, each cluster has a dominant label, intra-cluster edges mostly
carry the cluster label, and noise edges/labels are sprinkled on top.  That
generator is reimplemented here (:func:`chromatic_cluster_graph`) together
with three generic families used by tests, examples and the Rice–Tsotras
comparison:

* :func:`labeled_erdos_renyi` — G(n, m) with labels drawn from a (possibly
  skewed) distribution;
* :func:`labeled_barabasi_albert` — power-law degree graph with labels
  correlated to per-vertex label preferences (social-network-like);
* :func:`labeled_grid` — road-network-like lattice with locally coherent
  labels (the regime where contraction hierarchies shine).

All generators are deterministic given ``seed`` and return
:class:`EdgeLabeledGraph` instances.
"""

from __future__ import annotations

import numpy as np

from .labeled_graph import EdgeLabeledGraph

__all__ = [
    "chromatic_cluster_graph",
    "labeled_erdos_renyi",
    "labeled_barabasi_albert",
    "labeled_grid",
    "zipf_label_distribution",
]


def zipf_label_distribution(num_labels: int, exponent: float = 1.0) -> np.ndarray:
    """Zipf-like probability vector over labels: ``p_i ∝ (i + 1)^-exponent``.

    ``exponent = 0`` gives the uniform distribution.  Real edge-labeled
    graphs (Table 1 of the paper) have strongly skewed label frequencies;
    the dataset stand-ins use this to match that skew.
    """
    if num_labels <= 0:
        raise ValueError("num_labels must be positive")
    weights = (np.arange(1, num_labels + 1, dtype=np.float64)) ** (-float(exponent))
    return weights / weights.sum()


def _dedup_edges(u: np.ndarray, v: np.ndarray, labels: np.ndarray):
    """Drop self-loops and duplicate (min, max, label) triples."""
    keep = u != v
    u, v, labels = u[keep], v[keep], labels[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    triples = np.stack([lo, hi, labels.astype(np.int64)], axis=1)
    triples = np.unique(triples, axis=0)
    return triples[:, 0], triples[:, 1], triples[:, 2]


def chromatic_cluster_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int,
    num_clusters: int | None = None,
    intra_fraction: float = 0.7,
    label_noise: float = 0.15,
    label_exponent: float = 0.8,
    locality: float = 0.85,
    label_persistence: float = 0.5,
    inter_label_coherence: float = 0.5,
    seed: int | None = 0,
) -> EdgeLabeledGraph:
    """Chromatic-cluster generator (the paper's synthetic family, ref. [6]).

    ``num_clusters`` clusters (default ``2 * num_labels``) each pick a
    dominant label.  A fraction ``intra_fraction`` of the ``num_edges``
    edges connect two vertices of the same cluster and carry the cluster's
    label; the rest connect vertex pairs with labels drawn from a Zipf
    distribution.  Each intra-cluster label is independently replaced by a
    random label with probability ``label_noise``.

    Clusters are arranged on a ring and a fraction ``locality`` of the
    inter-cluster edges connect *adjacent* clusters only; the remainder
    jump along the ring with a steep power-law length.  High locality
    yields the large diameters of the paper's biological networks (BioGrid
    18, String 19); ``locality = 0`` recovers a small-world mixture.

    Two knobs control how *connected* each label's own subgraph is — the
    property that drives mono-chromatic path quality in real edge-labeled
    networks:

    * ``label_persistence`` — probability that a cluster inherits the
      previous ring cluster's label, producing contiguous label regions
      (topical areas in DBLP, interaction families in PPI networks);
    * ``inter_label_coherence`` — probability that an inter-cluster edge
      carries its source cluster's label instead of a random one, which
      stitches same-label regions together across cluster boundaries.

    The construction yields community structure with label-homogeneous
    regions — exactly the regime where SP-minimal label sets stay small and
    monochromatic shortest paths are common, which is what makes the PowCov
    prunings effective on the paper's synthetic data.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must be in [0, 1]")
    if not 0.0 <= label_noise <= 1.0:
        raise ValueError("label_noise must be in [0, 1]")
    rng = np.random.default_rng(seed)
    if num_clusters is None:
        num_clusters = max(2, 2 * num_labels)

    if not 0.0 <= label_persistence <= 1.0:
        raise ValueError("label_persistence must be in [0, 1]")
    if not 0.0 <= inter_label_coherence <= 1.0:
        raise ValueError("inter_label_coherence must be in [0, 1]")

    cluster_of = rng.integers(0, num_clusters, size=num_vertices)
    label_probs = zipf_label_distribution(num_labels, label_exponent)
    # Cluster labels follow the same skew as the noise labels, so the
    # overall label frequency distribution matches the (heavily skewed)
    # distributions of real edge-labeled networks.  Walking the ring, each
    # cluster inherits its predecessor's label with `label_persistence`,
    # producing contiguous same-label regions.
    cluster_label = rng.choice(num_labels, size=num_clusters, p=label_probs)
    if label_persistence > 0:
        keep = rng.random(num_clusters) < label_persistence
        for c in range(1, num_clusters):
            if keep[c]:
                cluster_label[c] = cluster_label[c - 1]

    # Oversample: dedup + self-loop removal eat a few percent of the draws.
    target_intra = int(num_edges * intra_fraction)
    target_inter = num_edges - target_intra

    members: list[np.ndarray] = [
        np.nonzero(cluster_of == c)[0] for c in range(num_clusters)
    ]
    cluster_sizes = np.array([len(m) for m in members], dtype=np.float64)
    eligible = cluster_sizes >= 2
    if eligible.any() and target_intra > 0:
        pick_probs = np.where(eligible, cluster_sizes, 0.0)
        pick_probs /= pick_probs.sum()
        chosen = rng.choice(num_clusters, size=int(target_intra * 1.3), p=pick_probs)
        intra_u = np.empty(len(chosen), dtype=np.int64)
        intra_v = np.empty(len(chosen), dtype=np.int64)
        intra_l = np.empty(len(chosen), dtype=np.int64)
        for i, c in enumerate(chosen):
            pair = rng.choice(members[c], size=2, replace=False)
            intra_u[i], intra_v[i] = pair
            intra_l[i] = cluster_label[c]
        noisy = rng.random(len(chosen)) < label_noise
        intra_l[noisy] = rng.choice(num_labels, size=int(noisy.sum()), p=label_probs)
    else:
        intra_u = intra_v = intra_l = np.empty(0, dtype=np.int64)

    size_inter = int(target_inter * 1.3) + 8
    inter_u = rng.integers(0, num_vertices, size=size_inter)
    inter_v = rng.integers(0, num_vertices, size=size_inter)
    if num_clusters > 1:
        # Kleinberg-style rewiring on the cluster ring: with probability
        # `locality` an inter edge jumps exactly one cluster; otherwise the
        # jump length follows a steep power law.  Long-range shortcuts stay
        # rare, so the ring's diameter survives realistic edge densities.
        max_jump = max(1, num_clusters // 2)
        jump_weights = np.arange(1, max_jump + 1, dtype=np.float64) ** -2.2
        jump_probs = jump_weights / jump_weights.sum()
        jumps = np.where(
            rng.random(size_inter) < locality,
            1,
            rng.choice(np.arange(1, max_jump + 1), size=size_inter, p=jump_probs),
        )
        signs = np.where(rng.random(size_inter) < 0.5, 1, -1)
        target_cluster = (cluster_of[inter_u] + signs * jumps) % num_clusters
        replacement = np.empty(size_inter, dtype=np.int64)
        for i, c in enumerate(target_cluster):
            pool = members[c]
            if len(pool) == 0:
                replacement[i] = inter_v[i]
            else:
                replacement[i] = pool[rng.integers(0, len(pool))]
        inter_v = replacement
    inter_l = rng.choice(num_labels, size=size_inter, p=label_probs)
    if inter_label_coherence > 0:
        coherent = rng.random(size_inter) < inter_label_coherence
        inter_l = np.where(coherent, cluster_label[cluster_of[inter_u]], inter_l)

    u = np.concatenate([intra_u, inter_u])
    v = np.concatenate([intra_v, inter_v])
    labels = np.concatenate([intra_l, inter_l])
    u, v, labels = _dedup_edges(u, v, labels)
    if len(u) > num_edges:
        keep = rng.choice(len(u), size=num_edges, replace=False)
        u, v, labels = u[keep], v[keep], labels[keep]

    edges = list(zip(u.tolist(), v.tolist(), labels.tolist()))
    return EdgeLabeledGraph.from_edges(
        num_vertices, edges, num_labels=num_labels, directed=False
    )


def labeled_erdos_renyi(
    num_vertices: int,
    num_edges: int,
    num_labels: int,
    label_exponent: float = 0.0,
    seed: int | None = 0,
) -> EdgeLabeledGraph:
    """G(n, m) with labels drawn i.i.d. from a Zipf(``label_exponent``) law."""
    rng = np.random.default_rng(seed)
    label_probs = zipf_label_distribution(num_labels, label_exponent)
    size = int(num_edges * 1.2) + 8
    u = rng.integers(0, num_vertices, size=size)
    v = rng.integers(0, num_vertices, size=size)
    labels = rng.choice(num_labels, size=size, p=label_probs)
    u, v, labels = _dedup_edges(u, v, labels)
    if len(u) > num_edges:
        keep = rng.choice(len(u), size=num_edges, replace=False)
        u, v, labels = u[keep], v[keep], labels[keep]
    edges = list(zip(u.tolist(), v.tolist(), labels.tolist()))
    return EdgeLabeledGraph.from_edges(
        num_vertices, edges, num_labels=num_labels, directed=False
    )


def labeled_barabasi_albert(
    num_vertices: int,
    edges_per_vertex: int,
    num_labels: int,
    preference_strength: float = 0.6,
    label_exponent: float = 0.5,
    seed: int | None = 0,
) -> EdgeLabeledGraph:
    """Preferential-attachment graph with vertex-correlated labels.

    Each vertex draws a preferred label from a Zipf law; a new edge carries
    the preferred label of one of its endpoints with probability
    ``preference_strength`` and a random Zipf label otherwise.  The result
    has a power-law degree distribution (social-network-like) with label
    assortativity, the regime the paper contrasts with road networks.
    """
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = np.random.default_rng(seed)
    label_probs = zipf_label_distribution(num_labels, label_exponent)
    preferred = rng.choice(num_labels, size=num_vertices, p=label_probs)

    # Repeated-targets implementation of Barabási–Albert attachment.
    targets = list(range(edges_per_vertex))
    repeated: list[int] = []
    edges: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int]] = set()
    for source in range(edges_per_vertex, num_vertices):
        for t in set(targets):
            key = (min(source, t), max(source, t))
            if key in seen:
                continue
            seen.add(key)
            if rng.random() < preference_strength:
                endpoint = source if rng.random() < 0.5 else t
                label = int(preferred[endpoint])
            else:
                label = int(rng.choice(num_labels, p=label_probs))
            edges.append((source, t, label))
        repeated.extend(targets)
        repeated.extend([source] * edges_per_vertex)
        idx = rng.integers(0, len(repeated), size=edges_per_vertex)
        targets = [repeated[i] for i in idx]
        targets = [t if t != source else (source - 1) for t in targets]
    return EdgeLabeledGraph.from_edges(
        num_vertices, edges, num_labels=num_labels, directed=False
    )


def labeled_grid(
    width: int,
    height: int,
    num_labels: int,
    patch_size: int = 4,
    noise: float = 0.1,
    seed: int | None = 0,
) -> EdgeLabeledGraph:
    """Road-network-like lattice with locally coherent labels.

    The plane is tiled into ``patch_size``-sized patches; each patch picks a
    label ("road category") and all edges inside it carry that label, with a
    ``noise`` fraction relabeled at random.  Grids have large diameter and
    tiny separators — the structure contraction hierarchies exploit — so
    this family is used to show the Rice–Tsotras baseline winning where it
    should.
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    rng = np.random.default_rng(seed)
    patches_x = (width + patch_size - 1) // patch_size
    patches_y = (height + patch_size - 1) // patch_size
    patch_label = rng.integers(0, num_labels, size=(patches_x, patches_y))

    def vertex(x: int, y: int) -> int:
        return x * height + y

    def label_at(x: int, y: int) -> int:
        if rng.random() < noise:
            return int(rng.integers(0, num_labels))
        return int(patch_label[x // patch_size, y // patch_size])

    edges = []
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                edges.append((vertex(x, y), vertex(x + 1, y), label_at(x, y)))
            if y + 1 < height:
                edges.append((vertex(x, y), vertex(x, y + 1), label_at(x, y)))
    return EdgeLabeledGraph.from_edges(
        width * height, edges, num_labels=num_labels, directed=False
    )
