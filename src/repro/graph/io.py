"""Loading and saving edge-labeled graphs.

Two formats are supported:

* **Edge-list text** — one edge per line, ``u v label`` separated by
  whitespace (or a custom delimiter).  Vertices and labels may be arbitrary
  strings; comment lines start with ``#``.  This matches how the public
  snapshots of the paper's datasets (BioGrid, String, YouTube, ...) are
  distributed, so the loaders work unchanged if a user supplies the real
  files.
* **NPZ binary** — the CSR arrays saved verbatim with numpy, for fast
  round-tripping of generated graphs.
"""

from __future__ import annotations

import os

import numpy as np

from .builder import GraphBuilder
from .labeled_graph import EdgeLabeledGraph
from .labelsets import LabelUniverse

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_npz",
    "save_npz",
]


def load_edge_list(
    path: str | os.PathLike,
    directed: bool = False,
    delimiter: str | None = None,
) -> EdgeLabeledGraph:
    """Parse a ``u v label`` edge-list file into a graph.

    Raises ``ValueError`` on malformed lines (fewer than three fields) so
    that silent data truncation cannot occur.
    """
    builder = GraphBuilder(directed=directed)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(delimiter)
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 'u v label', got {line!r}"
                )
            u, v, label = parts[0], parts[1], parts[2]
            if u == v:
                continue  # drop self-loops, as the graph model requires
            builder.add_edge(u, v, label)
    return builder.build()


def save_edge_list(graph: EdgeLabeledGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` as a ``u v label`` text file (dense ids, label names)."""
    universe = graph.label_universe
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# n={graph.num_vertices} m={graph.num_edges} labels={graph.num_labels}\n")
        for u, v, label in graph.iter_edges():
            name = universe.name(label) if universe is not None else str(label)
            handle.write(f"{u} {v} {name}\n")


def save_npz(graph: EdgeLabeledGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays (and label names, if any) to an ``.npz`` file."""
    # Fixed-width unicode (never dtype=object): lets load_npz use
    # allow_pickle=False, so untrusted .npz files cannot execute code.
    names = (
        np.array(graph.label_universe.names, dtype=np.str_)
        if graph.label_universe is not None
        else np.array([], dtype=np.str_)
    )
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        neighbors=graph.neighbors,
        edge_labels=graph.edge_labels,
        num_labels=np.int64(graph.num_labels),
        directed=np.bool_(graph.directed),
        num_edges=np.int64(graph.num_edges),
        label_names=names,
    )


def load_npz(path: str | os.PathLike) -> EdgeLabeledGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        names = list(data["label_names"])
        universe = LabelUniverse(str(n) for n in names) if names else None
        return EdgeLabeledGraph(
            indptr=data["indptr"],
            neighbors=data["neighbors"],
            edge_labels=data["edge_labels"],
            num_labels=int(data["num_labels"]),
            directed=bool(data["directed"]),
            label_universe=universe,
            num_edges=int(data["num_edges"]),
        )
