"""The asyncio serving application: routing, batching, and the server.

Request flow for ``POST /graphs/{name}/query``::

    connection handler ──> dispatch ──> MicroBatcher.submit
                                             │  (coalesce ~2 ms / max_batch)
                                             ▼
                              ThreadPoolExecutor: session.run(batch)
                                             │  (numpy work off the loop)
                                             ▼
                              answers scattered back per request

One :class:`~repro.serve.batching.MicroBatcher` exists per
``(graph, oracle)`` key, feeding the warm
:class:`~repro.engine.QuerySession` the :class:`GraphRegistry` holds for
that key; engine execution runs on a small thread pool so the event loop
never blocks on numpy, and a per-key mutex keeps each session
single-threaded.  Answers ride the wire as JSON numbers produced by
Python ``repr`` — float64 round-trips exactly, so HTTP answers are
bit-identical to in-process ``execute_batch`` (asserted across every
oracle family in ``tests/test_serve.py`` and the differential harness's
``http`` axis).  Unreachable is ``null`` on the wire (JSON has no
``Infinity``).

Endpoints (full reference in ``docs/SERVING.md``):

====== ============================ =======================================
GET    ``/healthz``                 liveness + uptime
GET    ``/graphs``                  registry metadata listing
GET    ``/metrics``                 Prometheus text exposition
POST   ``/graphs/{name}/query``     single ``{source, target, labels}`` or
                                    batch ``{queries: [...]}``
POST   ``/graphs/{name}/delta``     hot-reload a dynamic-graph delta
====== ============================ =======================================
"""

from __future__ import annotations

import asyncio
import math
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..graph.delta import GraphDelta
from ..graph.labelsets import full_mask, mask_from_labels
from ..obs.metrics import registry as _metrics_registry
from ..store.format import FormatError
from .batching import MicroBatcher, Triple
from .http import (
    HttpError,
    HttpRequest,
    json_response_bytes,
    read_request,
    response_bytes,
)
from .registry import GraphRegistry, UnknownGraphError, UnknownOracleError

__all__ = ["ServeConfig", "ServeApp", "ReproServer", "ServerThread"]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


@dataclass
class ServeConfig:
    """Deployment knobs; every field has a ``REPRO_SERVE_*`` env default."""

    host: str = "127.0.0.1"
    port: int = 8321
    batch_window: float = 0.002
    batch_max: int = 256
    workers: int = 2
    max_sessions: int = 32
    cache_size: int = 4096
    kernel: str | None = None

    @classmethod
    def from_env(cls) -> "ServeConfig":
        return cls(
            host=os.environ.get("REPRO_SERVE_HOST", cls.host),
            port=_env_int("REPRO_SERVE_PORT", cls.port),
            batch_window=_env_float("REPRO_SERVE_BATCH_WINDOW", cls.batch_window),
            batch_max=_env_int("REPRO_SERVE_BATCH_MAX", cls.batch_max),
            workers=_env_int("REPRO_SERVE_WORKERS", cls.workers),
            max_sessions=_env_int("REPRO_SERVE_MAX_SESSIONS", cls.max_sessions),
            cache_size=_env_int("REPRO_SERVE_CACHE_SIZE", cls.cache_size),
            kernel=os.environ.get("REPRO_SERVE_KERNEL") or None,
        )


def wire_distance(value: float) -> float | None:
    """A distance as it rides the wire: ``inf`` becomes ``None``/``null``.

    Finite float64 values serialize via Python ``repr`` (the ``json``
    module's float formatting), which round-trips bit-exactly.
    """
    return None if math.isinf(value) else float(value)


def from_wire_distance(value: float | None) -> float:
    """Inverse of :func:`wire_distance` for clients."""
    return math.inf if value is None else float(value)


class ServeApp:
    """Routes + per-(graph, oracle) micro-batchers over a registry."""

    def __init__(
        self,
        registry: GraphRegistry | None = None,
        config: ServeConfig | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or GraphRegistry(
            max_sessions=self.config.max_sessions,
            cache_size=self.config.cache_size,
            kernel=self.config.kernel,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        self._batchers: dict[tuple[str, str], MicroBatcher] = {}
        # One mutex per (graph, oracle): QuerySession is not thread-safe,
        # so even with many pool workers each session runs one batch at a
        # time; the delta handler grabs every lock of a graph to quiesce
        # it during rebind.
        self._key_locks: dict[tuple[str, str], threading.Lock] = {}
        self._state_lock = threading.Lock()
        self._started = perf_counter()
        # Live connection-handler tasks; cancelled on server stop so
        # keep-alive connections never outlive the loop.
        self._connections: set["asyncio.Task[Any]"] = set()

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def _key_lock(self, key: tuple[str, str]) -> threading.Lock:
        with self._state_lock:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    def _execute_sync(
        self, name: str, kind: str, triples: list[Triple]
    ) -> list[float]:
        session = self.registry.session(name, kind)
        with self._key_lock((name, kind)):
            return session.run(triples)

    def batcher(self, name: str, kind: str) -> MicroBatcher:
        key = (name, kind)
        with self._state_lock:
            batcher = self._batchers.get(key)
            if batcher is None:

                def execute(
                    triples: list[Triple], _name: str = name, _kind: str = kind
                ) -> "asyncio.Future[list[float]]":
                    loop = asyncio.get_running_loop()
                    return loop.run_in_executor(
                        self.executor, self._execute_sync, _name, _kind, triples
                    )

                batcher = MicroBatcher(
                    execute,
                    window=self.config.batch_window,
                    max_batch=self.config.batch_max,
                )
                self._batchers[key] = batcher
            return batcher

    def close(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_vertex(value: Any, field: str, num_vertices: int) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise HttpError(400, f"{field!r} must be an integer vertex id")
        if not 0 <= value < num_vertices:
            raise HttpError(
                400,
                f"{field!r} out of range: {value} "
                f"(graph has {num_vertices} vertices)",
            )
        return value

    @staticmethod
    def _coerce_mask(item: dict[str, Any], num_labels: int) -> int:
        if "mask" in item and "labels" in item:
            raise HttpError(400, "give either 'mask' or 'labels', not both")
        if "mask" in item:
            mask = item["mask"]
            if isinstance(mask, bool) or not isinstance(mask, int) or mask < 0:
                raise HttpError(400, "'mask' must be a non-negative integer")
            return mask
        if "labels" in item:
            labels = item["labels"]
            if not isinstance(labels, list) or any(
                isinstance(x, bool) or not isinstance(x, int) or x < 0
                for x in labels
            ):
                raise HttpError(
                    400, "'labels' must be a list of non-negative label ids"
                )
            return mask_from_labels(labels)
        return full_mask(num_labels)  # unconstrained query

    def _parse_query_item(
        self, item: Any, num_vertices: int, num_labels: int
    ) -> Triple:
        if isinstance(item, list):
            if len(item) != 3:
                raise HttpError(
                    400, "triple-form queries must be [source, target, mask]"
                )
            item = {"source": item[0], "target": item[1], "mask": item[2]}
        if not isinstance(item, dict):
            raise HttpError(400, "each query must be an object or a triple")
        source = self._coerce_vertex(item.get("source"), "source", num_vertices)
        target = self._coerce_vertex(item.get("target"), "target", num_vertices)
        mask = self._coerce_mask(item, num_labels)
        return (source, target, mask)

    def _resolve_oracle_kind(self, name: str, payload: dict[str, Any]) -> str:
        kinds = self.registry.oracle_kinds(name)
        if not kinds:
            raise HttpError(404, f"graph {name!r} has no oracles")
        kind = payload.get("oracle")
        if kind is None:
            return kinds[0]
        if not isinstance(kind, str):
            raise HttpError(400, "'oracle' must be a string")
        if kind not in kinds:
            raise HttpError(
                404, f"graph {name!r} has no {kind!r} oracle (available: {kinds})"
            )
        return kind

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def handle_query(self, name: str, request: HttpRequest) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        try:
            graph = self.registry.graph(name)
        except UnknownGraphError:
            raise HttpError(404, f"unknown graph {name!r}") from None
        kind = self._resolve_oracle_kind(name, payload)
        num_vertices = int(graph.num_vertices)
        num_labels = int(graph.num_labels)

        batch_mode = "queries" in payload
        if batch_mode:
            raw = payload["queries"]
            if not isinstance(raw, list):
                raise HttpError(400, "'queries' must be a list")
            triples = [
                self._parse_query_item(item, num_vertices, num_labels)
                for item in raw
            ]
        else:
            triples = [self._parse_query_item(payload, num_vertices, num_labels)]

        try:
            answers = await self.batcher(name, kind).submit(triples)
        except UnknownOracleError as exc:
            raise HttpError(404, str(exc)) from None
        except FormatError as exc:
            raise HttpError(500, f"index load failed: {exc}") from None

        if batch_mode:
            body: dict[str, Any] = {
                "graph": name,
                "oracle": kind,
                "distances": [wire_distance(d) for d in answers],
            }
        else:
            body = {
                "graph": name,
                "oracle": kind,
                "distance": wire_distance(answers[0]),
                "reachable": not math.isinf(answers[0]),
            }
        return json_response_bytes(200, body, keep_alive=request.keep_alive)

    async def handle_delta(self, name: str, request: HttpRequest) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")

        def ops(field: str, arity: int) -> tuple[tuple[int, ...], ...]:
            raw = payload.get(field, [])
            if not isinstance(raw, list):
                raise HttpError(400, f"{field!r} must be a list")
            out = []
            for op in raw:
                if (
                    not isinstance(op, list)
                    or len(op) != arity
                    or any(
                        isinstance(x, bool) or not isinstance(x, int) for x in op
                    )
                ):
                    raise HttpError(
                        400, f"each {field!r} op must be {arity} integers"
                    )
                out.append(tuple(op))
            return tuple(out)

        delta = GraphDelta(
            insertions=ops("insertions", 3),  # type: ignore[arg-type]
            deletions=ops("deletions", 3),  # type: ignore[arg-type]
            relabels=ops("relabels", 4),  # type: ignore[arg-type]
        )

        def apply_locked() -> dict[str, Any]:
            # Quiesce every session of this graph before mutating it.
            kinds = sorted(
                {k for (n, k) in self.registry.session_keys() if n == name}
            )
            locks = [self._key_lock((name, kind)) for kind in kinds]
            for lock in locks:
                lock.acquire()
            try:
                return self.registry.apply_delta(name, delta)
            finally:
                for lock in reversed(locks):
                    lock.release()

        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self.executor, apply_locked)
        except UnknownGraphError:
            raise HttpError(404, f"unknown graph {name!r}") from None
        except (ValueError, KeyError) as exc:
            raise HttpError(400, f"invalid delta: {exc}") from None
        return json_response_bytes(200, result, keep_alive=request.keep_alive)

    def handle_healthz(self, request: HttpRequest) -> bytes:
        body = {
            "status": "ok",
            "uptime_seconds": perf_counter() - self._started,
            "graphs": len(self.registry.graph_names()),
            "sessions": len(self.registry.session_keys()),
        }
        return json_response_bytes(200, body, keep_alive=request.keep_alive)

    def handle_graphs(self, request: HttpRequest) -> bytes:
        body = {"graphs": self.registry.describe()}
        return json_response_bytes(200, body, keep_alive=request.keep_alive)

    def handle_metrics(self, request: HttpRequest) -> bytes:
        text = _metrics_registry().to_prometheus()
        return response_bytes(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
            keep_alive=request.keep_alive,
        )

    # ------------------------------------------------------------------
    # Dispatch + connection loop
    # ------------------------------------------------------------------
    async def dispatch(self, request: HttpRequest) -> bytes:
        segments = request.segments
        if request.method == "GET":
            if segments == ["healthz"]:
                return self.handle_healthz(request)
            if segments == ["graphs"]:
                return self.handle_graphs(request)
            if segments == ["metrics"]:
                return self.handle_metrics(request)
        elif request.method == "POST":
            if len(segments) == 3 and segments[0] == "graphs":
                name, action = segments[1], segments[2]
                if action == "query":
                    return await self.handle_query(name, request)
                if action == "delta":
                    return await self.handle_delta(name, request)
        elif request.method not in ("GET", "POST", "HEAD"):
            raise HttpError(405, f"method {request.method} not allowed")
        raise HttpError(404, f"no route for {request.method} {request.path}")

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        registry = _metrics_registry()
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    registry.counter("serve.http_errors").inc()
                    writer.write(
                        json_response_bytes(
                            exc.status, {"error": exc.message}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                registry.counter("serve.http_requests").inc()
                started = perf_counter()
                try:
                    response = await self.dispatch(request)
                except HttpError as exc:
                    registry.counter("serve.http_errors").inc()
                    response = json_response_bytes(
                        exc.status,
                        {"error": exc.message},
                        keep_alive=request.keep_alive,
                    )
                except Exception as exc:
                    registry.counter("serve.http_errors").inc()
                    response = json_response_bytes(
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        keep_alive=request.keep_alive,
                    )
                registry.histogram(
                    "serve.request_seconds", lo=1e-6, hi=100.0
                ).observe(perf_counter() - started)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass  # RuntimeError: transport already torn down with loop


class ReproServer:
    """An app bound to a TCP port inside a running event loop."""

    def __init__(self, app: ServeApp, host: str | None = None, port: int | None = None) -> None:
        self.app = app
        self.host = host if host is not None else app.config.host
        # port 0 asks the kernel for an ephemeral port (tests).
        self.port = port if port is not None else app.config.port
        self._server: asyncio.Server | None = None

    async def start(self) -> "ReproServer":
        self._server = await asyncio.start_server(
            self.app.handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # wait_closed() only covers the listener; idle keep-alive
        # connections still have handler tasks parked in read_request.
        for task in list(self.app._connections):
            task.cancel()
        if self.app._connections:
            await asyncio.gather(
                *self.app._connections, return_exceptions=True
            )
        self.app.close()

    @property
    def url(self) -> str:
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::") else self.host
        return f"http://{host}:{self.port}"


class ServerThread:
    """A live server on a background thread — the in-process test harness.

    ::

        with ServerThread(app) as server:
            http.client.HTTPConnection("127.0.0.1", server.port)
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self.server = ReproServer(app, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._bound = False

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            self._stop_event = asyncio.Event()
            # start_server begins accepting immediately; no serve_forever
            # needed — just keep the loop alive until stop() fires.
            await self.server.start()
            self._bound = True
            self._ready.set()
            await self._stop_event.wait()
            await self.server.stop()

        try:
            loop.run_until_complete(main())
        finally:
            self._ready.set()  # unblock start() even if startup failed
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start")
        if not self._bound:
            raise RuntimeError("server failed to bind")
        return self

    def stop(self) -> None:
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
