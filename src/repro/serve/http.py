"""A minimal, dependency-free HTTP/1.1 codec over asyncio streams.

The serving layer deliberately speaks plain HTTP/1.1 with nothing but the
stdlib: CI images and production workers need no web framework, and the
whole wire format stays small enough to audit.  Supported surface:

* request line + headers + ``Content-Length`` bodies (no chunked
  transfer-encoding, no multipart — every endpoint is JSON);
* keep-alive connections (HTTP/1.1 default; ``Connection: close``
  honored both ways);
* hard limits on header block and body size, answered with 431/413
  instead of unbounded buffering.

Malformed input never raises out of :func:`read_request` as a stray
exception type: protocol problems surface as :class:`HttpError` carrying
the status code the connection handler should answer with, and a cleanly
closed or half-open socket returns ``None``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import unquote

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "response_bytes",
    "json_response_bytes",
    "STATUS_REASONS",
]

#: Maximum size of the request line + header block, in bytes.
MAX_HEADER_BYTES = 32 * 1024
#: Maximum request body size, in bytes (batch queries are bounded anyway).
MAX_BODY_BYTES = 32 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level problem with the status the peer should receive."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split path, lowercase headers, body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True

    @property
    def segments(self) -> list[str]:
        """Decoded, non-empty path segments (``/graphs/g1/query`` →
        ``["graphs", "g1", "query"]``)."""
        return [unquote(part) for part in self.path.split("/") if part]

    def json(self) -> Any:
        """The body decoded as JSON; :class:`HttpError` 400 on failure."""
        if not self.body:
            raise HttpError(400, "expected a JSON request body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


def _parse_request_line(line: str) -> tuple[str, str, str]:
    parts = line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    return method.upper(), target, version


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one request off the stream.

    Returns ``None`` when the peer closed the connection cleanly before
    (or while) sending a request line; raises :class:`HttpError` for
    anything malformed or over the configured limits.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "header block exceeds the size limit") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(431, "header block exceeds the size limit")

    try:
        text = header_block.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable header block") from exc
    lines = [line for line in text.split("\r\n") if line]
    if not lines:
        raise HttpError(400, "empty request")
    method, target, version = _parse_request_line(lines[0])
    headers = _parse_headers(lines[1:])

    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked transfer-encoding is not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "invalid Content-Length header") from exc
        if length < 0:
            raise HttpError(400, "invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body exceeds the size limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "connection closed mid-body") from exc

    path = target.split("?", 1)[0]
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"
    return HttpRequest(
        method=method, path=path, headers=headers, body=body,
        keep_alive=keep_alive,
    )


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    """Serialize one complete response, ready for ``writer.write``."""
    reason = STATUS_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def json_response_bytes(
    status: int, payload: Any, keep_alive: bool = True
) -> bytes:
    """A JSON response (compact separators; payload must be JSON-clean)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return response_bytes(status, body, keep_alive=keep_alive)
