"""Multi-graph registry: warm query sessions over loaded indexes.

The registry is the serving layer's state: a set of named graphs, each
with one or more oracle families, served through warm
:class:`~repro.engine.QuerySession`\\ s.  Three registration styles:

* **in-memory** — :meth:`GraphRegistry.register` with already-built
  oracles (tests, notebooks, the differential harness's wire axis);
* **lazy loaders** — :meth:`register_loader` with a zero-argument
  callable, invoked **single-flight** on first touch: when N concurrent
  requests race on a cold oracle, exactly one loads it and the rest wait
  for that load, so a multi-gigabyte index never deserializes twice;
* **store-backed** — :meth:`register_store` wires the loaders to a
  fingerprint-addressed :class:`~repro.store.cache.IndexStore`, so the
  REPROIDX/npz files written by builds and the eval CLI's
  ``--save-index`` serve directly.  The store's embedded-fingerprint
  verification runs on every load: an index file built for a different
  graph is rejected (:class:`~repro.store.format.FormatError`), never
  silently served.

Sessions are cached per ``(graph, oracle)`` key with LRU eviction under
``max_sessions``; evicted sessions publish their stats so no engine
accounting is lost.  :meth:`apply_delta` is the hot-reload path: it
applies a :class:`~repro.graph.delta.GraphDelta`, incrementally repairs
every loaded oracle (:func:`repro.core.dynamic.repair_index`), and
rebinds the live sessions — in-flight caches migrate or invalidate per
:meth:`QuerySession.rebind` semantics, so no stale answer survives.

The registry is thread-safe: the asyncio server executes engine work on
a thread pool, and loads/rebinds synchronize on internal locks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.types import DistanceOracle
from ..engine import QuerySession
from ..graph.delta import GraphDelta, apply_delta
from ..graph.labeled_graph import EdgeLabeledGraph
from ..obs.metrics import registry as _metrics_registry

if TYPE_CHECKING:
    from ..store.cache import IndexStore

__all__ = ["GraphRegistry", "UnknownGraphError", "UnknownOracleError"]


class UnknownGraphError(KeyError):
    """Query for a graph name that was never registered."""


class UnknownOracleError(KeyError):
    """Query for an oracle family the graph does not provide."""


@dataclass
class _GraphEntry:
    graph: EdgeLabeledGraph
    oracles: dict[str, DistanceOracle] = field(default_factory=dict)
    loaders: dict[str, Callable[[], DistanceOracle]] = field(
        default_factory=dict
    )

    def oracle_kinds(self) -> list[str]:
        return sorted(set(self.oracles) | set(self.loaders))


class GraphRegistry:
    """Named graphs + lazily loaded oracles + warm LRU'd sessions."""

    def __init__(
        self,
        max_sessions: int = 32,
        cache_size: int = 4096,
        plan_cache_size: int = 128,
        kernel: str | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.cache_size = cache_size
        self.plan_cache_size = plan_cache_size
        self.kernel = kernel
        self._entries: dict[str, _GraphEntry] = {}
        self._sessions: OrderedDict[tuple[str, str], QuerySession] = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self._inflight: dict[tuple[str, str], threading.Event] = {}
        #: (graph, kind) -> number of times the loader actually ran;
        #: the single-flight tests pin this at 1 under concurrency.
        self.load_counts: dict[tuple[str, str], int] = {}
        #: sessions dropped by the LRU cap over this registry's lifetime.
        self.session_evictions = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: EdgeLabeledGraph | None = None,
        oracles: dict[str, DistanceOracle] | None = None,
    ) -> None:
        """Register ``name``, optionally with pre-built oracles.

        ``graph`` may be omitted when ``oracles`` is given (it is taken
        from the first oracle).  Registering an existing name replaces
        its entry and drops its sessions.
        """
        oracles = dict(oracles or {})
        if graph is None:
            if not oracles:
                raise ValueError("register() needs a graph or oracles")
            graph = next(iter(oracles.values())).graph
        with self._lock:
            self._entries[name] = _GraphEntry(graph=graph, oracles=oracles)
            self._drop_sessions(name)

    def register_loader(
        self, name: str, kind: str, loader: Callable[[], DistanceOracle]
    ) -> None:
        """Attach a lazy oracle loader to an already-registered graph."""
        with self._lock:
            self._entry(name).loaders[kind] = loader

    def register_store(
        self,
        name: str,
        graph: EdgeLabeledGraph,
        store: "IndexStore",
        kinds: Iterable[str] = ("powcov", "chromland"),
        tag: str = "default",
    ) -> None:
        """Register ``graph`` with loaders over a fingerprint-keyed store.

        Each listed kind loads on first touch via ``store.load`` (which
        re-verifies the file's embedded fingerprint against ``graph``);
        a kind with no file in the store raises
        :class:`UnknownOracleError` at load time, not at registration.
        """
        self.register(name, graph)
        for kind in kinds:
            self.register_loader(
                name, kind, self._store_loader(name, kind, store, graph, tag)
            )

    @staticmethod
    def _store_loader(
        name: str,
        kind: str,
        store: "IndexStore",
        graph: EdgeLabeledGraph,
        tag: str,
    ) -> Callable[[], DistanceOracle]:
        def load() -> DistanceOracle:
            index = store.load(kind, graph, tag=tag)
            if index is None:
                raise UnknownOracleError(
                    f"no {kind!r} index for graph {name!r} in "
                    f"{store.directory!r}"
                )
            return index

        return load

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)
            self._drop_sessions(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _entry(self, name: str) -> _GraphEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownGraphError(name) from None

    def graph_names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def graph(self, name: str) -> EdgeLabeledGraph:
        with self._lock:
            return self._entry(name).graph

    def oracle_kinds(self, name: str) -> list[str]:
        """Every oracle family ``name`` can serve (loaded or lazy)."""
        with self._lock:
            return self._entry(name).oracle_kinds()

    def describe(self) -> list[dict[str, Any]]:
        """One JSON-clean info dict per registered graph (``GET /graphs``)."""
        with self._lock:
            out = []
            for name in sorted(self._entries):
                entry = self._entries[name]
                graph = entry.graph
                out.append({
                    "name": name,
                    "num_vertices": int(graph.num_vertices),
                    "num_edges": int(graph.num_edges),
                    "num_labels": int(graph.num_labels),
                    "directed": bool(graph.directed),
                    "version": int(getattr(graph, "version", 0)),
                    "oracles": entry.oracle_kinds(),
                    "loaded": sorted(entry.oracles),
                    "sessions": [
                        kind for (n, kind) in self._sessions if n == name
                    ],
                })
            return out

    # ------------------------------------------------------------------
    # Single-flight oracle loading
    # ------------------------------------------------------------------
    def oracle(self, name: str, kind: str) -> DistanceOracle:
        """The named oracle, loading it on first touch (single-flight)."""
        key = (name, kind)
        while True:
            with self._lock:
                entry = self._entry(name)
                oracle = entry.oracles.get(kind)
                if oracle is not None:
                    return oracle
                loader = entry.loaders.get(kind)
                if loader is None:
                    raise UnknownOracleError(
                        f"graph {name!r} has no {kind!r} oracle "
                        f"(available: {entry.oracle_kinds()})"
                    )
                waiter = self._inflight.get(key)
                if waiter is None:
                    # We are the loading leader for this key.
                    waiter = threading.Event()
                    self._inflight[key] = waiter
                    break
            # Another thread is loading this key: wait, then re-check
            # (re-raising through a fresh load attempt if theirs failed).
            waiter.wait()
        try:
            loaded = loader()
            with self._lock:
                self.load_counts[key] = self.load_counts.get(key, 0) + 1
                entry.oracles[kind] = loaded
            _metrics_registry().counter("serve.oracles_loaded").inc()
            return loaded
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            waiter.set()

    # ------------------------------------------------------------------
    # Warm sessions (LRU)
    # ------------------------------------------------------------------
    def session(self, name: str, kind: str) -> QuerySession:
        """The warm session for ``(name, kind)``, creating it on demand."""
        key = (name, kind)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                return session
        oracle = self.oracle(name, kind)  # may load outside the lock
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = QuerySession(
                    oracle,
                    cache_size=self.cache_size,
                    plan_cache_size=self.plan_cache_size,
                    kernel=self.kernel,
                )
                self._sessions[key] = session
                _metrics_registry().gauge("serve.sessions").set(
                    len(self._sessions)
                )
            self._sessions.move_to_end(key)
            while len(self._sessions) > self.max_sessions:
                _evicted_key, evicted = self._sessions.popitem(last=False)
                evicted.publish_stats()
                self.session_evictions += 1
                _metrics_registry().counter("serve.session_evictions").inc()
                _metrics_registry().gauge("serve.sessions").set(
                    len(self._sessions)
                )
            return session

    def session_keys(self) -> list[tuple[str, str]]:
        with self._lock:
            return list(self._sessions)

    def _drop_sessions(self, name: str) -> None:
        for key in [k for k in self._sessions if k[0] == name]:
            self._sessions.pop(key).publish_stats()

    # ------------------------------------------------------------------
    # Hot reload: dynamic-graph deltas
    # ------------------------------------------------------------------
    def apply_delta(self, name: str, delta: GraphDelta) -> dict[str, Any]:
        """Mutate a graph in place: repair loaded oracles, rebind sessions.

        Every *loaded* oracle of the graph is incrementally repaired onto
        the new version (:func:`repro.core.dynamic.repair_index`); lazy
        loaders that never fired stay lazy — their store files describe
        the old fingerprint and would be rejected, so they are dropped.
        Live sessions rebind, migrating still-valid cached answers and
        invalidating the rest (no stale answers, tested in
        ``tests/test_serve_registry.py``).
        """
        from ..core.dynamic import repair_index  # local: heavy import

        with self._lock:
            entry = self._entry(name)
            new_graph = apply_delta(entry.graph, delta)
            for kind, oracle in entry.oracles.items():
                repair_index(oracle, new_graph)
                session = self._sessions.get((name, kind))
                if session is not None:
                    session.rebind(oracle)
            entry.graph = new_graph
            # Unloaded store files target the pre-delta fingerprint; they
            # can never serve the mutated graph, so forget the loaders.
            entry.loaders = {
                kind: loader
                for kind, loader in entry.loaders.items()
                if kind in entry.oracles
            }
            _metrics_registry().counter("serve.deltas_applied").inc()
            return {
                "graph": name,
                "version": int(getattr(new_graph, "version", 0)),
                "repaired": sorted(entry.oracles),
                "num_edges": int(new_graph.num_edges),
            }
