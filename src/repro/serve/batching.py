"""Micro-batching: coalesce concurrent requests into one engine batch.

Concurrent HTTP requests arrive as many tiny query lists; the engine is
fastest when it executes one large batch (one plan, one mask-group sweep
per distinct mask).  A :class:`MicroBatcher` sits between the two: every
request's queries are appended to a pending buffer, and the buffer is
flushed as **one** ``session.run``-shaped call when either

* the configured coalescing window (default ~2 ms) elapses after the
  first pending request, or
* the pending buffer reaches ``max_batch`` queries (closed-loop traffic
  almost always trips this first, so the window is a latency bound, not
  a tax).

Ordering and isolation guarantees, property-tested in
``tests/test_serve.py``:

* **per-request ordering** — each submitter receives exactly its own
  answers, in its own submission order, regardless of how requests were
  interleaved into flushes;
* **error isolation** — if a flushed batch fails as a whole, every
  pending request is retried individually, so a poison query fails only
  the request that carried it and every innocent neighbor still gets its
  answers.

The flush clock is injectable: with ``clock=`` and ``auto_flush=False``
the batcher never arms real timers — tests drive time explicitly through
:meth:`poll`, making window semantics deterministic under hypothesis.
"""

from __future__ import annotations

import asyncio
import inspect
from collections.abc import Awaitable, Callable, Sequence
from typing import Union

from ..obs.metrics import registry as _metrics_registry

__all__ = ["MicroBatcher"]

Triple = tuple[int, int, int]
ExecuteFn = Callable[
    [list[Triple]], Union[Sequence[float], Awaitable[Sequence[float]]]
]


class _PendingRequest:
    """One submitter's queries plus the future its answers resolve."""

    __slots__ = ("triples", "future")

    def __init__(
        self, triples: list[Triple], future: "asyncio.Future[list[float]]"
    ) -> None:
        self.triples = triples
        self.future = future


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into single engine batches.

    Parameters
    ----------
    execute:
        Called with the concatenated triples of every coalesced request;
        may return the answers directly or an awaitable of them (the
        serving app hands back ``run_in_executor`` futures so numpy work
        leaves the event loop).
    window:
        Seconds to wait after the first pending request before flushing.
        ``0`` disables coalescing-by-time: every submission flushes
        immediately, which together with ``max_batch=1`` is exactly
        batch-size-1 serving (the benchmark baseline).
    max_batch:
        Flush as soon as this many queries are pending.
    clock:
        Monotonic time source for window deadlines (test seam; defaults
        to the running loop's clock).
    auto_flush:
        ``False`` disarms real timers entirely — flushes then happen only
        via ``max_batch``, :meth:`poll`, or :meth:`flush_now`.
    """

    def __init__(
        self,
        execute: ExecuteFn,
        window: float = 0.002,
        max_batch: int = 256,
        clock: Callable[[], float] | None = None,
        auto_flush: bool = True,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._execute = execute
        self.window = window
        self.max_batch = max_batch
        self._clock = clock
        self._auto_flush = auto_flush
        self._pending: list[_PendingRequest] = []
        self._pending_queries = 0
        self._timer: asyncio.TimerHandle | None = None
        self._deadline: float | None = None
        # Strong refs to in-flight flush tasks (the loop only keeps weak
        # ones); discarded as each batch completes.
        self._tasks: set[asyncio.Task[None]] = set()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    async def submit(self, triples: Sequence[Triple]) -> list[float]:
        """Queue one request's queries; await its answers.

        Returns answers in the request's own submission order.  An empty
        request resolves immediately with an empty list.
        """
        items = [tuple(t) for t in triples]
        loop = asyncio.get_running_loop()
        if not items:
            return []
        future: "asyncio.Future[list[float]]" = loop.create_future()
        self._pending.append(_PendingRequest(items, future))
        self._pending_queries += len(items)
        if self._pending_queries >= self.max_batch or self.window == 0:
            self.flush_now()
        elif self._deadline is None:
            self._deadline = self._now() + self.window
            if self._auto_flush:
                self._timer = loop.call_later(self.window, self.flush_now)
        return await future

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    @property
    def pending_queries(self) -> int:
        return self._pending_queries

    def poll(self) -> bool:
        """Flush iff the coalescing window has expired; True if flushed.

        The manual-drive counterpart of the armed timer, used with an
        injected ``clock`` where tests advance time explicitly.
        """
        if self._deadline is not None and self._now() >= self._deadline:
            self.flush_now()
            return True
        return False

    def flush_now(self) -> None:
        """Flush whatever is pending as one batch task, immediately."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._deadline = None
        if not self._pending:
            return
        batch = self._pending
        self._pending = []
        self._pending_queries = 0
        registry = _metrics_registry()
        registry.counter("serve.batches").inc()
        registry.counter("serve.batched_requests").inc(len(batch))
        total = sum(len(p.triples) for p in batch)
        registry.histogram("serve.batch_size", lo=1.0, hi=1e5).observe(total)
        task = asyncio.get_running_loop().create_task(self._run_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _call_execute(self, triples: list[Triple]) -> list[float]:
        result = self._execute(triples)
        if inspect.isawaitable(result):
            result = await result
        answers = list(result)
        if len(answers) != len(triples):
            raise RuntimeError(
                f"execute returned {len(answers)} answers for "
                f"{len(triples)} queries"
            )
        return answers

    async def _run_batch(self, batch: list[_PendingRequest]) -> None:
        triples = [t for pending in batch for t in pending.triples]
        try:
            answers = await self._call_execute(triples)
        except Exception:
            # The whole batch failed: isolate the poison request(s) by
            # retrying each request on its own, so every healthy request
            # still resolves and only the offender sees the error.
            _metrics_registry().counter("serve.batch_retries").inc()
            for pending in batch:
                await self._resolve_individually(pending)
            return
        position = 0
        for pending in batch:
            end = position + len(pending.triples)
            if not pending.future.cancelled():
                pending.future.set_result(answers[position:end])
            position = end

    async def _resolve_individually(self, pending: _PendingRequest) -> None:
        try:
            answers = await self._call_execute(pending.triples)
        except Exception as exc:
            _metrics_registry().counter("serve.request_errors").inc()
            if not pending.future.cancelled():
                pending.future.set_exception(exc)
            return
        if not pending.future.cancelled():
            pending.future.set_result(list(answers))
