"""``python -m repro.serve`` — boot the distance-oracle query server.

Typical invocations::

    # serve a simulated dataset, building oracles at startup
    python -m repro.serve --dataset biogrid-sim --scale 0.2 --port 8321

    # serve prebuilt indexes from a fingerprint-keyed store directory
    python -m repro.serve --dataset biogrid-sim --scale 0.2 \\
        --index /var/lib/repro/indexes --oracle powcov --oracle chromland

    # CI: build + persist the indexes, then exit (the smoke step boots
    # the server against the warm store afterwards)
    python -m repro.serve --dataset biogrid-sim --scale 0.2 \\
        --index ./idx --build-if-missing --prepare-only

Every knob also reads a ``REPRO_SERVE_*`` environment default — see
``docs/SERVING.md`` and ``docs/DEVELOPING.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from ..core import (
    ChromLandIndex,
    DistanceOracle,
    ExactDijkstraOracle,
    NaivePowersetIndex,
    PowCovIndex,
)
from ..core.chromland.selection import majority_colors
from ..graph.datasets import dataset_names, load_dataset
from ..graph.labeled_graph import EdgeLabeledGraph
from ..landmarks import select_landmarks
from ..store.cache import IndexStore
from .app import ReproServer, ServeApp, ServeConfig
from .registry import GraphRegistry

__all__ = ["main"]

ORACLE_CHOICES = ("powcov", "chromland", "naive", "exact")
#: Families the index store can persist (the others rebuild at startup).
_STORABLE = ("powcov", "chromland")


def build_oracle(
    kind: str, graph: EdgeLabeledGraph, k: int, seed: int
) -> DistanceOracle:
    """Build one oracle family with the repo's default recipes."""
    if kind == "exact":
        return ExactDijkstraOracle(graph)
    landmarks = select_landmarks(graph, k, strategy="degree", seed=seed)
    if kind == "powcov":
        return PowCovIndex(graph, landmarks).build()
    if kind == "chromland":
        colors = majority_colors(graph, landmarks)
        return ChromLandIndex(graph, landmarks, colors).build()
    if kind == "naive":
        return NaivePowersetIndex(graph, landmarks).build()
    raise ValueError(f"unknown oracle kind {kind!r}")


def _parser() -> argparse.ArgumentParser:
    defaults = ServeConfig.from_env()
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve LC-PPSPD distance queries over HTTP.",
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--dataset", default="biogrid-sim",
                        choices=dataset_names(),
                        help="simulated dataset to serve")
    parser.add_argument("--graph", default=None,
                        help="name to register the graph under "
                             "(default: the dataset name)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--oracle", action="append", default=None,
                        choices=list(ORACLE_CHOICES), dest="oracles",
                        help="oracle families to serve (repeatable; "
                             "default: powcov)")
    parser.add_argument("--k", type=int, default=16,
                        help="landmarks per oracle")
    parser.add_argument("--index", default=None, metavar="DIR",
                        help="fingerprint-keyed index store directory; "
                             "powcov/chromland load lazily from here")
    parser.add_argument("--build-if-missing", action="store_true",
                        help="build + persist any storable index the "
                             "store lacks")
    parser.add_argument("--prepare-only", action="store_true",
                        help="build/persist indexes, then exit without "
                             "serving (CI warm-up)")
    parser.add_argument("--kernel", default=defaults.kernel,
                        choices=["auto", "numpy", "numba", "cext"],
                        help="execution kernel for the query engine")
    parser.add_argument("--batch-window", type=float,
                        default=defaults.batch_window,
                        help="micro-batch coalescing window in seconds "
                             "(0 disables)")
    parser.add_argument("--batch-max", type=int, default=defaults.batch_max,
                        help="flush once this many queries are pending")
    parser.add_argument("--workers", type=int, default=defaults.workers,
                        help="engine thread-pool size")
    parser.add_argument("--max-sessions", type=int,
                        default=defaults.max_sessions,
                        help="warm query sessions kept before LRU eviction")
    parser.add_argument("--cache-size", type=int, default=defaults.cache_size,
                        help="per-session answer-cache entries")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    kinds = list(dict.fromkeys(args.oracles or ["powcov"]))

    graph, spec = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    name = args.graph or args.dataset
    print(
        f"loaded {args.dataset} (scale={args.scale}): "
        f"{graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"{graph.num_labels} labels [{spec.description}]"
    )

    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        workers=args.workers,
        max_sessions=args.max_sessions,
        cache_size=args.cache_size,
        kernel=None if args.kernel in (None, "auto") else args.kernel,
    )
    registry = GraphRegistry(
        max_sessions=config.max_sessions,
        cache_size=config.cache_size,
        kernel=config.kernel,
    )

    store = IndexStore(args.index) if args.index else None
    if store is not None:
        for kind in kinds:
            if kind in _STORABLE and store.find(kind, graph) is None:
                if not (args.build_if_missing or args.prepare_only):
                    print(
                        f"error: no {kind!r} index for this graph in "
                        f"{store.directory!r} (use --build-if-missing)",
                        file=sys.stderr,
                    )
                    return 2
                print(f"building {kind} index (k={args.k})...")
                path = store.save(build_oracle(kind, graph, args.k, args.seed))
                print(f"saved {path}")
        if args.prepare_only:
            print("indexes prepared; exiting (--prepare-only)")
            return 0
        storable = [k for k in kinds if k in _STORABLE]
        if storable:
            registry.register_store(name, graph, store, kinds=storable)
        else:
            registry.register(name, graph)
    else:
        if args.prepare_only:
            print("--prepare-only needs --index", file=sys.stderr)
            return 2
        registry.register(name, graph)

    # Families the store cannot hold (and lazy loaders for the rest when
    # no store is configured) build at startup or on first touch.
    for kind in kinds:
        if store is not None and kind in _STORABLE:
            continue
        registry.register_loader(
            name,
            kind,
            lambda _kind=kind: build_oracle(_kind, graph, args.k, args.seed),
        )

    app = ServeApp(registry=registry, config=config)
    server = ReproServer(app)

    async def serve() -> None:
        await server.start()
        print(
            f"serving graph {name!r} (oracles: {', '.join(kinds)}) "
            f"on {server.url}"
        )
        print(
            f"  batch window {config.batch_window * 1e3:.1f}ms, "
            f"max batch {config.batch_max}, {config.workers} workers"
        )
        try:
            await asyncio.Event().wait()  # until interrupted
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
