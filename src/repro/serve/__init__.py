"""HTTP serving layer: registry, micro-batching, asyncio server, loadgen.

Zero-dependency (stdlib asyncio + the repo's own engine): see
``docs/SERVING.md`` for the endpoint reference and deployment knobs, and
``python -m repro.serve --help`` for the CLI.
"""

from __future__ import annotations

from .app import ReproServer, ServeApp, ServeConfig, ServerThread
from .batching import MicroBatcher
from .http import HttpError, HttpRequest
from .registry import GraphRegistry, UnknownGraphError, UnknownOracleError

# repro.serve.loadgen (HttpClient / LoadReport / run_loadgen) is NOT
# re-exported: it doubles as `python -m repro.serve.loadgen`, and importing
# it here would trip the runpy double-import warning on every CLI launch.

__all__ = [
    "GraphRegistry",
    "HttpError",
    "HttpRequest",
    "MicroBatcher",
    "ReproServer",
    "ServeApp",
    "ServeConfig",
    "ServerThread",
    "UnknownGraphError",
    "UnknownOracleError",
]
