"""Closed-loop load generator for the serving layer.

``N`` concurrent clients each hold one keep-alive connection and issue
query requests back-to-back for a fixed duration — classic closed-loop
load, so offered concurrency (not an open-loop arrival rate) is the
control knob and sustained throughput is what the server actually
absorbed.  Latency is recorded per *request* (not per query) in a
log-bucket :class:`~repro.obs.metrics.Histogram`, so p50/p95/p99 come
from the same quantile machinery the rest of the repo reports.

Usable three ways:

* **library** — :func:`run_loadgen` against any base URL (the CI smoke
  step and ``benchmarks/bench_serving.py`` call this);
* **CLI** — ``python -m repro.serve.loadgen --url ... --duration 10``,
  exiting non-zero when ``--max-p99`` / ``--fail-on-error`` bars are
  violated (the CI gate);
* **client pieces** — :class:`HttpClient` is a minimal asyncio HTTP/1.1
  client for one keep-alive connection, reused by the differential
  harness's ``http`` execution axis.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from ..graph.labelsets import full_mask
from ..obs.metrics import Histogram

__all__ = ["HttpClient", "LoadReport", "run_loadgen", "main"]


class HttpClient:
    """One keep-alive HTTP/1.1 connection over asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @classmethod
    def from_url(cls, url: str) -> "HttpClient":
        base = url.split("//", 1)[-1].rstrip("/")
        hostport = base.split("/", 1)[0]
        host, _, port = hostport.partition(":")
        return cls(host or "127.0.0.1", int(port) if port else 80)

    async def connect(self, timeout: float = 5.0) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, Any]:
        """One request/response on the persistent connection.

        Returns ``(status, decoded_json_or_text)``.
        """
        if self._writer is None or self._reader is None:
            await self.connect()
        assert self._writer is not None and self._reader is not None
        body = (
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            if payload is not None
            else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        content_type = headers.get("content-type", "")
        if raw and content_type.startswith("application/json"):
            return status, json.loads(raw.decode("utf-8"))
        return status, raw.decode("utf-8", errors="replace")


@dataclass
class LoadReport:
    """What a load run measured; JSON-clean via :meth:`to_dict`."""

    requests: int
    queries: int
    errors: int
    duration_seconds: float
    clients: int
    batch_size: int
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_seconds: float
    histogram: dict[str, float] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        """Sustained *queries* per second over the whole run."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.queries / self.duration_seconds

    @property
    def rps(self) -> float:
        """Sustained requests per second over the whole run."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "queries": self.queries,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "clients": self.clients,
            "batch_size": self.batch_size,
            "qps": self.qps,
            "rps": self.rps,
            "latency": {
                "p50_seconds": self.p50_seconds,
                "p95_seconds": self.p95_seconds,
                "p99_seconds": self.p99_seconds,
                "mean_seconds": self.mean_seconds,
            },
            "histogram": self.histogram,
        }

    def summary(self) -> str:
        return (
            f"{self.requests} requests ({self.queries} queries, "
            f"{self.errors} errors) in {self.duration_seconds:.2f}s — "
            f"{self.qps:,.0f} qps; latency p50 {self.p50_seconds * 1e3:.2f}ms "
            f"p95 {self.p95_seconds * 1e3:.2f}ms "
            f"p99 {self.p99_seconds * 1e3:.2f}ms"
        )


def _random_queries(
    rng: random.Random, num_vertices: int, num_labels: int, batch_size: int
) -> list[list[int]]:
    full = full_mask(num_labels)
    out = []
    for _ in range(batch_size):
        mask = rng.randrange(1, full + 1) if full else 0
        out.append([
            rng.randrange(num_vertices), rng.randrange(num_vertices), mask
        ])
    return out


async def run_loadgen(
    url: str,
    graph: str,
    oracle: str | None = None,
    clients: int = 8,
    duration: float = 5.0,
    batch_size: int = 8,
    seed: int = 7,
    connect_timeout: float = 5.0,
) -> LoadReport:
    """Drive the server closed-loop; returns the aggregated report."""
    probe = HttpClient.from_url(url)
    await probe.connect(timeout=connect_timeout)
    status, info = await probe.request("GET", "/graphs")
    await probe.close()
    if status != 200:
        raise RuntimeError(f"GET /graphs answered {status}: {info!r}")
    meta = next(
        (g for g in info.get("graphs", []) if g.get("name") == graph), None
    )
    if meta is None:
        raise RuntimeError(f"server does not serve graph {graph!r}")
    num_vertices = int(meta["num_vertices"])
    num_labels = int(meta["num_labels"])

    latency = Histogram("loadgen.request_seconds", lo=1e-6, hi=100.0)
    counts = {"requests": 0, "queries": 0, "errors": 0}
    deadline = perf_counter() + duration

    async def client_loop(client_id: int) -> None:
        rng = random.Random((seed << 16) ^ client_id)
        client = HttpClient.from_url(url)
        await client.connect(timeout=connect_timeout)
        path = f"/graphs/{graph}/query"
        try:
            while perf_counter() < deadline:
                queries = _random_queries(
                    rng, num_vertices, num_labels, batch_size
                )
                payload: dict[str, Any] = {"queries": queries}
                if oracle is not None:
                    payload["oracle"] = oracle
                started = perf_counter()
                status, body = await client.request("POST", path, payload)
                latency.observe(perf_counter() - started)
                counts["requests"] += 1
                if status != 200 or not isinstance(body, dict):
                    counts["errors"] += 1
                else:
                    counts["queries"] += len(body.get("distances", ()))
        finally:
            await client.close()

    started = perf_counter()
    results = await asyncio.gather(
        *(client_loop(i) for i in range(clients)), return_exceptions=True
    )
    elapsed = perf_counter() - started
    for result in results:
        if isinstance(result, BaseException):
            counts["errors"] += 1

    return LoadReport(
        requests=counts["requests"],
        queries=counts["queries"],
        errors=counts["errors"],
        duration_seconds=elapsed,
        clients=clients,
        batch_size=batch_size,
        p50_seconds=latency.p50,
        p95_seconds=latency.p95,
        p99_seconds=latency.p99,
        mean_seconds=latency.mean,
        histogram=latency.snapshot(),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Closed-loop load generator for repro.serve.",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8321",
                        help="server base URL")
    parser.add_argument("--graph", required=True,
                        help="graph name to query")
    parser.add_argument("--oracle", default=None,
                        help="oracle family (server default when omitted)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="run length in seconds")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="queries per request")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--connect-timeout", type=float, default=5.0)
    parser.add_argument("--out", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--max-p99", type=float, default=None,
                        help="fail (exit 1) if p99 latency exceeds this "
                             "many seconds")
    parser.add_argument("--fail-on-error", action="store_true",
                        help="fail (exit 1) on any non-2xx response or "
                             "client error")
    args = parser.parse_args(argv)

    report = asyncio.run(run_loadgen(
        url=args.url,
        graph=args.graph,
        oracle=args.oracle,
        clients=args.clients,
        duration=args.duration,
        batch_size=args.batch_size,
        seed=args.seed,
        connect_timeout=args.connect_timeout,
    ))
    print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.out}")

    failed = False
    if args.fail_on_error and report.errors:
        print(f"FAIL: {report.errors} errored requests")
        failed = True
    if args.max_p99 is not None and report.p99_seconds > args.max_p99:
        print(
            f"FAIL: p99 {report.p99_seconds * 1e3:.2f}ms exceeds the "
            f"{args.max_p99 * 1e3:.2f}ms bar"
        )
        failed = True
    if report.requests == 0:
        print("FAIL: no requests completed")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
