"""Label-constrained reachability — the special case the paper generalizes.

Prior work on edge-labeled graphs (Jin et al. SIGMOD'10, Xu et al. CIKM'11,
Fan et al. ICDE'11 — references [16, 29, 8] of the paper) answers only
*reachability* under a label constraint: is there any path from ``s`` to
``t`` whose labels all lie in ``C``?  The paper's indexes strictly
generalize this: ``d_C(s, t) < ∞`` iff ``t`` is C-reachable from ``s``.

This module makes the specialization explicit:

* :func:`minimal_reachability_sets` — the inclusion-minimal label sets
  that make a vertex reachable from a source (the "sufficient path label
  sets" of the reachability literature).  Derived from the SP-minimal
  machinery: the minimal masks among a pair's SP-minimal sets are exactly
  its minimal reachability sets.
* :class:`LandmarkReachabilityIndex` — a landmark reachability oracle on
  top of PowCov tables: *sound* (a positive answer is always correct,
  witnessed by a path through a landmark) but incomplete (may answer
  "unknown" for reachable pairs not covered by any landmark).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import is_proper_subset
from ..graph.traversal import UNREACHABLE, constrained_bfs
from .powcov import PowCovIndex

__all__ = [
    "minimal_reachability_sets",
    "exact_reachable",
    "LandmarkReachabilityIndex",
]


def exact_reachable(
    graph: EdgeLabeledGraph, source: int, target: int, label_mask: int
) -> bool:
    """Ground-truth C-reachability via one constrained BFS."""
    if source == target:
        return True
    return constrained_bfs(graph, source, label_mask)[target] != UNREACHABLE


def _minimal_masks(masks: list[int]) -> list[int]:
    """Inclusion-minimal elements of a mask collection."""
    unique = sorted(set(masks))
    minimal = []
    for mask in unique:
        if not any(is_proper_subset(other, mask) for other in unique):
            minimal.append(mask)
    return minimal


def minimal_reachability_sets(
    graph: EdgeLabeledGraph, source: int
) -> dict[int, list[int]]:
    """Per vertex, the inclusion-minimal label masks enabling reachability.

    A label set ``C`` reaches ``u`` from ``source`` iff it contains one of
    these minimal masks.  Computed from the SP-minimal enumeration: by
    Theorem 1, ``d_C < ∞`` iff some SP-minimal mask is a subset of ``C``,
    so the minimal reachability sets are the inclusion-minimal SP-minimal
    masks.
    """
    from .powcov.spminimal import traverse_powerset

    result = traverse_powerset(graph, source)
    return {
        u: _minimal_masks([mask for _dist, mask in pairs])
        for u, pairs in result.entries.items()
    }


class LandmarkReachabilityIndex:
    """Sound landmark-based C-reachability oracle.

    Answers are three-valued through two methods:

    * :meth:`reachable` — True when a landmark certifies a C-path
      ``s — x — t`` (always correct), False otherwise ("not certified",
      which may still be reachable through landmark-free paths);
    * :meth:`reachable_exact` — falls back to a BFS when uncertified,
      giving an exact answer at exact cost.

    On undirected graphs the certificate also witnesses *un*reachability
    in one special case: if ``s`` is itself a landmark, its table is
    complete, so a miss is a definite "no".
    """

    def __init__(self, graph: EdgeLabeledGraph, landmarks: Sequence[int]):
        self.graph = graph
        self._powcov = PowCovIndex(graph, landmarks)
        self.landmarks = self._powcov.landmarks
        self._landmark_set = set(self.landmarks)
        self._built = False

    def build(self) -> "LandmarkReachabilityIndex":
        self._powcov.build()
        self._built = True
        return self

    def reachable(self, source: int, target: int, label_mask: int) -> bool:
        """True iff some landmark certifies a C-path between the endpoints."""
        if not self._built:
            raise RuntimeError("call build() before querying")
        if source == target:
            return True
        estimate = self._powcov.query(source, target, label_mask)
        return estimate != float("inf")

    def reachable_exact(self, source: int, target: int, label_mask: int) -> bool:
        """Exact reachability: certificate first, BFS fallback."""
        if self.reachable(source, target, label_mask):
            return True
        if source in self._landmark_set and not self.graph.directed:
            # A landmark's own table is complete (Theorem 1): no stored
            # subset of C means genuinely unreachable.
            return False
        return exact_reachable(self.graph, source, target, label_mask)

    def certificate_rate(
        self, queries: Iterable[tuple[int, int, int]]
    ) -> float:
        """Fraction of reachable test queries certified without BFS fallback.

        ``queries`` is an iterable of ``(source, target, label_mask)``
        triples known (or suspected) to be reachable; the rate measures
        how often the index avoids the exact fallback.
        """
        queries = list(queries)
        if not queries:
            raise ValueError("no queries given")
        hits = sum(
            1 for s, t, mask in queries if self.reachable(s, t, mask)
        )
        return hits / len(queries)
