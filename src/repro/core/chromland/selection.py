"""Landmark (and color) selection for ChromLand — Section 4.3.

The paper casts CHROMLAND-LANDMARK-SELECTION as a maximization variant of
``k``-median over the bipartite graph between "median" points (vertex-color
pairs) and "demand" points (vertices), with the similarity

    sim_c(x, u) = 1 / d_{{c(x)}}(x, u)      (0 when unreachable)

and objective ``J(G, X, c) = Σ_u max_x sim_c(x, u)``.  It is solved with
the classic local-search heuristic (the paper's Algorithm "2",
ChromLandLocalSearch): start from a random solution, repeatedly propose a
random swap ``(u, x, l)`` — replace landmark ``x`` by vertex ``u`` colored
``l`` — and keep it whenever the objective improves.

This module also hosts the color-assignment helpers used by the Figure 6
baselines: random colors and majority-incident-edge colors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...graph.labeled_graph import EdgeLabeledGraph
from ...graph.labelsets import label_bit
from ...graph.traversal import constrained_bfs

__all__ = [
    "ChromLandSelection",
    "local_search_selection",
    "random_selection",
    "majority_colors",
    "objective_value",
]

#: Similarity credited to a landmark for covering itself (distance 0).
#: Any positive constant works: every size-k solution pays it exactly k
#: times, so it never changes which swap wins.
_SELF_SIM = 2.0


@dataclass(frozen=True)
class ChromLandSelection:
    """Result of a selection run: parallel landmark/color arrays + score."""

    landmarks: list[int]
    colors: list[int]
    objective: float


def _similarity_row(graph: EdgeLabeledGraph, vertex: int, color: int) -> np.ndarray:
    """``sim_c(⟨vertex, color⟩, ·)`` as a dense float32 row."""
    dist = constrained_bfs(graph, vertex, label_bit(color))
    row = np.zeros(graph.num_vertices, dtype=np.float32)
    reachable = dist > 0
    row[reachable] = 1.0 / dist[reachable]
    row[vertex] = _SELF_SIM
    return row


def objective_value(
    graph: EdgeLabeledGraph, landmarks: list[int], colors: list[int]
) -> float:
    """``J(G, X, c)`` computed from scratch (used by tests)."""
    rows = [
        _similarity_row(graph, x, c) for x, c in zip(landmarks, colors)
    ]
    return float(np.maximum.reduce(rows).sum())


def majority_colors(graph: EdgeLabeledGraph, landmarks: list[int]) -> list[int]:
    """Assign each landmark the most frequent label on its incident edges.

    This is the "majority color" baseline variant of Section 5.3; isolated
    vertices fall back to label 0.
    """
    colors = []
    for x in landmarks:
        labels = graph.labels_of(x)
        if len(labels) == 0:
            colors.append(0)
            continue
        counts = np.bincount(labels, minlength=graph.num_labels)
        colors.append(int(counts.argmax()))
    return colors


def random_selection(
    graph: EdgeLabeledGraph,
    k: int,
    seed: int | None = 0,
    color_mode: str = "random",
) -> ChromLandSelection:
    """Uniform random landmarks with random or majority colors."""
    if not 1 <= k <= graph.num_vertices:
        raise ValueError(f"k must be in [1, n], got {k}")
    if color_mode not in ("random", "majority"):
        raise ValueError("color_mode must be 'random' or 'majority'")
    rng = np.random.default_rng(seed)
    landmarks = [int(v) for v in rng.choice(graph.num_vertices, size=k, replace=False)]
    if color_mode == "majority":
        colors = majority_colors(graph, landmarks)
    else:
        colors = [int(c) for c in rng.integers(0, graph.num_labels, size=k)]
    objective = objective_value(graph, landmarks, colors)
    return ChromLandSelection(landmarks, colors, objective)


def local_search_selection(
    graph: EdgeLabeledGraph,
    k: int,
    iterations: int = 500,
    seed: int | None = 0,
    init: str = "random",
) -> ChromLandSelection:
    """ChromLandLocalSearch (the paper's Algorithm "2").

    Performs ``iterations`` random swap proposals; each costs one
    constrained BFS (``O(m)``) plus an ``O(n)`` incremental objective
    evaluation (per-column best/second-best similarities are maintained,
    so only accepted swaps pay the full ``O(kn)`` refresh) — total
    ``O((I + k) m)``, the paper's bound.

    A proposal picks a random non-landmark vertex ``u``, a random landmark
    position, and a random color ``l``, then swaps if ``J`` improves.

    ``init`` selects the starting solution: ``"random"`` (the paper's
    choice) or ``"degree-majority"`` (top-degree landmarks with
    majority-incident colors — a strong warm start that the search then
    refines; ablated in the Figure 6 benchmark).
    """
    if not 1 <= k <= graph.num_vertices:
        raise ValueError(f"k must be in [1, n], got {k}")
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if init not in ("random", "degree-majority"):
        raise ValueError("init must be 'random' or 'degree-majority'")
    rng = np.random.default_rng(seed)

    if init == "degree-majority":
        order = np.argsort(-graph.degrees(), kind="stable")
        landmarks = [int(v) for v in order[:k]]
        colors = majority_colors(graph, landmarks)
    else:
        landmarks = [
            int(v) for v in rng.choice(graph.num_vertices, size=k, replace=False)
        ]
        colors = [int(c) for c in rng.integers(0, graph.num_labels, size=k)]
    sims = np.stack([
        _similarity_row(graph, x, c) for x, c in zip(landmarks, colors)
    ])

    column = np.arange(graph.num_vertices)

    def refresh():
        """Per-column best and runner-up similarity (and best's owner)."""
        arg1 = sims.argmax(axis=0)
        best1 = sims[arg1, column]
        masked = sims.copy()
        masked[arg1, column] = -np.inf
        best2 = masked.max(axis=0) if k > 1 else np.full(
            graph.num_vertices, -np.inf, dtype=np.float32
        )
        return arg1, best1, best2

    arg1, best1, best2 = refresh()
    best_objective = float(best1.sum())
    in_solution = set(landmarks)

    for _ in range(iterations):
        u = int(rng.integers(0, graph.num_vertices))
        if u in in_solution:
            continue  # the paper draws u from V \ X
        position = int(rng.integers(0, k))
        color = int(rng.integers(0, graph.num_labels))
        candidate_row = _similarity_row(graph, u, color)
        # Column max with row `position` swapped out: where that row held
        # the max, fall back to the runner-up.
        without = np.where(arg1 == position, best2, best1)
        candidate_objective = float(np.maximum(without, candidate_row).sum())
        if candidate_objective > best_objective:
            best_objective = candidate_objective
            in_solution.discard(landmarks[position])
            in_solution.add(u)
            landmarks[position] = u
            colors[position] = color
            sims[position] = candidate_row
            arg1, best1, best2 = refresh()
    return ChromLandSelection(landmarks, colors, best_objective)
