"""ChromLand query strategies: Proposition 2 and Theorem 5.

Both strategies compute sound *upper bounds* on ``d_C(s, t)``:

* :func:`simple_triangle_distance` — Proposition 2: the best single-landmark
  triangle bound ``min { cd(x,s) + cd(x,t) : c(x) ∈ C }``, in ``O(k)``.
* :func:`auxiliary_graph_distance` — Theorem 5: the shortest path between
  ``s`` and ``t`` on the auxiliary graph ``G_X[s, t, C]`` whose nodes are
  the usable landmarks plus the two query endpoints, with mono-chromatic
  landmark-vertex edges and bi-chromatic landmark-landmark edges.  Theorem 5
  proves this is the *tightest* sound bound derivable from the stored
  distances; it costs ``O(k^2)`` via a dense Dijkstra.

The dense Dijkstra is hand-rolled over numpy arrays: auxiliary graphs have
at most ``k + 2`` nodes, where ``k ≤ a few hundred``, so the ``O(V^2)``
variant with vectorized relaxation beats heap-based implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...graph.traversal import UNREACHABLE
from ...kernels import KernelBackend, resolve_kernel

__all__ = [
    "simple_triangle_distance",
    "auxiliary_graph_distance",
    "AuxiliaryPlan",
    "prepare_auxiliary",
    "auxiliary_distance_from_plan",
]

_INF = np.float64(np.inf)


def simple_triangle_distance(
    mono: np.ndarray,
    usable: np.ndarray,
    source: int,
    target: int,
    mono_source: np.ndarray | None = None,
) -> float:
    """Proposition 2: best single-landmark bound over ``usable`` landmarks.

    ``mono`` is the ``(k, n)`` mono-chromatic distance table with ``-1``
    for unreachable; ``usable`` indexes the landmarks whose color belongs
    to the query label set.  For directed graphs ``mono_source`` carries
    the vertex→landmark distances (reversed-graph table); when ``None``
    the graph is undirected and ``mono`` serves both sides.
    """
    source_table = mono if mono_source is None else mono_source
    ds = source_table[usable, source].astype(np.float64)
    dt = mono[usable, target].astype(np.float64)
    ok = (ds != UNREACHABLE) & (dt != UNREACHABLE)
    if not ok.any():
        return float("inf")
    return float((ds[ok] + dt[ok]).min())


def auxiliary_graph_distance(
    mono: np.ndarray,
    bi: np.ndarray,
    colors: np.ndarray,
    usable: np.ndarray,
    source: int,
    target: int,
    mono_source: np.ndarray | None = None,
) -> float:
    """Theorem 5: shortest s-t path on the induced auxiliary graph.

    Nodes are ``usable`` landmarks plus virtual nodes for ``s`` and ``t``.
    Edge weights:

    * ``s — x``: ``cd(x, s)`` (mono-chromatic), likewise ``t — x``;
    * ``x — y``: ``cd(x, y)`` (bi-chromatic) when ``c(x) ≠ c(y)``.

    Landmark-landmark edges between same-color landmarks do not exist in
    ``G_X`` (their composition is already dominated by the single-landmark
    bound through either one).

    For directed graphs ``mono_source`` is the vertex→landmark table and
    ``bi[i, j]`` is the directed ``x_i → x_j`` distance; the Dijkstra below
    then relaxes directed edges only.
    """
    k = len(usable)
    if k == 0:
        return float("inf")

    # Distance-from-source vector over [landmarks..., target].
    source_table = mono if mono_source is None else mono_source
    ds = source_table[usable, source].astype(np.float64)
    dt = mono[usable, target].astype(np.float64)
    ds[ds == UNREACHABLE] = _INF
    dt[dt == UNREACHABLE] = _INF
    return auxiliary_distance_from_plan(prepare_auxiliary(bi, colors, usable), ds, dt)


@dataclass(frozen=True)
class AuxiliaryPlan:
    """Endpoint-independent part of a Theorem 5 evaluation.

    Everything here depends only on the query's *constraint mask* (through
    ``usable``), not its endpoints, so one plan serves every query in a
    same-mask batch — the amortization the query engine exploits.
    ``weights`` is ``None`` when at most one usable color exists (the
    single-landmark bound is then already optimal and no Dijkstra runs).
    """

    usable: np.ndarray
    weights: np.ndarray | None


def prepare_auxiliary(
    bi: np.ndarray, colors: np.ndarray, usable: np.ndarray
) -> AuxiliaryPlan:
    """Build the dense masked adjacency among ``usable`` landmarks once."""
    usable_colors = colors[usable]
    if len(np.unique(usable_colors)) <= 1:
        return AuxiliaryPlan(usable=usable, weights=None)
    # Dense adjacency among usable landmarks (inf where no edge).
    weights = bi[np.ix_(usable, usable)].astype(np.float64)
    weights[weights == UNREACHABLE] = _INF
    same_color = usable_colors[:, None] == usable_colors[None, :]
    weights[same_color] = _INF
    return AuxiliaryPlan(usable=usable, weights=weights)


def auxiliary_distance_from_plan(
    plan: AuxiliaryPlan,
    ds: np.ndarray,
    dt: np.ndarray,
    kernel: "str | KernelBackend | None" = None,
) -> float:
    """Theorem 5 evaluation given a prepared plan and endpoint legs.

    ``ds`` / ``dt`` are the source/target legs over ``plan.usable`` with
    ``inf`` for unreachable (i.e. already sentinel-converted).  The
    O(k^2) Dijkstra from the virtual source node — initialize landmark
    tentative distances with the s—x edges, repeatedly settle the nearest
    landmark, relax through its bi-chromatic row, keep the running best
    completion through the t—x edges — runs on the selected
    :mod:`repro.kernels` backend (``None`` = process default).  Compiled
    backends replay the numpy path's IEEE operation order, so the result
    is bit-identical regardless of ``kernel``.
    """
    k = len(plan.usable)
    if k == 0:
        return float("inf")
    # Fast exits: the best single-landmark bound may already be optimal
    # when only one usable color exists (no bi-chromatic edges help).
    best_single = float((ds + dt).min())
    if plan.weights is None:
        return best_single
    return resolve_kernel(kernel).aux_dijkstra(plan.weights, ds, dt, best_single)
