"""Chromatic Landmarks index (Section 4 of the paper)."""

from __future__ import annotations

from .index import ChromLandIndex
from .query import auxiliary_graph_distance, simple_triangle_distance
from .selection import (
    ChromLandSelection,
    local_search_selection,
    majority_colors,
    objective_value,
    random_selection,
)

__all__ = [
    "ChromLandIndex",
    "auxiliary_graph_distance",
    "simple_triangle_distance",
    "ChromLandSelection",
    "local_search_selection",
    "majority_colors",
    "objective_value",
    "random_selection",
]
