"""The Chromatic Landmarks (ChromLand) index — Section 4 of the paper.

Each landmark ``x`` is *assigned* a single color ``c(x)``.  The index stores

* for every vertex ``u``: the **mono-chromatic** distance
  ``cd(x, u) = d_{{c(x)}}(x, u)`` to every landmark — computed with one
  ``{c(x)}``-constrained BFS per landmark — and
* for every landmark pair ``(x, y)`` with ``c(x) ≠ c(y)``: the
  **bi-chromatic** distance ``cd(x, y) = d_{{c(x), c(y)}}(x, y)``.

Total storage is ``O(kn)`` — one distance per landmark-vertex pair,
regardless of ``|L|`` — which is the whole point of the index: it sidesteps
the powerset blow-up entirely and pays for it at query time (see
:mod:`repro.core.chromland.query`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...graph.labeled_graph import EdgeLabeledGraph
from ...graph.labelsets import label_bit, np_label_bits
from ...graph.traversal import UNREACHABLE
from ...kernels import kernel_name
from ...obs.trace import span
from ...perf.batched import batched_constrained_bfs
from ...perf.parallel import ParallelConfig, resolve_parallel, run_tasks
from ..types import DistanceOracle, QueryAnswer
from .query import auxiliary_graph_distance, simple_triangle_distance

__all__ = ["ChromLandIndex"]

_QUERY_MODES = ("auxiliary", "simple")


class ChromLandIndex(DistanceOracle):
    """Chromatic Landmarks index.

    Parameters
    ----------
    landmarks:
        Landmark vertex ids (distinct).
    colors:
        Dense label id assigned to each landmark, parallel to ``landmarks``
        (see :mod:`repro.core.chromland.selection` for the paper's
        local-search selection).
    query_mode:
        ``"auxiliary"`` — Theorem 5: shortest path on the auxiliary graph
        induced by the query (the paper's enhanced strategy, ``O(k^2)``);
        ``"simple"`` — Proposition 2: plain triangle inequality over
        single landmarks (``O(k)``), kept for the query ablation.
    """

    name = "chromland"

    def __init__(
        self,
        graph: EdgeLabeledGraph,
        landmarks: Sequence[int],
        colors: Sequence[int],
        query_mode: str = "auxiliary",
    ):
        super().__init__(graph)
        if len(landmarks) != len(colors):
            raise ValueError("landmarks and colors must be parallel sequences")
        if len(set(landmarks)) != len(landmarks):
            raise ValueError("landmarks must be distinct")
        if query_mode not in _QUERY_MODES:
            raise ValueError(f"query_mode must be one of {_QUERY_MODES}")
        for x in landmarks:
            if not 0 <= x < graph.num_vertices:
                raise ValueError(f"landmark {x} out of range")
        for c in colors:
            if not 0 <= c < graph.num_labels:
                raise ValueError(f"color {c} out of range")
        self.landmarks = np.asarray(list(landmarks), dtype=np.int64)
        self.colors = np.asarray(list(colors), dtype=np.int64)
        self.query_mode = query_mode
        #: ``(k, n)`` mono-chromatic distances landmark→vertex, ``-1`` unreachable.
        self.mono: np.ndarray | None = None
        #: directed graphs only: ``(k, n)`` vertex→landmark distances.
        self.mono_in: np.ndarray | None = None
        #: ``(k, k)`` bi-chromatic distances, ``-1`` unreachable/same color.
        self.bi: np.ndarray | None = None
        #: per-landmark color bit, precomputed for query filtering.
        self._color_bits = np_label_bits(self.colors)
        self._built = False

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, parallel: "ParallelConfig | int | None" = None) -> "ChromLandIndex":
        """Run the ``k`` mono-chromatic and ``k (|L*|-1)`` bi-chromatic BFS.

        ``|L*|`` is the number of *distinct* colors actually assigned;
        bi-chromatic traversals are shared across all landmarks of the same
        target color.

        All sweeps run through the batched multi-source kernel
        (:func:`repro.perf.batched.batched_constrained_bfs`), which
        amortizes the per-level CSR gathers across landmarks; ``parallel``
        additionally fans chunks of sweeps out over workers (results are
        reassembled in job order, so the tables are bit-for-bit identical
        to a serial build).
        """
        config = resolve_parallel(parallel)
        k = self.num_landmarks
        n = self.graph.num_vertices
        self.mono = np.full((k, n), UNREACHABLE, dtype=np.int32)
        self.bi = np.full((k, k), UNREACHABLE, dtype=np.int32)
        color_values = sorted(set(int(c) for c in self.colors))
        landmarks_by_color = {
            color: np.nonzero(self.colors == color)[0] for color in color_values
        }
        directed = self.graph.directed
        graphs: tuple[EdgeLabeledGraph, ...] = (self.graph,)
        if directed:
            graphs = (self.graph, self.graph.reversed())
            self.mono_in = np.full((k, n), UNREACHABLE, dtype=np.int32)

        # One job per sweep: (graph_index, source, mask, landmarks_only).
        # ``landmarks_only`` jobs return just the distances at the landmark
        # vertices (all a bi-chromatic row needs), not the full array.
        jobs: list[tuple[int, int, int, bool]] = []
        unpackers: list = []
        for i in range(k):
            x = int(self.landmarks[i])
            own_color = int(self.colors[i])
            jobs.append((0, x, label_bit(own_color), False))
            unpackers.append(("mono", i))
            if directed:
                jobs.append((1, x, label_bit(own_color), False))
                unpackers.append(("mono_in", i))
            for other_color in color_values:
                if other_color == own_color:
                    continue
                mask = label_bit(own_color) | label_bit(other_color)
                jobs.append((0, x, mask, True))
                unpackers.append(("bi", i, other_color))
        with span(
            "chromland.build", backend=config.backend, kernel=kernel_name()
        ) as build_span:
            build_span.count("landmarks", k)
            build_span.count("colors", len(color_values))
            build_span.count("sweeps", len(jobs))
            results = run_tasks(
                _chromland_chunk_task,
                jobs,
                graphs=graphs,
                # The kernel resolves to its concrete backend name in the
                # parent: workers don't inherit ``set_default_kernel``.
                extra={
                    "landmarks": np.asarray(self.landmarks, dtype=np.int64),
                    "kernel": kernel_name(),
                },
                config=config,
            )
        for what, row in zip(unpackers, results):
            if what[0] == "mono":
                self.mono[what[1]] = row
            elif what[0] == "mono_in":
                self.mono_in[what[1]] = row
            else:
                _tag, i, other_color = what
                targets = landmarks_by_color[other_color]
                self.bi[i, targets] = row[targets]
        # cd is symmetric on undirected graphs; keep the best of both runs
        # (they agree there, and on directed graphs this stays an upper
        # bound in each direction).
        if not self.graph.directed:
            both = np.where(self.bi == UNREACHABLE, np.iinfo(np.int32).max, self.bi)
            both = np.minimum(both, both.T)
            self.bi = np.where(both == np.iinfo(np.int32).max, UNREACHABLE, both)
        self._built = True
        return self

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() before querying the index")

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def chromatic_distance(self, landmark_index: int, vertex: int) -> float:
        """``cd(x, u)`` for landmark ``landmark_index`` and vertex ``u``."""
        self._require_built()
        value = int(self.mono[landmark_index, vertex])
        return float(value) if value != UNREACHABLE else float("inf")

    def query(self, source: int, target: int, label_mask: int) -> float:
        return self.query_answer(source, target, label_mask).estimate

    def query_answer(self, source: int, target: int, label_mask: int) -> QueryAnswer:
        self._require_built()
        if source == target:
            return QueryAnswer(estimate=0.0, lower=0.0, upper=0.0)
        if label_mask == 0:
            return QueryAnswer(estimate=float("inf"), lower=float("inf"))
        # Landmarks usable for this query: color inside the constraint set.
        usable = np.nonzero((self._color_bits & label_mask) != 0)[0]
        if len(usable) == 0:
            return QueryAnswer(estimate=float("inf"))
        if self.query_mode == "simple":
            estimate = simple_triangle_distance(
                self.mono, usable, source, target, mono_source=self.mono_in
            )
        else:
            estimate = auxiliary_graph_distance(
                self.mono, self.bi, self.colors, usable, source, target,
                mono_source=self.mono_in,
            )
        # Mono-chromatic distances overestimate d_C, so no valid lower
        # bound can be derived from this index; report the trivial one.
        return QueryAnswer(estimate=estimate, lower=0.0, upper=estimate)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def index_size_entries(self) -> int:
        """Stored distances: one per landmark-vertex pair + landmark pairs."""
        self._require_built()
        k = self.num_landmarks
        return k * self.graph.num_vertices + k * (k - 1) // 2

    def describe(self) -> str:
        return (
            f"{self.name}(k={self.num_landmarks}, mode={self.query_mode}) "
            f"on {self.graph!r}"
        )


def _chromland_chunk_task(
    graphs: tuple[EdgeLabeledGraph, ...], items, extra: dict
) -> list[np.ndarray]:
    """Run a chunk of ChromLand sweeps as batched multi-source BFS.

    Each item is ``(graph_index, source, mask, landmarks_only)``; all items
    sharing a graph become one :func:`batched_constrained_bfs` call, so the
    frontier expansion is amortized across the chunk's sweeps.  Module
    level so the process backend can ship it to workers by reference.
    """
    landmarks = extra["landmarks"]
    kernel = extra.get("kernel")
    by_graph: dict[int, list[int]] = {}
    for position, (graph_index, _source, _mask, _landmarks_only) in enumerate(items):
        by_graph.setdefault(graph_index, []).append(position)
    results: list[np.ndarray | None] = [None] * len(items)
    for graph_index, positions in by_graph.items():
        sources = [items[p][1] for p in positions]
        masks = [items[p][2] for p in positions]
        dist = batched_constrained_bfs(
            graphs[graph_index], sources, masks=masks, kernel=kernel
        )
        for row, p in enumerate(positions):
            full_row = dist[row]
            results[p] = full_row[landmarks] if items[p][3] else full_row
    return results
