"""Incremental index maintenance over versioned graph deltas.

The builders in :mod:`repro.core.powcov` and :mod:`repro.core.chromland`
assume a frozen graph; this module absorbs a
:class:`~repro.graph.delta.GraphDelta` into an *already built* index
without rebuilding from scratch, with output **bit-identical** to a fresh
build on the new graph (property-tested by
:func:`assert_repair_matches_rebuild` and ``tests/test_dynamic.py``).

PowCov repair
-------------
*Insertions* use decrease-only repair.  Adding edge ``(u, v, l)`` can only
change ``d_C`` for masks ``C ∋ l``, and — because unit-weight distances
satisfy the triangle condition along every edge — the distance row of
``C`` changes iff some inserted edge with ``l ∈ C`` has
``|d_C(x, u) - d_C(x, v)| ≥ 2`` under the *old* distances.  Old distances
never need re-deriving: Theorem 1 reconstructs any row from the stored
SP-minimal entries.  Improvable rows are re-relaxed with a decrease-only
BFS seeded from the reconstructed row (distances only drop on insertion,
so the old row is a valid upper bound to start from); then only the dirty
masks — improved rows plus their one-label-added supersets, whose
Theorem 2 minimality test reads the improved rows — have their entries
recomputed and spliced back in.  Landmarks where no mask is improvable
(the common case for a single edge) are untouched, which is where the
order-of-magnitude speedup over a rebuild comes from.

*Deletions and relabels* are handled conservatively: a deleted edge
``(u, v, l)`` can only lengthen distances of a landmark ``x`` if it lies
on some ``C``-shortest path from ``x``, which requires the tightness
condition ``|d_C(x, u) - d_C(x, v)| = 1`` for some candidate ``C ∋ l``.
Landmarks with no tight deleted edge keep their tables verbatim; dirty
landmarks are re-swept from scratch with the existing wave kernel
(:func:`~repro.core.powcov.waves.traverse_powerset_waves`).  A relabel is
treated as delete(old label) + insert(new label).

ChromLand repair
----------------
Falls back to per-landmark sweep rebuilds: only the mono/bi sweeps whose
constraint mask intersects the delta's touched labels are re-run through
the batched BFS kernel; everything else is carried over.

Fallbacks
---------
Directed or weighted PowCov indexes, and unbuilt indexes, rebuild in full
(reported via :attr:`RepairStats.full_rebuild`); oracles without a build
step (the BFS baselines) just rebind their graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from time import perf_counter
from typing import Any

import numpy as np

from ..graph.delta import GraphDelta
from ..graph.fingerprint import graph_fingerprint
from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import (
    full_mask,
    iter_one_removed,
    label_bit,
    np_label_bits,
    popcount,
)
from ..obs.metrics import metrics_enabled
from ..obs.metrics import registry as _metrics_registry
from ..obs.trace import span
from ..perf.batched import batched_constrained_bfs
from .chromland import ChromLandIndex
from .powcov import PowCovIndex
from .powcov.spminimal import BIG
from .powcov.waves import traverse_powerset_waves
from .trie import LabelSetTrie
from .types import DistanceOracle

__all__ = [
    "RepairStats",
    "repair_index",
    "repair_powcov",
    "repair_chromland",
    "rebuild_reference",
    "assert_repair_matches_rebuild",
]


@dataclass
class RepairStats:
    """Scope accounting for one repair: what was reused vs. recomputed."""

    kind: str
    num_landmarks: int = 0
    #: landmarks whose tables were carried over verbatim.
    landmarks_clean: int = 0
    #: landmarks repaired in place by the decrease-only path.
    landmarks_repaired: int = 0
    #: landmarks fully re-swept with the wave kernel (deletions/relabels).
    landmarks_resweep: int = 0
    #: (landmark, mask) rows re-relaxed by the decrease-only BFS.
    rows_relaxed: int = 0
    #: rows reconstructed from stored entries (Theorem 1) for re-tests.
    rows_reconstructed: int = 0
    #: masks whose entry sets were recomputed and spliced.
    masks_dirty: int = 0
    #: vertices touched across all decrease-only relaxations.
    vertices_touched: int = 0
    #: ChromLand BFS sweeps re-run (mono + bi).
    sweeps_rerun: int = 0
    #: ChromLand sweeps carried over.
    sweeps_kept: int = 0
    #: the whole index was rebuilt (directed/weighted/unbuilt fallback).
    full_rebuild: bool = False
    seconds: float = field(default=0.0)

    def combine(self, other: "RepairStats") -> "RepairStats":
        """Fold another repair's scope into this one (for sequences)."""
        for name in (
            "num_landmarks", "landmarks_clean", "landmarks_repaired",
            "landmarks_resweep", "rows_relaxed", "rows_reconstructed",
            "masks_dirty", "vertices_touched", "sweeps_rerun", "sweeps_kept",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.full_rebuild = self.full_rebuild or other.full_rebuild
        self.seconds += other.seconds
        return self

    def describe(self) -> str:
        if self.kind == "chromland":
            detail = f"sweeps {self.sweeps_rerun} rerun / {self.sweeps_kept} kept"
        else:
            detail = (
                f"landmarks {self.landmarks_clean} clean / "
                f"{self.landmarks_repaired} repaired / "
                f"{self.landmarks_resweep} resweep; "
                f"{self.rows_relaxed} rows relaxed, "
                f"{self.masks_dirty} masks respliced"
            )
        tail = " (full rebuild)" if self.full_rebuild else ""
        return f"repair[{self.kind}] {detail} in {self.seconds * 1e3:.1f}ms{tail}"


def _require_descendant(
    graph: EdgeLabeledGraph, new_graph: EdgeLabeledGraph
) -> GraphDelta:
    """The delta linking ``graph`` to ``new_graph`` (one step), or raise."""
    delta = new_graph.applied_delta
    if delta is None or new_graph.parent_fingerprint is None:
        raise ValueError(
            "new_graph carries no delta lineage; build it with "
            "apply_delta/apply_edges or rebuild the index from scratch"
        )
    if int(graph_fingerprint(graph)) != int(new_graph.parent_fingerprint):
        raise ValueError(
            "new_graph does not descend from the index's graph "
            "(parent fingerprint mismatch); repair one delta at a time"
        )
    return delta


def _clear_stored_fingerprint(index: DistanceOracle) -> None:
    # A repaired index is no longer byte-for-byte "as loaded"; drop the
    # stored-file fingerprint so the session open-time re-check passes
    # against the new graph instead of rejecting the repair.
    if getattr(index, "stored_fingerprint", None) is not None:
        index.stored_fingerprint = None  # type: ignore[attr-defined]


def _flush_metrics(stats: RepairStats) -> None:
    if not metrics_enabled():
        return
    reg = _metrics_registry()
    reg.counter("dynamic.repairs").inc()
    reg.counter("dynamic.landmarks_clean").inc(stats.landmarks_clean)
    reg.counter("dynamic.landmarks_repaired").inc(stats.landmarks_repaired)
    reg.counter("dynamic.landmarks_resweep").inc(stats.landmarks_resweep)
    reg.counter("dynamic.rows_relaxed").inc(stats.rows_relaxed)
    reg.counter("dynamic.rows_reconstructed").inc(stats.rows_reconstructed)
    reg.counter("dynamic.sweeps_rerun").inc(stats.sweeps_rerun)
    if stats.full_rebuild:
        reg.counter("dynamic.full_rebuilds").inc()
    rows = stats.rows_relaxed + stats.rows_reconstructed + stats.sweeps_rerun
    reg.histogram("dynamic.repair_rows", lo=1.0, hi=1e6, per_decade=5).observe(
        max(1.0, float(rows))
    )
    reg.histogram(
        "dynamic.repair_seconds", lo=1e-5, hi=100.0, per_decade=5
    ).observe(max(1e-5, stats.seconds))


# ----------------------------------------------------------------------
# Theorem-1 reconstruction helpers (shared by both repair paths)
# ----------------------------------------------------------------------
def _endpoint_distances(
    entries: dict[int, list[tuple[int, int]]],
    landmark: int,
    vertex: int,
    masks: np.ndarray,
) -> np.ndarray:
    """``d_C(landmark, vertex)`` for every mask in ``masks`` (int32, BIG=∞).

    Theorem 1: the minimum stored distance over subset entries; the pairs
    are distance-sorted, so the first subset hit per mask is the minimum.
    """
    if vertex == landmark:
        return np.zeros(len(masks), dtype=np.int32)
    pairs = entries.get(vertex)
    if not pairs:
        return np.full(len(masks), BIG, dtype=np.int32)
    pair_dists = np.fromiter(
        (dist for dist, _ in pairs), dtype=np.int32, count=len(pairs)
    )
    pair_masks = np.fromiter(
        (mask for _, mask in pairs), dtype=np.int64, count=len(pairs)
    )
    subset = (pair_masks[None, :] & masks[:, None]) == pair_masks[None, :]
    stored = np.where(subset, pair_dists[None, :], np.int32(BIG))
    return stored.min(axis=1).astype(np.int32)


def _reconstruct_row(
    flat_vertices: np.ndarray,
    flat_dists: np.ndarray,
    flat_masks: np.ndarray,
    landmark: int,
    num_vertices: int,
    mask: int,
) -> np.ndarray:
    """The full old distance row ``d_mask(landmark, ·)`` from stored entries."""
    row = np.full(num_vertices, BIG, dtype=np.int32)
    sel = (flat_masks & mask) == flat_masks
    if sel.any():
        np.minimum.at(row, flat_vertices[sel], flat_dists[sel])
    row[landmark] = 0
    return row


#: Dense subset-min tables above this many int32 cells (64 MiB) fall back
#: to per-mask lazy reconstruction to keep repair memory modest.
_SOS_TABLE_CELLS = 1 << 24


def _stacked_subset_min(
    contexts: list["_LandmarkRepair"],
    num_vertices: int,
    universe: int,
) -> np.ndarray:
    """Old distance rows ``d_C(landmark, ·)`` for every repairable
    landmark and **every** mask at once.

    Theorem 1 reads ``d_C`` as the minimum stored distance over subset
    entries — a subset-min zeta transform: scatter each entry into its
    exact-mask row, then sweep one label at a time taking
    ``row[C] = min(row[C], row[C without l])``.  Cost ``O(2^|L|·|L|·n)``
    per landmark, far below one entries scan per dirty mask.

    Every landmark gets a contiguous ``universe + 1``-row block in one
    stacked array (global row id ``j·(universe+1) + C`` for the ``j``-th
    context), so the scatter, the zeta sweeps, and the later Theorem 2
    gathers each run as a single numpy call across all landmarks.
    Because ``universe + 1`` is a power of two, the per-label reshape
    views never straddle a block boundary, and a block-local one-removed
    subset id is just ``global_id ^ label_bit``.  The final row is a
    shared all-``BIG`` sentinel so lattice lookups can be padded-gathered.
    """
    stride = universe + 1
    stacked = np.full(
        (len(contexts) * stride + 1, num_vertices), BIG, dtype=np.int32
    )
    slots: list[np.ndarray] = []
    dists: list[np.ndarray] = []
    for j, ctx in enumerate(contexts):
        if len(ctx.flat_masks):
            slots.append(
                (np.int64(j) * stride + ctx.flat_masks) * num_vertices
                + ctx.flat_vertices
            )
            dists.append(ctx.flat_dists)
    if slots:
        np.minimum.at(
            stacked.reshape(-1), np.concatenate(slots), np.concatenate(dists)
        )
    # Each label bit splits every block's rows into interleaved
    # with/without sub-blocks that a reshape exposes as views — the whole
    # transform runs in place without a single row copy.
    lattice = stacked[:-1]
    for label in range(universe.bit_length()):
        step = label_bit(label)
        view = lattice.reshape(-1, 2, step, num_vertices)
        np.minimum(view[:, 1], view[:, 0], out=view[:, 1])
    for j, ctx in enumerate(contexts):
        lattice[j * stride:(j + 1) * stride, ctx.landmark] = 0
    return stacked


def _flatten_entries(
    entries: dict[int, list[tuple[int, int]]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    counts = np.fromiter(
        (len(pairs) for pairs in entries.values()),
        dtype=np.int64, count=len(entries),
    )
    vertices = np.repeat(
        np.fromiter(entries.keys(), dtype=np.int64, count=len(entries)),
        counts,
    )
    total = int(counts.sum())
    if total:
        flat = np.fromiter(
            chain.from_iterable(chain.from_iterable(entries.values())),
            dtype=np.int64, count=2 * total,
        ).reshape(-1, 2)
        return vertices, flat[:, 0].astype(np.int32), flat[:, 1].copy()
    return vertices, np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int64)


def _decrease_only_bfs_multi(
    graph: EdgeLabeledGraph,
    masks: np.ndarray,
    rows: np.ndarray,
    seed_lists: list[list[tuple[int, int]]],
) -> int:
    """Relax each ``rows[i]`` downward from ``seed_lists[i]`` over
    ``masks[i]``-allowed arcs — every row in one level-synchronous wave
    loop.  Rows are independent, so the same mask may appear for several
    landmarks' rows.

    Each row must be a valid upper bound on the new distances that is
    exact everywhere its seeds cannot improve — precisely what the old
    distance row is after an insertion.  Decrease-only relaxation is
    confluent, so batching the rows cannot change the fixpoint.  ``rows``
    must own its buffer (C-contiguous); it is updated in place.  Returns
    the number of improved (row, vertex) slots.
    """
    num_masks, num_vertices = rows.shape
    fr_pairs: list[int] = []
    for i, seeds in enumerate(seed_lists):
        for vertex, dist in seeds:
            if dist < rows[i, vertex]:
                rows[i, vertex] = dist
                fr_pairs.append(i * num_vertices + vertex)
    if not fr_pairs:
        return 0
    frontier = np.unique(np.asarray(fr_pairs, dtype=np.int64))
    touched = len(frontier)
    indptr, neighbors = graph.indptr, graph.neighbors
    arc_bits = np_label_bits(graph.edge_labels)
    flat_rows = rows.reshape(-1)
    # COO frontier: (row, vertex) pairs, expanded arc-by-arc, so the work
    # per wave is proportional to the arcs actually leaving each row's
    # own frontier — no dense (row, arc) cross product.
    while len(frontier):
        fr_rows = frontier // num_vertices
        fr_verts = frontier - fr_rows * num_vertices
        starts = indptr[fr_verts]
        counts = indptr[fr_verts + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        ends = np.cumsum(counts)
        arcs = np.arange(total, dtype=np.int64) - np.repeat(
            ends - counts, counts
        )
        arcs += np.repeat(starts, counts)
        pair_rows = np.repeat(fr_rows, counts)
        cand_all = np.repeat(
            flat_rows[frontier] + np.int32(1), counts
        )
        keep = (masks[pair_rows] & arc_bits[arcs]) != 0
        targets = neighbors[arcs[keep]].astype(np.int64)
        slots = pair_rows[keep] * num_vertices + targets
        cand = cand_all[keep]
        improving = cand < flat_rows[slots]
        slots = slots[improving]
        if not len(slots):
            break
        cand = cand[improving]
        before = flat_rows[slots]
        np.minimum.at(flat_rows, slots, cand)
        frontier = np.unique(slots[flat_rows[slots] < before])
        touched += len(frontier)
    return touched


# ----------------------------------------------------------------------
# PowCov repair
# ----------------------------------------------------------------------
def _deletion_dirty(
    graph: EdgeLabeledGraph,
    entries: dict[int, list[tuple[int, int]]],
    landmark: int,
    deletions: list[tuple[int, int, int]],
) -> bool:
    """True iff some deleted edge may sit on a shortest path of ``landmark``.

    Edge ``(u, v, l)`` can only carry a ``C``-shortest path (``C ∋ l``)
    when ``|d_C(x, u) - d_C(x, v)| = 1`` with both sides finite; if no
    deleted edge is tight for any candidate mask, every distance row — and
    therefore every SP-minimal entry — survives the deletion verbatim.
    """
    incident = graph.incident_label_mask(landmark)
    if incident == 0:
        return False
    universe = full_mask(graph.num_labels)
    for u, v, label in deletions:
        bit = label_bit(label)
        affected = np.asarray(
            [c for c in range(1, universe + 1) if c & incident and c & bit],
            dtype=np.int64,
        )
        if len(affected) == 0:
            continue
        du = _endpoint_distances(entries, landmark, u, affected)
        dv = _endpoint_distances(entries, landmark, v, affected)
        tight = (du < BIG) & (dv < BIG) & (np.abs(du - dv) == 1)
        if tight.any():
            return True
    return False


def _insertion_seeds(
    new_graph: EdgeLabeledGraph,
    entries: dict[int, list[tuple[int, int]]],
    landmark: int,
    insertions: list[tuple[int, int, int]],
) -> tuple[dict[int, list[tuple[int, int]]], list[int]] | None:
    """Steps 1–2 of insertion repair: seeds per improvable mask + dirty set.

    Returns ``None`` when no inserted edge can improve any of the
    landmark's rows (the landmark is clean).  Otherwise returns the
    per-mask BFS seeds and the sorted dirty masks — improved rows plus
    their one-label-added supersets, whose Theorem 2 test reads the
    improved subset rows.
    """
    incident = new_graph.incident_label_mask(landmark)
    if incident == 0:
        return None
    universe = full_mask(new_graph.num_labels)
    inserted_bits = 0
    for _, _, label in insertions:
        inserted_bits |= label_bit(label)
    affected = np.asarray(
        [c for c in range(1, universe + 1) if c & incident and c & inserted_bits],
        dtype=np.int64,
    )
    if len(affected) == 0:
        return None

    # Step 1: which affected masks can any inserted edge actually improve?
    # (old endpoint distances reconstructed straight from the entries).
    seeds_by_mask: dict[int, list[tuple[int, int]]] = {}
    for u, v, label in insertions:
        bit = label_bit(label)
        positions = np.nonzero((affected & bit) != 0)[0]
        if len(positions) == 0:
            continue
        masks = affected[positions]
        du = _endpoint_distances(entries, landmark, u, masks)
        dv = _endpoint_distances(entries, landmark, v, masks)
        improves_v = du + np.int32(1) < dv
        improves_u = dv + np.int32(1) < du
        for j in np.nonzero(improves_v | improves_u)[0]:
            mask = int(masks[j])
            if improves_v[j]:
                seeds_by_mask.setdefault(mask, []).append((v, int(du[j]) + 1))
            else:
                seeds_by_mask.setdefault(mask, []).append((u, int(dv[j]) + 1))
    if not seeds_by_mask:
        return None

    # Step 2: the dirty closure.
    dirty: set[int] = set(seeds_by_mask)
    for mask in list(seeds_by_mask):
        rest = universe & ~mask
        while rest:
            bit = rest & -rest
            dirty.add(mask | bit)
            rest ^= bit
    return seeds_by_mask, sorted(dirty)


@dataclass
class _LandmarkRepair:
    """Per-landmark state threaded between the prepare and finish phases.

    The decrease-only relaxation (step 3) runs once, globally, over every
    repairable landmark's improved rows stacked into a single frontier
    matrix — the wave kernel only reads per-row label masks, never the
    landmark identity, and sharing one wave loop amortises the per-wave
    dispatch overhead across landmarks.  This carrier splits the repair
    around that global step.
    """

    entries: dict[int, list[tuple[int, int]]]
    landmark: int
    incident: int
    universe: int
    seeds_by_mask: dict[int, list[tuple[int, int]]]
    dirty_sorted: list[int]
    flat_vertices: np.ndarray
    flat_dists: np.ndarray
    flat_masks: np.ndarray
    improved: list[int]
    improved_arr: np.ndarray
    #: old improved rows, overwritten in place by the global relaxation
    #: (assigned after prepare, once the subset-min source is chosen).
    work: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))


def _prepare_insertion_repair(
    new_graph: EdgeLabeledGraph,
    entries: dict[int, list[tuple[int, int]]],
    landmark: int,
    prepared: tuple[dict[int, list[tuple[int, int]]], list[int]],
    stats: RepairStats,
) -> _LandmarkRepair:
    """Flatten the landmark's stored entries (everything before step 3)."""
    seeds_by_mask, dirty_sorted = prepared
    flat_vertices, flat_dists, flat_masks = _flatten_entries(entries)
    improved = sorted(seeds_by_mask)
    stats.rows_reconstructed += len(improved)
    stats.rows_relaxed += len(improved)
    return _LandmarkRepair(
        entries=entries,
        landmark=landmark,
        incident=new_graph.incident_label_mask(landmark),
        universe=full_mask(new_graph.num_labels),
        seeds_by_mask=seeds_by_mask,
        dirty_sorted=dirty_sorted,
        flat_vertices=flat_vertices,
        flat_dists=flat_dists,
        flat_masks=flat_masks,
        improved=improved,
        improved_arr=np.asarray(improved, dtype=np.int64),
    )


def _splice_pairs(
    ctx: _LandmarkRepair,
    rem_idx: np.ndarray,
    add_verts: np.ndarray,
    add_dists: np.ndarray,
    add_masks: np.ndarray,
    num_vertices: int,
) -> None:
    """Apply exact pair-level edits to one landmark's entry lists.

    ``rem_idx`` indexes the flattened stored pairs to drop; the ``add_*``
    triples are the new pairs.  Only the lists of vertices with an actual
    edit are rebuilt — surviving stored pairs plus the additions, one
    lexsort restoring the (distance, mask) order.
    """
    if len(rem_idx) == 0 and len(add_verts) == 0:
        return
    entries = ctx.entries
    flat_vertices = ctx.flat_vertices
    touched = np.unique(np.concatenate([flat_vertices[rem_idx], add_verts]))
    touched_lut = np.zeros(num_vertices, dtype=bool)
    touched_lut[touched] = True
    base_sel = touched_lut[flat_vertices]
    base_sel[rem_idx] = False
    all_vertices = np.concatenate([flat_vertices[base_sel], add_verts])
    all_dists = np.concatenate([ctx.flat_dists[base_sel], add_dists])
    all_masks = np.concatenate([ctx.flat_masks[base_sel], add_masks])
    order = np.lexsort((all_masks, all_dists, all_vertices))
    sorted_vertices = all_vertices[order]
    pair_list = list(
        zip(all_dists[order].tolist(), all_masks[order].tolist())
    )
    for w in touched.tolist():
        entries.pop(w, None)
    if len(sorted_vertices):
        boundary = np.empty(len(sorted_vertices), dtype=bool)
        boundary[0] = True
        np.not_equal(
            sorted_vertices[1:], sorted_vertices[:-1], out=boundary[1:]
        )
        bounds = np.flatnonzero(boundary).tolist()
        bounds.append(len(sorted_vertices))
        for i, w in enumerate(sorted_vertices[boundary].tolist()):
            entries[w] = pair_list[bounds[i]:bounds[i + 1]]


def _finish_insertion_repairs(
    new_graph: EdgeLabeledGraph,
    contexts: list[_LandmarkRepair],
    stacked: np.ndarray,
    all_rows: np.ndarray,
    stats: RepairStats,
) -> None:
    """Steps 4–5 for every repairable landmark in one matrix pass.

    ``all_rows`` must already hold the *post-delta* improved rows of all
    contexts, concatenated in context order (the global decrease-only
    relaxation ran between prepare and finish); ``stacked`` is their
    shared subset-min lattice from :func:`_stacked_subset_min`, still
    carrying the *old* rows.
    """
    num_vertices = new_graph.num_vertices
    universe = contexts[0].universe
    stride = universe + 1
    sentinel = len(contexts) * stride
    steps = np.asarray(
        [label_bit(label) for label in range(universe.bit_length())],
        dtype=np.int64,
    )

    # Global lattice row ids of the improved masks, block-offset per
    # landmark; overwrite their rows so the lattice holds the post-delta
    # distances everywhere.
    imp_ids = np.concatenate(
        [
            np.int64(j) * stride + ctx.improved_arr
            for j, ctx in enumerate(contexts)
        ]
    )
    landmark_rows = np.concatenate(
        [
            np.full(len(ctx.improved), ctx.landmark, dtype=np.int64)
            for ctx in contexts
        ]
    )
    imp_masks = imp_ids & np.int64(stride - 1)
    stacked[imp_ids] = all_rows

    # Step 4a — improved masks (the few whose rows actually changed):
    # full Theorem 2 emission recompute over the post-delta rows
    # (Observation 2's ``d >= |C|`` filter is implied by minimality, so
    # applying it keeps the output identical).  Rows of masks disjoint
    # from the landmark's incident labels (and mask 0) are all-BIG
    # outside the landmark column, so folding them into the one-removed
    # minimum matches the skip in the lazy path; absent labels route to
    # the shared sentinel row (padded gather).
    candidate = all_rows < BIG
    candidate[np.arange(len(imp_ids)), landmark_rows] = False
    pops = np.asarray(
        [popcount(mask) for ctx in contexts for mask in ctx.improved],
        dtype=np.int32,
    )
    candidate &= all_rows >= pops[:, None]
    sub_ids = np.where(
        (imp_masks[:, None] & steps[None, :]) != 0,
        imp_ids[:, None] ^ steps[None, :],
        sentinel,
    )
    best = stacked[sub_ids].min(axis=1)
    minimal = candidate & (all_rows < best)
    mask_idx, vertex_idx = np.nonzero(minimal)
    emit_ids = imp_ids[mask_idx]
    emit_dists = all_rows[mask_idx, vertex_idx]

    # Step 4b — dirty-but-not-improved masks: their rows are unchanged
    # and their one-removed minimum can only *decrease* (some subset row
    # improved), so stored entries can only fall out of minimality —
    # never join it.  A survival test on the stored pairs alone replaces
    # the full-row recompute.
    stored_imp_idx: list[np.ndarray] = []
    check_idx: list[np.ndarray] = []
    chk_parts: list[np.ndarray] = []
    chk_vert_parts: list[np.ndarray] = []
    chk_dist_parts: list[np.ndarray] = []
    stored_parts: list[np.ndarray] = []
    stored_vert_parts: list[np.ndarray] = []
    stored_dist_parts: list[np.ndarray] = []
    for j, ctx in enumerate(contexts):
        stats.masks_dirty += len(ctx.dirty_sorted)
        improved_lut = np.zeros(stride, dtype=bool)
        improved_lut[ctx.improved_arr] = True
        dirty_lut = np.zeros(stride, dtype=bool)
        dirty_lut[np.asarray(ctx.dirty_sorted, dtype=np.int64)] = True
        stored_imp = improved_lut[ctx.flat_masks]
        check_sel = dirty_lut[ctx.flat_masks] & ~stored_imp
        stored_imp_idx.append(np.flatnonzero(stored_imp))
        check_idx.append(np.flatnonzero(check_sel))
        base = np.int64(j) * stride
        chk_parts.append(base + ctx.flat_masks[check_sel])
        chk_vert_parts.append(ctx.flat_vertices[check_sel])
        chk_dist_parts.append(ctx.flat_dists[check_sel])
        stored_parts.append(base + ctx.flat_masks[stored_imp])
        stored_vert_parts.append(ctx.flat_vertices[stored_imp])
        stored_dist_parts.append(ctx.flat_dists[stored_imp])
    chk_ids = np.concatenate(chk_parts)
    chk_verts = np.concatenate(chk_vert_parts)
    chk_dists = np.concatenate(chk_dist_parts)
    sub_chk = np.where(
        ((chk_ids & np.int64(stride - 1))[:, None] & steps[None, :]) != 0,
        chk_ids[:, None] ^ steps[None, :],
        sentinel,
    )
    best_chk = stacked[sub_chk, chk_verts[:, None]].min(axis=1)
    survives = chk_dists < best_chk

    # Step 5 — change detection and splice.  Non-improved masks change
    # iff a stored pair was dropped; improved masks change iff their
    # stored and emitted (mask, vertex, dist) key sets differ (each key
    # occurs at most once per side, so keys seen exactly once in the
    # concatenation are the symmetric difference).
    key_base = np.int64(BIG) * num_vertices
    key_stored = (
        np.concatenate(stored_parts) * key_base
        + np.concatenate(stored_vert_parts) * np.int64(BIG)
        + np.concatenate(stored_dist_parts)
    )
    key_emit = emit_ids * key_base + vertex_idx * np.int64(BIG) + emit_dists
    uniq, counts = np.unique(
        np.concatenate([key_stored, key_emit]), return_counts=True
    )
    diff_keys = uniq[counts == 1]
    rem_stored = np.isin(key_stored, diff_keys)
    add_sel = np.isin(key_emit, diff_keys)

    # Split the edits back per landmark: stored/check pairs by their
    # per-context part lengths, emissions by improved-row offset
    # (``mask_idx`` ascends, so one searchsorted per boundary).
    stored_bounds = np.cumsum([0] + [len(part) for part in stored_parts])
    chk_bounds = np.cumsum([0] + [len(part) for part in chk_parts])
    row_bounds = np.cumsum([0] + [len(ctx.improved) for ctx in contexts])
    add_pos = np.flatnonzero(add_sel)
    add_split = np.searchsorted(mask_idx[add_pos], row_bounds)
    for j, ctx in enumerate(contexts):
        rem_imp = stored_imp_idx[j][
            rem_stored[stored_bounds[j]:stored_bounds[j + 1]]
        ]
        rem_chk = check_idx[j][~survives[chk_bounds[j]:chk_bounds[j + 1]]]
        pos = add_pos[add_split[j]:add_split[j + 1]]
        _splice_pairs(
            ctx,
            np.concatenate([rem_imp, rem_chk]),
            vertex_idx[pos],
            emit_dists[pos],
            imp_masks[mask_idx[pos]],
            num_vertices,
        )


def _finish_insertion_repair(
    new_graph: EdgeLabeledGraph, ctx: _LandmarkRepair, stats: RepairStats
) -> None:
    """Lazy steps 4–5 for one landmark (no dense lattice in memory).

    ``ctx.work`` must already hold the *post-delta* improved rows (the
    global decrease-only relaxation ran between prepare and finish);
    every other row is reconstructed from the stored entries on demand.
    """
    num_vertices = new_graph.num_vertices
    entries = ctx.entries
    landmark = ctx.landmark
    incident = ctx.incident
    dirty_sorted = ctx.dirty_sorted
    dirty = set(dirty_sorted)
    flat_vertices = ctx.flat_vertices
    flat_dists = ctx.flat_dists
    flat_masks = ctx.flat_masks
    work = ctx.work

    improved_pos = {mask: i for i, mask in enumerate(ctx.improved)}
    old_rows: dict[int, np.ndarray] = {}

    def row_for(mask: int) -> np.ndarray | None:
        """Post-delta distance row of ``mask`` (None = all-unreachable)."""
        pos = improved_pos.get(mask)
        if pos is not None:
            return work[pos]
        if mask & incident == 0:
            return None  # Observation 1: landmark isolated, row all-BIG
        row = old_rows.get(mask)
        if row is None:
            row = _reconstruct_row(
                flat_vertices, flat_dists, flat_masks, landmark,
                num_vertices, mask,
            )
            stats.rows_reconstructed += 1
            old_rows[mask] = row
        return row

    # Step 4: recompute the SP-minimal entries of every dirty mask
    # (Theorem 2 over one-removed subset rows; Observation 2's
    # ``d >= |C|`` filter is implied by minimality, so applying it keeps
    # the output identical).
    stats.masks_dirty += len(dirty)
    replacements: dict[int, list[tuple[int, int]]] = {}
    for mask in dirty_sorted:
        row = row_for(mask)
        assert row is not None  # dirty masks intersect ``incident``
        candidate_1d = row < BIG
        candidate_1d[landmark] = False
        candidate_1d &= row >= popcount(mask)
        best_1d: np.ndarray | None = None
        for sub in iter_one_removed(mask):
            if sub == 0:
                continue
            sub_row = row_for(sub)
            if sub_row is None:
                continue
            best_1d = (
                sub_row if best_1d is None else np.minimum(best_1d, sub_row)
            )
        minimal_1d = (
            candidate_1d if best_1d is None else candidate_1d & (row < best_1d)
        )
        replacements[mask] = [
            (int(u), int(row[u])) for u in np.nonzero(minimal_1d)[0]
        ]

    # Step 5: splice — drop every stored entry with a dirty mask, insert
    # the recomputed ones, restore the per-vertex (distance, mask) order.
    touched_vertices: set[int] = set()
    for u in list(entries):
        pairs = entries[u]
        kept_pairs = [pair for pair in pairs if pair[1] not in dirty]
        if len(kept_pairs) != len(pairs):
            entries[u] = kept_pairs
            touched_vertices.add(u)
    for mask in dirty_sorted:
        for u, dist in replacements[mask]:
            entries.setdefault(u, []).append((dist, mask))
            touched_vertices.add(u)
    for u in touched_vertices:
        if u in entries:
            if entries[u]:
                entries[u].sort()
            else:
                del entries[u]
    return


def repair_powcov(
    index: PowCovIndex, new_graph: EdgeLabeledGraph
) -> RepairStats:
    """Absorb ``new_graph``'s delta into a built PowCov index, in place.

    The repaired index is bit-identical to ``PowCovIndex(new_graph,
    landmarks, ...).build()``.  Directed and weighted indexes (and
    indexes that were never built) fall back to a full rebuild.
    """
    delta = _require_descendant(index.graph, new_graph)
    stats = RepairStats(kind="powcov", num_landmarks=len(index.landmarks))
    started = perf_counter()
    with span("dynamic.repair_powcov", ops=delta.num_ops) as repair_span:
        fine_grained = (
            type(index) is PowCovIndex
            and not index.graph.directed
            and index._built
        )
        if not fine_grained:
            index.graph = new_graph
            index.build()
            stats.full_rebuild = True
        else:
            old_graph = index.graph
            insertions = list(delta.insertions) + [
                (u, v, new_label) for u, v, _old, new_label in delta.relabels
            ]
            deletions = list(delta.deletions) + [
                (u, v, old_label) for u, v, old_label, _new in delta.relabels
            ]
            repairable: list[int] = []
            for i, landmark in enumerate(index.landmarks):
                if deletions and _deletion_dirty(
                    old_graph, index._flat[i], landmark, deletions
                ):
                    result = traverse_powerset_waves(new_graph, landmark)
                    index.per_landmark[i] = result
                    index._flat[i] = result.entries
                    stats.landmarks_resweep += 1
                else:
                    repairable.append(i)
            contexts: list[_LandmarkRepair] = []
            if insertions and repairable:
                for i in repairable:
                    prepared = _insertion_seeds(
                        new_graph, index._flat[i], index.landmarks[i],
                        insertions,
                    )
                    if prepared is None:
                        stats.landmarks_clean += 1
                        continue
                    contexts.append(
                        _prepare_insertion_repair(
                            new_graph, index._flat[i], index.landmarks[i],
                            prepared, stats,
                        )
                    )
                    stats.landmarks_repaired += 1
            else:
                stats.landmarks_clean += len(repairable)
            if contexts:
                num_vertices = new_graph.num_vertices
                universe = contexts[0].universe
                stride = universe + 1
                stacked: np.ndarray | None = None
                if stride * num_vertices <= _SOS_TABLE_CELLS:
                    # One zeta transform recovers every old row of every
                    # landmark at once; the stacked lattice is transient
                    # (dropped as soon as the repair completes).
                    stacked = _stacked_subset_min(
                        contexts, num_vertices, universe
                    )
                    for j, ctx in enumerate(contexts):
                        # Fancy index -> a *copy* of the old improved rows.
                        ctx.work = stacked[j * stride + ctx.improved_arr]
                else:
                    for ctx in contexts:
                        ctx.work = np.stack(
                            [
                                _reconstruct_row(
                                    ctx.flat_vertices, ctx.flat_dists,
                                    ctx.flat_masks, ctx.landmark,
                                    num_vertices, mask,
                                )
                                for mask in ctx.improved
                            ]
                        )
                # Step 3, globally: one decrease-only frontier relaxation
                # over every repairable landmark's improved rows at once.
                all_rows = np.concatenate([ctx.work for ctx in contexts])
                all_masks = np.concatenate(
                    [ctx.improved_arr for ctx in contexts]
                )
                seed_lists = [
                    ctx.seeds_by_mask[mask]
                    for ctx in contexts
                    for mask in ctx.improved
                ]
                stats.vertices_touched += _decrease_only_bfs_multi(
                    new_graph, all_masks, all_rows, seed_lists
                )
                if stacked is not None:
                    _finish_insertion_repairs(
                        new_graph, contexts, stacked, all_rows, stats
                    )
                else:
                    offset = 0
                    for ctx in contexts:
                        ctx.work = all_rows[offset:offset + len(ctx.improved)]
                        offset += len(ctx.improved)
                        _finish_insertion_repair(new_graph, ctx, stats)
            index.graph = new_graph
            if index.storage == "packed":
                index._build_packed()
            if index.storage == "trie":
                index._tries = _rebuild_tries(index._flat)
            # The engine memoizes its packed executor on the identity of
            # ``_flat``; swap in a fresh list (same entry dicts) so the
            # next ``executor_for`` call rebuilds its view of the tables.
            index._flat = list(index._flat)
        repair_span.count("landmarks_resweep", stats.landmarks_resweep)
        repair_span.count("rows_relaxed", stats.rows_relaxed)
    _clear_stored_fingerprint(index)
    stats.seconds = perf_counter() - started
    _flush_metrics(stats)
    return stats


def _rebuild_tries(
    flat: list[dict[int, list[tuple[int, int]]]],
) -> list[dict[int, list[tuple[int, LabelSetTrie]]]]:
    tries: list[dict[int, list[tuple[int, LabelSetTrie]]]] = []
    for entries in flat:
        per_vertex: dict[int, list[tuple[int, LabelSetTrie]]] = {}
        for u, pairs in entries.items():
            groups: list[tuple[int, LabelSetTrie]] = []
            for dist, mask in pairs:  # pairs are distance-sorted
                if not groups or groups[-1][0] != dist:
                    groups.append((dist, LabelSetTrie()))
                groups[-1][1].insert(mask)
            per_vertex[u] = groups
        tries.append(per_vertex)
    return tries


# ----------------------------------------------------------------------
# ChromLand repair
# ----------------------------------------------------------------------
def repair_chromland(
    index: ChromLandIndex, new_graph: EdgeLabeledGraph
) -> RepairStats:
    """Absorb ``new_graph``'s delta into a built ChromLand index, in place.

    Per-landmark granularity: only the mono/bi sweeps whose constraint
    mask intersects the delta's touched labels are re-run (on the new
    graph, through the same batched BFS kernel as the build); the rest of
    the tables are carried over, and the result is bit-identical to a
    fresh build.
    """
    delta = _require_descendant(index.graph, new_graph)
    stats = RepairStats(kind="chromland", num_landmarks=index.num_landmarks)
    started = perf_counter()
    if not index._built:
        index.graph = new_graph
        index.build()
        stats.full_rebuild = True
        stats.seconds = perf_counter() - started
        _flush_metrics(stats)
        return stats
    with span("dynamic.repair_chromland", ops=delta.num_ops) as repair_span:
        touched = delta.touched_label_mask()
        color_values = sorted({int(c) for c in index.colors})
        landmarks_by_color = {
            color: np.nonzero(index.colors == color)[0] for color in color_values
        }
        directed = new_graph.directed
        graphs: tuple[EdgeLabeledGraph, ...] = (new_graph,)
        if directed:
            graphs = (new_graph, new_graph.reversed())
        jobs: list[tuple[int, int, int]] = []  # (graph_index, source, mask)
        unpackers: list[tuple[Any, ...]] = []
        for i in range(index.num_landmarks):
            x = int(index.landmarks[i])
            own_color = int(index.colors[i])
            own_bit = label_bit(own_color)
            if own_bit & touched:
                jobs.append((0, x, own_bit))
                unpackers.append(("mono", i))
                if directed:
                    jobs.append((1, x, own_bit))
                    unpackers.append(("mono_in", i))
            else:
                stats.sweeps_kept += 1 + (1 if directed else 0)
            for other_color in color_values:
                if other_color == own_color:
                    continue
                mask = own_bit | label_bit(other_color)
                if mask & touched:
                    jobs.append((0, x, mask))
                    unpackers.append(("bi", i, other_color))
                else:
                    stats.sweeps_kept += 1
        stats.sweeps_rerun = len(jobs)
        repair_span.count("sweeps_rerun", len(jobs))
        if jobs:
            by_graph: dict[int, list[int]] = {}
            for position, (graph_index, _s, _m) in enumerate(jobs):
                by_graph.setdefault(graph_index, []).append(position)
            results: list[np.ndarray | None] = [None] * len(jobs)
            for graph_index, positions in by_graph.items():
                dist = batched_constrained_bfs(
                    graphs[graph_index],
                    [jobs[p][1] for p in positions],
                    masks=[jobs[p][2] for p in positions],
                )
                for row, p in enumerate(positions):
                    results[p] = dist[row]
            assert index.mono is not None and index.bi is not None
            for what, row in zip(unpackers, results):
                assert row is not None
                if what[0] == "mono":
                    index.mono[what[1]] = row
                elif what[0] == "mono_in":
                    assert index.mono_in is not None
                    index.mono_in[what[1]] = row
                else:
                    _tag, i, other_color = what
                    targets = landmarks_by_color[other_color]
                    # ``row`` is vertex-indexed; gather at the landmark
                    # vertices of the target color.
                    index.bi[i, targets] = row[index.landmarks[targets]]
            if not directed:
                # Same symmetrization as the build; untouched cells are
                # already symmetric, so re-applying it is idempotent there.
                from ..graph.traversal import UNREACHABLE

                both = np.where(
                    index.bi == UNREACHABLE, np.iinfo(np.int32).max, index.bi
                )
                both = np.minimum(both, both.T)
                index.bi = np.where(
                    both == np.iinfo(np.int32).max, UNREACHABLE, both
                )
    index.graph = new_graph
    _clear_stored_fingerprint(index)
    stats.seconds = perf_counter() - started
    _flush_metrics(stats)
    return stats


# ----------------------------------------------------------------------
# Dispatch + differential harness
# ----------------------------------------------------------------------
def repair_index(index: DistanceOracle, new_graph: EdgeLabeledGraph) -> RepairStats:
    """Repair any oracle in place so it serves ``new_graph`` exactly.

    PowCov and ChromLand use their incremental paths; other index types
    rebuild on the new graph; oracles without a build step (the BFS
    baselines answer from the graph directly) just rebind.
    """
    if isinstance(index, ChromLandIndex):
        return repair_chromland(index, new_graph)
    if isinstance(index, PowCovIndex):
        return repair_powcov(index, new_graph)
    _require_descendant(index.graph, new_graph)
    stats = RepairStats(kind=index.name)
    started = perf_counter()
    index.graph = new_graph
    build = getattr(index, "build", None)
    if callable(build):
        build()
        stats.full_rebuild = True
    _clear_stored_fingerprint(index)
    stats.seconds = perf_counter() - started
    _flush_metrics(stats)
    return stats


def rebuild_reference(index: DistanceOracle) -> DistanceOracle:
    """A from-scratch rebuild of ``index`` on its (current) graph."""
    if isinstance(index, ChromLandIndex):
        return ChromLandIndex(
            index.graph,
            [int(x) for x in index.landmarks],
            [int(c) for c in index.colors],
            query_mode=index.query_mode,
        ).build()
    if type(index) is PowCovIndex:
        return PowCovIndex(
            index.graph,
            index.landmarks,
            builder=index.builder,
            storage=index.storage,
            estimator=index.estimator,
        ).build()
    raise TypeError(f"no rebuild reference for {type(index).__name__}")


def assert_repair_matches_rebuild(
    index: DistanceOracle,
    queries: list[tuple[int, int, int]] | None = None,
) -> None:
    """Differential check: a repaired index must equal a fresh rebuild.

    Compares the stored tables bit-for-bit (PowCov entry dicts, ChromLand
    matrices) and, when ``queries`` are given, asserts exact answer
    equality.  Raises ``AssertionError`` with a located diagnosis on the
    first divergence.
    """
    reference = rebuild_reference(index)
    if isinstance(index, ChromLandIndex):
        assert isinstance(reference, ChromLandIndex)
        assert index.mono is not None and reference.mono is not None
        assert np.array_equal(index.mono, reference.mono), (
            "repair diverged: mono table mismatch vs rebuild"
        )
        assert index.bi is not None and reference.bi is not None
        assert np.array_equal(index.bi, reference.bi), (
            "repair diverged: bi table mismatch vs rebuild"
        )
        if index.mono_in is not None or reference.mono_in is not None:
            assert index.mono_in is not None and reference.mono_in is not None
            assert np.array_equal(index.mono_in, reference.mono_in), (
                "repair diverged: mono_in table mismatch vs rebuild"
            )
    elif isinstance(index, PowCovIndex):
        assert isinstance(reference, PowCovIndex)
        for i, landmark in enumerate(index.landmarks):
            if index._flat[i] != reference._flat[i]:
                diff = {
                    u
                    for u in set(index._flat[i]) | set(reference._flat[i])
                    if index._flat[i].get(u) != reference._flat[i].get(u)
                }
                raise AssertionError(
                    f"repair diverged: landmark {landmark} entries differ at "
                    f"vertices {sorted(diff)[:5]}"
                )
    else:
        raise TypeError(f"no differential check for {type(index).__name__}")
    if queries:
        for source, target, mask in queries:
            repaired = index.query(source, target, mask)
            rebuilt = reference.query(source, target, mask)
            assert repaired == rebuilt, (
                f"repair diverged on query ({source}, {target}, {mask:#x}): "
                f"repaired={repaired} rebuilt={rebuilt}"
            )
