"""SP-minimal label-set enumeration — Algorithms 1 and 2 of the paper.

Given a landmark ``x``, a label set ``C`` is *SP-minimal* with respect to
``(x, u)`` iff no proper subset ``S ⊂ C`` achieves the same constrained
distance ``d_S(x, u) = d_C(x, u)`` (Definitions 1-2).  The PowCov index
stores, per landmark-vertex pair, exactly the SP-minimal sets with their
distances; Theorem 1 shows every constrained distance is recoverable from
them.

Two builders are provided:

* :func:`brute_force_sp_minimal` — Algorithm 1 (TraversePowerset-BruteForce):
  one constrained SSSP per label set, then the Theorem 2 one-label-removed
  test on every reachable vertex.
* :func:`traverse_powerset` — Algorithm 2 (TraversePowerset), adding the
  paper's four pruning rules:

  - **Observation 1** (skip unnecessary label sets): ``C`` disconnected from
    ``x`` iff ``C ∩ L_x = ∅`` where ``L_x`` are the labels incident to ``x``;
  - **Observation 2** (skip unnecessary tests): ``C`` can only be SP-minimal
    for vertices at distance ``≥ |C|``;
  - **Observation 3** (O(1) negative test): a monochromatic unconstrained
    shortest path with label ``l_u`` makes every ``C ⊋ {l_u}``
    non-SP-minimal;
  - **Observation 4** (O(1) positive test): if every shortest-path
    predecessor of ``u`` (within ``C``) is SP-minimal for ``C``, so is ``u``.

  Each rule can be toggled independently for the pruning-ablation benchmark.

Both builders return identical results (property-tested); they differ only
in running time, which is what Table 3 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...graph.labeled_graph import EdgeLabeledGraph
from ...graph.labelsets import (
    full_mask,
    iter_one_removed,
    label_bit,
    popcount,
    singleton_masks,
)
from ...graph.traversal import (
    UNREACHABLE,
    constrained_bfs,
    constrained_bfs_tree,
    monochromatic_sp_labels,
)

__all__ = [
    "BIG",
    "LandmarkSPMinimal",
    "generate_candidates",
    "generate_candidates_apriori",
    "brute_force_sp_minimal",
    "traverse_powerset",
]

#: Internal "infinite" distance; small enough that sums cannot overflow int32.
BIG = np.int32(2**30)


@dataclass
class LandmarkSPMinimal:
    """SP-minimal sets of one landmark, plus build statistics.

    ``entries[u]`` is the list of ``(distance, label_mask)`` pairs for all
    SP-minimal label sets w.r.t. ``(landmark, u)``, sorted by distance (ties
    by mask).  The landmark itself has no entries.
    """

    landmark: int
    entries: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    num_sssp: int = 0
    num_full_tests: int = 0
    num_auto_minimal: int = 0

    @property
    def total_entries(self) -> int:
        """Total SP-minimal sets stored for this landmark."""
        return sum(len(pairs) for pairs in self.entries.values())

    def max_entries_per_vertex(self) -> int:
        """The paper's ``H`` for this landmark (Proposition 1 bound)."""
        if not self.entries:
            return 0
        return max(len(pairs) for pairs in self.entries.values())


def _clean(dist: np.ndarray) -> np.ndarray:
    """Replace the ``-1`` unreachable sentinel by :data:`BIG`."""
    return np.where(dist == UNREACHABLE, BIG, dist.astype(np.int32))


def generate_candidates(graph: EdgeLabeledGraph, landmark: int) -> list[int]:
    """Label sets surviving Observation 1, by direct bitmask filtering.

    ``C`` is useful for landmark ``x`` iff ``C ∩ L_x ≠ ∅``; everything else
    leaves ``x`` isolated.  With ``|L|`` in the tens, scanning all ``2^|L|``
    masks is cheap; :func:`generate_candidates_apriori` is the paper's
    level-wise Function 1 producing the same set.
    """
    incident = graph.incident_label_mask(landmark)
    return [mask for mask in range(1, full_mask(graph.num_labels) + 1) if mask & incident]


def generate_candidates_apriori(graph: EdgeLabeledGraph, landmark: int) -> list[int]:
    """Function 1 of the paper: Apriori-style candidate generation.

    Candidates are enumerated bottom-up on the *complements*: a complement
    set ``B`` is pruned as soon as ``B ⊇ L_x`` (then ``L \\ B`` misses every
    label incident to the landmark), and by anti-monotonicity no superset of
    ``B`` needs to be generated.  The emitted candidates are the complements
    ``L \\ B`` of the surviving ``B``, plus the full label set ``L`` itself
    (the complement of the empty set, which the level-wise loop never
    reaches but the algorithm needs for ``SingleLabelSP``).
    """
    universe = full_mask(graph.num_labels)
    incident = graph.incident_label_mask(landmark)
    if incident == 0:
        return []
    # The full set L is the complement of the empty set; the level-wise loop
    # starts at singletons, so emit it up front (Line 8 of Algorithm 2 needs
    # the unconstrained SSSP in any case).
    emitted: set[int] = {universe}
    level = [
        single
        for single in singleton_masks(graph.num_labels)
        if (single & incident) != incident
    ]
    while level:
        level_set = set(level)
        for complement in level:
            candidate = universe ^ complement
            if candidate:
                emitted.add(candidate)
        next_level: set[int] = set()
        for complement in level:
            # Extend with labels above the highest bit: each set is built
            # exactly once, in sorted label order.
            for label in range(complement.bit_length(), graph.num_labels):
                joined = complement | label_bit(label)
                if joined in next_level:
                    continue
                if (joined & incident) == incident:
                    continue  # B ⊇ L_x: complement misses every incident label
                # Anti-monotone check: all one-removed subsets survived.
                if any(sub not in level_set for sub in iter_one_removed(joined)):
                    continue
                next_level.add(joined)
        level = sorted(next_level)
    return sorted(emitted)


def brute_force_sp_minimal(
    graph: EdgeLabeledGraph,
    landmark: int,
    distances_out: dict[int, np.ndarray] | None = None,
) -> LandmarkSPMinimal:
    """Algorithm 1: all SSSPs, then the Theorem 2 test on every vertex.

    ``distances_out``, when supplied, receives the cleaned distance vector
    of every label set (callers reuse them, e.g. the naive-index size
    accounting of Table 2).
    """
    result = LandmarkSPMinimal(landmark=landmark)
    universe = full_mask(graph.num_labels)
    distances: dict[int, np.ndarray] = {}
    for mask in range(1, universe + 1):
        distances[mask] = _clean(constrained_bfs(graph, landmark, mask))
        result.num_sssp += 1
    if distances_out is not None:
        distances_out.update(distances)

    collected: dict[int, list[tuple[int, int]]] = {}
    for mask in range(1, universe + 1):
        dist_c = distances[mask]
        best_subset = None
        for sub in iter_one_removed(mask):
            if sub == 0:
                continue
            arr = distances[sub]
            best_subset = arr if best_subset is None else np.minimum(best_subset, arr)
        if best_subset is None:
            minimal = dist_c < BIG
        else:
            minimal = (dist_c < BIG) & (dist_c < best_subset)
        minimal[landmark] = False
        result.num_full_tests += int((dist_c < BIG).sum())
        for u in np.nonzero(minimal)[0]:
            collected.setdefault(int(u), []).append((int(dist_c[u]), mask))
    for u, pairs in collected.items():
        pairs.sort()
    result.entries = collected
    return result


def traverse_powerset(
    graph: EdgeLabeledGraph,
    landmark: int,
    use_obs1: bool = True,
    use_obs2: bool = True,
    use_obs3: bool = True,
    use_obs4: bool = True,
) -> LandmarkSPMinimal:
    """Algorithm 2: SP-minimal sets with the paper's pruning rules.

    Produces exactly the same entries as :func:`brute_force_sp_minimal`.
    The four keyword flags drive the pruning-ablation benchmark; with all
    four off this degenerates to the brute force (modulo implementation
    details of the test loop).
    """
    result = LandmarkSPMinimal(landmark=landmark)
    universe = full_mask(graph.num_labels)

    # --- Observation 1: candidate label sets ---------------------------
    if use_obs1:
        candidates = generate_candidates(graph, landmark)
    else:
        candidates = list(range(1, universe + 1))
    if not candidates:
        return result

    # --- Observation 3: monochromatic shortest-path labels -------------
    mono: np.ndarray | None = None
    if use_obs3:
        mono = monochromatic_sp_labels(graph, landmark)

    # Label sets are processed in ascending bitmask order, which guarantees
    # every one-removed subset of C is visited (or Obs-1-pruned) before C.
    # Per-mask shortest-path DAG arcs come from the BFS itself and are
    # discarded right after the sweep, keeping memory at O(2^|L| n).
    distances: dict[int, np.ndarray] = {}
    collected: dict[int, list[tuple[int, int]]] = {}
    flagged = np.zeros(graph.num_vertices, dtype=bool)  # reused across masks

    for mask in candidates:
        if use_obs4:
            raw_dist, tree_edges = constrained_bfs_tree(graph, landmark, mask)
        else:
            raw_dist, tree_edges = constrained_bfs(graph, landmark, mask), None
        dist_c = _clean(raw_dist)
        distances[mask] = dist_c
        result.num_sssp += 1

        size = popcount(mask)
        reachable = dist_c < BIG
        reachable[landmark] = False

        min_dist = size if use_obs2 else 1
        candidate_vertices = reachable & (dist_c >= min_dist)

        if use_obs3 and size >= 2 and mono is not None:
            # A monochromatic SP label inside C makes C ⊋ {l_u} non-minimal.
            candidate_vertices &= (mono & mask) == 0

        if not candidate_vertices.any():
            continue

        # Gather one-removed distance vectors once per label set.
        subset_arrays = []
        for sub in iter_one_removed(mask):
            if sub == 0:
                continue
            arr = distances.get(sub)
            if arr is not None:  # Obs-1-pruned subsets are all-unreachable
                subset_arrays.append(arr)

        def full_test(indices: np.ndarray) -> np.ndarray:
            """Theorem 2 on ``indices``; returns a boolean array."""
            result.num_full_tests += len(indices)
            if len(indices) == 0:
                return np.zeros(0, dtype=bool)
            if not subset_arrays:
                return np.ones(len(indices), dtype=bool)
            best = subset_arrays[0][indices].copy()
            for arr in subset_arrays[1:]:
                np.minimum(best, arr[indices], out=best)
            return dist_c[indices] < best

        if not use_obs4:
            num_candidates = int(candidate_vertices.sum())
            result.num_full_tests += num_candidates
            if not subset_arrays:
                minimal = candidate_vertices
            elif num_candidates * 4 >= graph.num_vertices:
                # Dense candidate set: contiguous array ops beat gathers.
                best = subset_arrays[0]
                for arr in subset_arrays[1:]:
                    best = np.minimum(best, arr)
                minimal = candidate_vertices & (dist_c < best)
            else:
                indices = np.nonzero(candidate_vertices)[0]
                best = subset_arrays[0][indices].copy()
                for arr in subset_arrays[1:]:
                    np.minimum(best, arr[indices], out=best)
                minimal = np.zeros(graph.num_vertices, dtype=bool)
                minimal[indices[dist_c[indices] < best]] = True
            for u in np.nonzero(minimal)[0]:
                collected.setdefault(int(u), []).append((int(dist_c[u]), mask))
            continue

        # --- Observation 4: level sweep over the C-constrained BFS DAG ---
        is_min = np.zeros(graph.num_vertices, dtype=bool)
        cand_idx = np.nonzero(candidate_vertices)[0]
        cand_order = np.argsort(dist_c[cand_idx], kind="stable")
        cand_idx = cand_idx[cand_order]
        cand_dist = dist_c[cand_idx]
        for t in np.unique(cand_dist):
            t = int(t)
            lo_v = np.searchsorted(cand_dist, t, side="left")
            hi_v = np.searchsorted(cand_dist, t, side="right")
            level_vertices = cand_idx[lo_v:hi_v]
            # DAG arcs entering level t, captured during the BFS.
            if t < len(tree_edges):
                seg_src, seg_tgt, _seg_labels = tree_edges[t]
                bad_tgt = seg_tgt[~is_min[seg_src]]
            else:  # pragma: no cover - candidates never exceed max level
                bad_tgt = np.empty(0, dtype=np.int64)
            flagged[bad_tgt] = True

            needs_test = level_vertices[flagged[level_vertices]]
            auto = level_vertices[~flagged[level_vertices]]
            flagged[bad_tgt] = False  # reset the shared buffer
            result.num_auto_minimal += len(auto)
            is_min[auto] = True
            passed = needs_test[full_test(needs_test)]
            is_min[passed] = True

        for u in np.nonzero(is_min)[0]:
            collected.setdefault(int(u), []).append((int(dist_c[u]), mask))

    for pairs in collected.values():
        pairs.sort()
    result.entries = collected
    return result
