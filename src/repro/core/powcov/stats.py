"""Index-size accounting used by the Table 2 experiment.

The paper's Table 2 reports, per dataset, the average number of distances
stored per landmark-vertex pair for PowCov and for the naive powerset index,
plus the percentage saving.  These helpers compute those quantities from
built indexes without re-running any traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..naive import NaivePowersetIndex
from .index import PowCovIndex

__all__ = ["IndexSizeReport", "compare_index_sizes"]


@dataclass(frozen=True)
class IndexSizeReport:
    """Average per-pair footprints of PowCov vs the naive index."""

    powcov_avg: float
    naive_avg: float
    powcov_total: int
    naive_total: int
    powcov_max_per_pair: int

    @property
    def saving_percent(self) -> float:
        """How much (in %) PowCov shrinks the naive index (Table 2, last row)."""
        if self.naive_avg == 0:
            return 0.0
        return 100.0 * (1.0 - self.powcov_avg / self.naive_avg)


def compare_index_sizes(
    powcov: PowCovIndex, naive: NaivePowersetIndex
) -> IndexSizeReport:
    """Build a Table-2 row from two already-built indexes.

    Both indexes must share the same graph and landmark set, otherwise the
    per-pair averages are not comparable.
    """
    if powcov.graph is not naive.graph:
        raise ValueError("indexes must be built on the same graph")
    if list(powcov.landmarks) != list(naive.landmarks):
        raise ValueError("indexes must use the same landmarks")
    return IndexSizeReport(
        powcov_avg=powcov.average_entries_per_pair(),
        naive_avg=naive.average_entries_per_pair(),
        powcov_total=powcov.index_size_entries(),
        naive_total=naive.index_size_entries(),
        powcov_max_per_pair=powcov.max_entries_per_pair(),
    )
