"""Weighted-graph PowCov — the Section 2 "easily extended" remark, realized.

Subsumption and SP-minimality (Definitions 1-2) never use unit edge
lengths, and neither does the Theorem 2 one-label-removed test, so the
PowCov construction carries over to non-negative arc weights verbatim once
the constrained SSSPs run Dijkstra instead of BFS.  What does *not* carry
over untouched:

* Observation 2 (``|C| <= d_C(x, u)``) counts *edges*; it stays valid only
  when every weight is ``>= 1`` (then #edges <= total weight).  The builder
  applies it exactly in that case.
* Observations 3-4 rely on the BFS level structure; re-deriving them for
  Dijkstra DAGs buys little because the SSSP phase dominates anyway, so
  the weighted builder uses Observation 1 + the vectorized Theorem 2 test.

Equality of float distances decides subsumption; with real-valued weights
two genuinely different path lengths can collide within rounding.  Integer
or otherwise exactly-representable weights (the common case: travel times
in seconds, costs in cents) are decided exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...graph.labeled_graph import EdgeLabeledGraph
from ...graph.labelsets import full_mask, iter_one_removed, popcount
from ...graph.traversal import constrained_dijkstra
from .index import PowCovIndex
from .spminimal import LandmarkSPMinimal, generate_candidates

__all__ = ["weighted_sp_minimal", "WeightedPowCovIndex"]


def weighted_sp_minimal(
    graph: EdgeLabeledGraph,
    landmark: int,
    weights: np.ndarray,
    use_obs1: bool = True,
) -> LandmarkSPMinimal:
    """SP-minimal label sets under non-negative arc ``weights``.

    ``weights`` is parallel to the graph's arc arrays.  Entries are
    ``(distance, mask)`` with float distances.
    """
    if len(weights) != graph.num_arcs:
        raise ValueError("weights must be parallel to the arc arrays")
    if (np.asarray(weights) < 0).any():
        raise ValueError("weights must be non-negative")
    result = LandmarkSPMinimal(landmark=landmark)
    if use_obs1:
        candidates = generate_candidates(graph, landmark)
    else:
        candidates = list(range(1, full_mask(graph.num_labels) + 1))
    if not candidates:
        return result

    apply_obs2 = bool((np.asarray(weights) >= 1.0).all())
    distances: dict[int, np.ndarray] = {}
    collected: dict[int, list[tuple[float, int]]] = {}
    for mask in candidates:
        dist_c = constrained_dijkstra(graph, landmark, mask, weights=weights)
        distances[mask] = dist_c
        result.num_sssp += 1

        finite = np.isfinite(dist_c)
        finite[landmark] = False
        if apply_obs2:
            finite &= dist_c >= popcount(mask)
        if not finite.any():
            continue

        subset_arrays = [
            distances[sub]
            for sub in iter_one_removed(mask)
            if sub != 0 and sub in distances
        ]
        result.num_full_tests += int(finite.sum())
        if subset_arrays:
            best = subset_arrays[0]
            for arr in subset_arrays[1:]:
                best = np.minimum(best, arr)
            minimal = finite & (dist_c < best)
        else:
            minimal = finite
        for u in np.nonzero(minimal)[0]:
            collected.setdefault(int(u), []).append((float(dist_c[u]), mask))
    for pairs in collected.values():
        pairs.sort()
    result.entries = collected
    return result


class WeightedPowCovIndex(PowCovIndex):
    """PowCov over a weighted edge-labeled graph.

    Identical query processing to :class:`PowCovIndex` (the flat layout
    works unchanged with float distances); only the build step differs.
    """

    name = "powcov-weighted"

    def __init__(
        self,
        graph: EdgeLabeledGraph,
        landmarks: Sequence[int],
        weights: np.ndarray,
        estimator: str = "upper",
    ):
        if graph.directed:
            # The reversed-graph pass would need the weights re-permuted to
            # the reversed arc order; not implemented yet.
            raise ValueError("weighted PowCov supports undirected graphs only")
        super().__init__(
            graph, landmarks, builder="traverse", storage="flat",
            estimator=estimator,
        )
        if len(weights) != graph.num_arcs:
            raise ValueError("weights must be parallel to the arc arrays")
        self.weights = np.asarray(weights, dtype=np.float64)

    def _build_task_extra(self) -> dict:
        # The weights array rides along to workers through the pool
        # initializer (once per worker, not per task).
        return {"builder": self.builder, "weights": self.weights}
