"""Powerset Cover index (Section 3 of the paper)."""

from __future__ import annotations

from .index import PowCovIndex, get_default_builder, set_default_builder
from .spminimal import (
    LandmarkSPMinimal,
    brute_force_sp_minimal,
    generate_candidates,
    generate_candidates_apriori,
    traverse_powerset,
)
from .stats import IndexSizeReport, compare_index_sizes
from .waves import traverse_powerset_waves, wave_schedule
from .weighted import WeightedPowCovIndex, weighted_sp_minimal

__all__ = [
    "PowCovIndex",
    "WeightedPowCovIndex",
    "weighted_sp_minimal",
    "LandmarkSPMinimal",
    "brute_force_sp_minimal",
    "generate_candidates",
    "generate_candidates_apriori",
    "get_default_builder",
    "set_default_builder",
    "traverse_powerset",
    "traverse_powerset_waves",
    "wave_schedule",
    "IndexSizeReport",
    "compare_index_sizes",
]
