"""Powerset Cover index (Section 3 of the paper)."""

from __future__ import annotations

from .index import PowCovIndex
from .spminimal import (
    LandmarkSPMinimal,
    brute_force_sp_minimal,
    generate_candidates,
    generate_candidates_apriori,
    traverse_powerset,
)
from .stats import IndexSizeReport, compare_index_sizes
from .weighted import WeightedPowCovIndex, weighted_sp_minimal

__all__ = [
    "PowCovIndex",
    "WeightedPowCovIndex",
    "weighted_sp_minimal",
    "LandmarkSPMinimal",
    "brute_force_sp_minimal",
    "generate_candidates",
    "generate_candidates_apriori",
    "traverse_powerset",
    "IndexSizeReport",
    "compare_index_sizes",
]
