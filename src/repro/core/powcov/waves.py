"""Wave-batched TraversePowerset — Algorithm 2 over cardinality waves.

:func:`repro.core.powcov.spminimal.traverse_powerset` issues one
constrained BFS per candidate label set, serially; the only parallelism in
a PowCov build is across landmarks.  The builder here restructures the
per-landmark sweep itself around the batched multi-source kernel:

* **Wave schedule** — surviving candidates (Observation 1) are processed
  in ascending-cardinality *waves*: wave ``k`` holds every candidate with
  ``|C| = k``.  All masks of a wave are answered by a single
  :func:`repro.perf.batched.batched_constrained_bfs` call (same source
  landmark, per-row masks), amortizing the per-level Python and CSR-gather
  overhead over the whole wave instead of paying it once per mask.
* **Vectorized Theorem 2** — every one-removed subset of a wave-``k`` mask
  has cardinality ``k - 1``, i.e. lives in the *previous* wave.  The
  one-label-removed test therefore runs as one stacked sweep: gather the
  ``k`` subset rows per mask from the previous wave's matrix (a padded
  all-``BIG`` row stands in for Observation-1-pruned subsets), take the
  row-wise minimum, and compare against the wave's own distance matrix.
* **Cardinality ring cache** — only the previous wave's rows are retained
  for those lookups, so build memory is ``O(max_k C(|L|, k) * n)`` instead
  of the all-masks ``O(2^|L| * n)`` dictionary the scalar builder keeps.
* **Wave-wide Observation 4** — the auto-minimality test is re-derived
  directly from the CSR arrays: a candidate vertex ``u`` at BFS level
  ``t`` is auto-minimal iff every C-allowed in-arc ``(v, u)`` with
  ``d_C(x, v) = t - 1`` leaves an SP-minimal predecessor ``v``.  In-arcs
  come from the graph itself (its reverse for directed graphs), so no
  per-mask BFS trees are ever materialized.

The produced :class:`~repro.core.powcov.spminimal.LandmarkSPMinimal`
entries are bit-for-bit identical to both the scalar ``traverse_powerset``
and ``brute_force_sp_minimal`` (property-tested in
``tests/test_powerset_waves.py``); only wall-clock time and memory differ,
which is what ``benchmarks/bench_powerset_build.py`` measures.
"""

from __future__ import annotations

import numpy as np

from ...graph.labeled_graph import EdgeLabeledGraph
from ...graph.labelsets import full_mask, iter_one_removed, popcount
from ...graph.traversal import (
    UNREACHABLE,
    label_filter,
    monochromatic_sp_labels,
)
from ...kernels import KernelBackend, resolve_kernel
from ...obs.metrics import metrics_enabled
from ...obs.metrics import registry as _metrics_registry
from ...obs.trace import span, tracing_enabled
from ...perf.batched import batched_constrained_bfs
from .spminimal import BIG, LandmarkSPMinimal, generate_candidates

__all__ = ["wave_schedule", "traverse_powerset_waves"]


def wave_schedule(candidates: list[int]) -> list[list[int]]:
    """Group candidate masks into ascending-cardinality waves.

    Wave ``i`` of the result holds the candidates with the ``i``-th
    smallest cardinality, sorted ascending by mask value.  Every
    one-removed subset of a wave's mask lies in the preceding wave (or was
    Observation-1-pruned), which is the invariant the ring cache relies
    on.
    """
    by_size: dict[int, list[int]] = {}
    for mask in candidates:
        by_size.setdefault(popcount(mask), []).append(mask)
    return [sorted(by_size[size]) for size in sorted(by_size)]


def _obs4_row(
    in_graph: EdgeLabeledGraph,
    allowed: np.ndarray,
    dist_row: np.ndarray,
    candidate_row: np.ndarray,
    passes_theorem2: np.ndarray,
    flagged: np.ndarray,
    result: LandmarkSPMinimal,
) -> np.ndarray:
    """Observation 4 level sweep for one mask, straight from CSR arrays.

    ``in_graph`` supplies in-arcs (the graph itself when undirected, its
    reverse otherwise); ``passes_theorem2`` is the precomputed vectorized
    Theorem 2 verdict used for the vertices that are not auto-minimal.
    ``flagged`` is a caller-owned scratch buffer, reset before returning.
    Returns the per-vertex SP-minimality verdict for this mask.
    """
    n = len(dist_row)
    is_min = np.zeros(n, dtype=bool)
    cand_idx = np.nonzero(candidate_row)[0]
    if cand_idx.size == 0:
        return is_min
    order = np.argsort(dist_row[cand_idx], kind="stable")
    cand_idx = cand_idx[order]
    cand_dist = dist_row[cand_idx]
    indptr, neighbors, edge_labels = (
        in_graph.indptr,
        in_graph.neighbors,
        in_graph.edge_labels,
    )
    for t in np.unique(cand_dist):
        t = int(t)
        lo = int(np.searchsorted(cand_dist, t, side="left"))
        hi = int(np.searchsorted(cand_dist, t, side="right"))
        level_vertices = cand_idx[lo:hi]
        # Gather every in-arc of the level's vertices in one CSR sweep and
        # keep the shortest-path DAG arcs: allowed label, predecessor one
        # level closer to the landmark.
        starts = indptr[level_vertices]
        counts = indptr[level_vertices + 1] - starts
        total = int(counts.sum())
        if total:
            ends = np.cumsum(counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                ends - counts, counts
            )
            arc_idx = np.repeat(starts, counts) + offsets
            owners = np.repeat(level_vertices, counts)
            preds = neighbors[arc_idx].astype(np.int64)
            on_dag = allowed[edge_labels[arc_idx]] & (dist_row[preds] == t - 1)
            bad = owners[on_dag & ~is_min[preds]]
        else:  # pragma: no cover - candidates are reachable, so have in-arcs
            bad = np.empty(0, dtype=np.int64)
        flagged[bad] = True
        auto = level_vertices[~flagged[level_vertices]]
        needs_test = level_vertices[flagged[level_vertices]]
        flagged[bad] = False  # reset the shared buffer
        is_min[auto] = True
        result.num_auto_minimal += len(auto)
        result.num_full_tests += len(needs_test)
        is_min[needs_test[passes_theorem2[needs_test]]] = True
    return is_min


def traverse_powerset_waves(
    graph: EdgeLabeledGraph,
    landmark: int,
    use_obs1: bool = True,
    use_obs2: bool = True,
    use_obs3: bool = True,
    use_obs4: bool = True,
    batch_rows: int = 1024,
    kernel: "str | KernelBackend | None" = None,
) -> LandmarkSPMinimal:
    """Algorithm 2 restructured into batched cardinality waves.

    Produces exactly the same entries as ``traverse_powerset`` and
    ``brute_force_sp_minimal``; the four Observation flags drive the
    pruning-ablation benchmark, mirroring the scalar builder.
    ``batch_rows`` caps the rows per batched-BFS call so very wide waves
    (large ``C(|L|, k)``) are chunked without changing the result.
    ``kernel`` selects the :mod:`repro.kernels` backend that runs the
    MS-BFS sweeps and the Theorem 2 one-removed pass (``None`` = process
    default); every backend is bit-identical, so this only moves
    wall-clock time.
    """
    if batch_rows < 1:
        raise ValueError("batch_rows must be >= 1")
    backend = resolve_kernel(kernel)
    result = LandmarkSPMinimal(landmark=landmark)
    universe = full_mask(graph.num_labels)
    if use_obs1:
        candidates = generate_candidates(graph, landmark)
    else:
        candidates = list(range(1, universe + 1))
    if not candidates:
        return result

    mono: np.ndarray | None = None
    if use_obs3:
        mono = monochromatic_sp_labels(graph, landmark)
    in_graph = graph.reversed() if (use_obs4 and graph.directed) else graph

    n = graph.num_vertices
    collected: dict[int, list[tuple[int, int]]] = {}
    flagged = np.zeros(n, dtype=bool)  # Obs-4 scratch, reused across masks
    # Ring cache: only the previous wave's distance rows stay alive, with a
    # trailing all-BIG pad row standing in for Obs-1-pruned subsets.
    pad_row = np.full((1, n), BIG, dtype=np.int32)
    prev_rows: np.ndarray = pad_row
    prev_index: dict[int, int] = {}

    # Per-wave frontier/pruning accounting is paid only when tracing or the
    # optional metrics are on — the default build skips the extra reduces.
    # Metric increments accumulate in locals and flush to the registry once
    # after the loop, keeping the per-wave enabled cost to the span itself.
    observing = metrics_enabled() or tracing_enabled()
    metering = metrics_enabled()
    total_waves = total_rows = total_visited = total_pruned = total_emitted = 0
    width_counts: dict[int, int] = {}

    for wave in wave_schedule(candidates):
        size = popcount(wave[0])
        with span("powcov.wave", size=size, kernel=backend.name) as wave_span:
            dist = np.empty((len(wave), n), dtype=np.int32)
            for lo in range(0, len(wave), batch_rows):
                chunk = wave[lo : lo + batch_rows]
                raw = batched_constrained_bfs(
                    graph, [landmark] * len(chunk), masks=chunk, kernel=backend
                )
                dist[lo : lo + len(chunk)] = np.where(raw == UNREACHABLE, BIG, raw)
            result.num_sssp += len(wave)

            candidate = dist < BIG
            candidate[:, landmark] = False
            visited = int(np.count_nonzero(candidate)) if observing else 0
            if use_obs2:
                candidate &= dist >= size
            if use_obs3 and size >= 2 and mono is not None:
                # A monochromatic SP label inside C makes C ⊋ {l_u} non-minimal.
                mask_arr = np.asarray(wave, dtype=np.int64)
                candidate &= (mono[None, :] & mask_arr[:, None]) == 0
            pruned = visited - int(np.count_nonzero(candidate)) if observing else 0

            # Theorem 2, one stacked sweep: gather each mask's one-removed
            # subset rows from the previous wave and minimum-reduce them.
            if size >= 2:
                pad = prev_rows.shape[0] - 1
                sub_rows = np.full((len(wave), size), pad, dtype=np.int64)
                for i, mask in enumerate(wave):
                    for j, sub in enumerate(iter_one_removed(mask)):
                        row = prev_index.get(sub)
                        if row is not None:
                            sub_rows[i, j] = row
                passes_theorem2 = backend.one_removed_pass(
                    dist, prev_rows, sub_rows
                )
            else:
                # singletons have no nonzero subsets: every candidate passes
                passes_theorem2 = candidate

            emitted = 0
            if not use_obs4:
                result.num_full_tests += int(candidate.sum())
                minimal = candidate & passes_theorem2
                for i, mask in enumerate(wave):
                    dist_row = dist[i]
                    minima = np.nonzero(minimal[i])[0].tolist()
                    emitted += len(minima)
                    for u in minima:
                        collected.setdefault(u, []).append((int(dist_row[u]), mask))
            else:
                for i, mask in enumerate(wave):
                    is_min = _obs4_row(
                        in_graph,
                        label_filter(graph, mask),
                        dist[i],
                        candidate[i],
                        passes_theorem2[i],
                        flagged,
                        result,
                    )
                    dist_row = dist[i]
                    minima = np.nonzero(is_min)[0].tolist()
                    emitted += len(minima)
                    for u in minima:
                        collected.setdefault(u, []).append((int(dist_row[u]), mask))

            wave_span.count("masks", len(wave))
            wave_span.count("emitted", emitted)
            if observing:
                wave_span.count("visited", visited)
                wave_span.count("pruned", pruned)
            if metering:
                total_waves += 1
                total_rows += len(wave)
                total_visited += visited
                total_pruned += pruned
                total_emitted += emitted
                width_counts[len(wave)] = width_counts.get(len(wave), 0) + 1

            # Rotate the ring cache: this wave's rows (plus the BIG pad) are
            # all the next wave's one-removed lookups can ever touch.
            prev_rows = np.concatenate([dist, pad_row], axis=0)
            prev_index = {mask: i for i, mask in enumerate(wave)}

    if metering and total_waves:
        reg = _metrics_registry()
        reg.counter("powcov.waves").inc(total_waves)
        reg.counter("powcov.bfs_rows").inc(total_rows)
        reg.counter("powcov.visited_vertices").inc(total_visited)
        reg.counter("powcov.pruned_candidates").inc(total_pruned)
        reg.counter("powcov.entries_emitted").inc(total_emitted)
        hist = reg.histogram("powcov.wave_width", lo=1.0, hi=1e6, per_decade=5)
        for width, count in sorted(width_counts.items()):
            hist.observe(float(width), count=count)

    for pairs in collected.values():
        pairs.sort()
    result.entries = collected
    return result
