"""The Powerset Cover (PowCov) index — Section 3 of the paper.

For every landmark-vertex pair ``(x, u)`` the index stores the set
``SP_xu`` of SP-minimal label sets with their constrained distances.  By
Theorem 1, the exact constrained distance ``d_C(x, u)`` for *any* ``C`` is
the minimum stored distance over entries whose label set is a subset of
``C`` (or ``∞`` when none is).  A query ``⟨s, t, C⟩`` is then answered with
the classic landmark triangle inequality over those exact reconstructed
distances.

Three physical layouts are provided (Section 3.1 suggests grouping equal
-distance label sets into a prefix tree):

* ``storage="flat"`` (default) — per pair, a distance-sorted list of
  ``(d, mask)`` tuples; the subset probe is a linear scan with
  ``mask & C == mask`` that exits at the first (= minimum-distance) hit.
  The early exit makes this the fastest layout at realistic entry counts
  (see the storage ablation benchmark).
* ``storage="packed"`` — all entries of all landmarks in three parallel
  numpy arrays sorted by ``(vertex, distance)`` with a CSR offset per
  vertex; a query resolves *every* landmark's constrained distance to an
  endpoint in a handful of vectorized operations.  Wins only when ``k``
  times the per-pair entry count is large.
* ``storage="trie"`` — per pair, distance-ascending groups each holding a
  :class:`~repro.core.trie.LabelSetTrie`; the probe asks each group
  ``contains_subset_of(C)``.

All layouts answer identically; the storage ablation benchmark measures
their space/time trade-offs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...graph.labeled_graph import EdgeLabeledGraph
from ...kernels import kernel_name
from ...obs.trace import span
from ...perf.parallel import ParallelConfig, resolve_parallel, run_tasks
from ..trie import LabelSetTrie
from ..types import INF, DistanceOracle, QueryAnswer
from .spminimal import LandmarkSPMinimal, brute_force_sp_minimal, traverse_powerset
from .waves import traverse_powerset_waves

__all__ = [
    "PowCovIndex",
    "set_default_builder",
    "get_default_builder",
]

_STORAGES = ("packed", "flat", "trie")
_BUILDERS = ("traverse", "traverse-paper", "brute", "wave", "wave-paper")
_ESTIMATORS = ("upper", "median")

#: Process-wide default build kernel; the CLI's ``--build-kernel`` flag
#: routes through :func:`set_default_builder` so every PowCov index built
#: during an experiment run picks the same kernel without threading a
#: parameter through every table function.
_default_builder = "traverse"


def set_default_builder(builder: str | None) -> None:
    """Set the builder used when ``PowCovIndex(builder=None)``.

    ``None`` restores the scalar default (``"traverse"``).  All builders
    produce bit-for-bit identical indexes, so this only changes build
    wall-clock time and memory, never output.
    """
    global _default_builder
    if builder is None:
        _default_builder = "traverse"
        return
    if builder not in _BUILDERS:
        raise ValueError(f"builder must be one of {_BUILDERS}, got {builder!r}")
    _default_builder = builder


def get_default_builder() -> str:
    """The current process-wide default build kernel."""
    return _default_builder


class PowCovIndex(DistanceOracle):
    """Powerset Cover landmark index.

    Parameters
    ----------
    landmarks:
        Landmark vertex ids (see :mod:`repro.landmarks` for selection
        strategies; Section 3.3 recommends GreedyMVC).
    builder:
        ``"traverse"`` — Algorithm 2 with Observations 1-3 (scalar, one
        BFS per mask);
        ``"traverse-paper"`` — Algorithm 2 with all four pruning rules, as
        printed in the paper;
        ``"wave"`` — the wave-batched kernel (Observations 1-3, one
        batched multi-source BFS per cardinality wave, ring-cached
        Theorem 2 — see :mod:`repro.core.powcov.waves`);
        ``"wave-paper"`` — the wave kernel with the CSR-direct
        Observation 4 sweep on top;
        ``"brute"`` — Algorithm 1.
        ``None`` picks up the process-wide default (the CLI's
        ``--build-kernel`` flag; ``"traverse"`` unless overridden).
        All builders produce identical indexes.
    storage:
        ``"flat"`` or ``"trie"`` (see module docstring).
    estimator:
        ``"upper"`` — the paper's estimate, ``min_x d_C(x,s) + d_C(x,t)``;
        ``"median"`` — the median of the per-landmark upper bounds
        (Potamias et al.), kept for the estimator ablation.

    Notes
    -----
    **Directed graphs support** ``storage="flat"`` **only.**  A directed
    index keeps two tables per landmark (forward and reversed-graph
    entries) and the query path resolves the reverse leg through the flat
    per-vertex lists; the ``"packed"`` and ``"trie"`` layouts only
    materialize the forward table, so requesting them for a directed graph
    raises ``ValueError`` at construction time.
    """

    name = "powcov"

    def __init__(
        self,
        graph: EdgeLabeledGraph,
        landmarks: Sequence[int],
        builder: str | None = None,
        storage: str = "flat",
        estimator: str = "upper",
    ):
        super().__init__(graph)
        if builder is None:
            builder = get_default_builder()
        if builder not in _BUILDERS:
            raise ValueError(f"builder must be one of {_BUILDERS}, got {builder!r}")
        if storage not in _STORAGES:
            raise ValueError(f"storage must be one of {_STORAGES}, got {storage!r}")
        if estimator not in _ESTIMATORS:
            raise ValueError(f"estimator must be one of {_ESTIMATORS}, got {estimator!r}")
        self.landmarks = list(landmarks)
        if len(set(self.landmarks)) != len(self.landmarks):
            raise ValueError("landmarks must be distinct")
        for x in self.landmarks:
            if not 0 <= x < graph.num_vertices:
                raise ValueError(f"landmark {x} out of range")
        self.builder = builder
        self.storage = storage
        self.estimator = estimator
        #: per-landmark build output (kept for stats/inspection).
        self.per_landmark: list[LandmarkSPMinimal] = []
        # flat: list over landmarks of {u: [(d, mask), ...]}
        self._flat: list[dict[int, list[tuple[int, int]]]] = []
        # trie: list over landmarks of {u: [(d, LabelSetTrie), ...]}
        self._tries: list[dict[int, list[tuple[int, LabelSetTrie]]]] = []
        # packed: parallel arrays sorted by (vertex, distance) + offsets.
        self._packed_offsets: np.ndarray | None = None
        self._packed_dist: np.ndarray | None = None
        self._packed_mask: np.ndarray | None = None
        self._packed_landmark: np.ndarray | None = None
        #: landmark index of each landmark vertex (for distance-0 fixups).
        self._landmark_index_of = {x: i for i, x in enumerate(self.landmarks)}
        # Directed graphs additionally store vertex->landmark distances
        # (computed on the reversed graph) — the Section 2 remark.
        if graph.directed and storage != "flat":
            raise ValueError("directed PowCov supports storage='flat' only")
        self.per_landmark_reverse: list[LandmarkSPMinimal] = []
        self._flat_reverse: list[dict[int, list[tuple[int, int]]]] = []
        self._built = False

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build_task_extra(self) -> dict:
        """Picklable build parameters shipped to workers (subclass hook).

        The kernel is resolved to its *concrete* backend name here, in the
        parent: worker processes do not inherit ``set_default_kernel``
        state, and shipping the resolved name keeps every worker (and the
        serial path) on the same backend deterministically.
        """
        return {"builder": self.builder, "kernel": kernel_name()}

    def _build_one(self, landmark: int, graph=None) -> LandmarkSPMinimal:
        graph = self.graph if graph is None else graph
        return _build_landmark(graph, landmark, self._build_task_extra())

    def build(self, parallel: "ParallelConfig | int | None" = None) -> "PowCovIndex":
        """Compute SP-minimal sets for every landmark and lay out storage.

        Parameters
        ----------
        parallel:
            ``None`` (default) uses the process-wide default set via
            :func:`repro.perf.parallel.set_default_parallel` (serial unless
            an experiment driver opted in); an ``int`` is shorthand for
            ``ParallelConfig(num_workers=n)``.  Per-landmark sweeps are
            independent and results are reassembled in landmark order, so
            the built index is bit-for-bit identical for every
            configuration.
        """
        config = resolve_parallel(parallel)
        with span(
            "powcov.build",
            builder=self.builder,
            storage=self.storage,
            backend=config.backend,
            kernel=kernel_name(),
        ) as build_span:
            build_span.count("landmarks", len(self.landmarks))
            items: list[tuple[int, int]] = [(x, 0) for x in self.landmarks]
            graphs: list[EdgeLabeledGraph] = [self.graph]
            if self.graph.directed:
                graphs.append(self.graph.reversed())
                items.extend((x, 1) for x in self.landmarks)
            results = run_tasks(
                _landmark_chunk_task,
                items,
                graphs=tuple(graphs),
                extra=self._build_task_extra(),
                config=config,
            )
            k = len(self.landmarks)
            self.per_landmark = results[:k]
            self._flat = [result.entries for result in self.per_landmark]
            if self.graph.directed:
                self.per_landmark_reverse = results[k:]
                self._flat_reverse = [r.entries for r in self.per_landmark_reverse]
            if self.storage == "packed":
                self._build_packed()
            if self.storage == "trie":
                self._tries = []
                for entries in self._flat:
                    per_vertex: dict[int, list[tuple[int, LabelSetTrie]]] = {}
                    for u, pairs in entries.items():
                        groups: list[tuple[int, LabelSetTrie]] = []
                        for dist, mask in pairs:  # pairs are distance-sorted
                            if not groups or groups[-1][0] != dist:
                                groups.append((dist, LabelSetTrie()))
                            groups[-1][1].insert(mask)
                        per_vertex[u] = groups
                    self._tries.append(per_vertex)
            self._built = True
            build_span.count("entries", self.index_size_entries())
            build_span.count("sssp", sum(r.num_sssp for r in results))
        return self

    def _build_packed(self) -> None:
        """Concatenate every pair's entries into (vertex, distance)-sorted arrays."""
        total = sum(result.total_entries for result in self.per_landmark)
        vertex = np.empty(total, dtype=np.int64)
        dist = np.empty(total, dtype=np.int32)
        mask = np.empty(total, dtype=np.int64)
        landmark = np.empty(total, dtype=np.int32)
        pos = 0
        for i, entries in enumerate(self._flat):
            for u, pairs in entries.items():
                for d, m in pairs:
                    vertex[pos] = u
                    dist[pos] = d
                    mask[pos] = m
                    landmark[pos] = i
                    pos += 1
        order = np.lexsort((dist, vertex))
        vertex = vertex[order]
        self._packed_dist = dist[order]
        self._packed_mask = mask[order]
        self._packed_landmark = landmark[order]
        offsets = np.zeros(self.graph.num_vertices + 1, dtype=np.int64)
        np.add.at(offsets, vertex + 1, 1)
        np.cumsum(offsets, out=offsets)
        self._packed_offsets = offsets

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() before querying the index")

    # ------------------------------------------------------------------
    # Landmark-distance reconstruction (Theorem 1)
    # ------------------------------------------------------------------
    def _packed_lookup(self, vertex: int, label_mask: int) -> np.ndarray:
        """``d_C(x, vertex)`` for every landmark at once (float64, inf=none).

        One slice of the packed arrays + a subset filter; entries within a
        vertex are distance-sorted, so the first match per landmark (found
        by ``np.unique``'s first-occurrence semantics) is the minimum.
        """
        out = np.full(len(self.landmarks), INF, dtype=np.float64)
        lo = self._packed_offsets[vertex]
        hi = self._packed_offsets[vertex + 1]
        if hi > lo:
            masks = self._packed_mask[lo:hi]
            ok = (masks & label_mask) == masks
            if ok.any():
                landmarks = self._packed_landmark[lo:hi][ok]
                dists = self._packed_dist[lo:hi][ok]
                first_landmarks, first_pos = np.unique(landmarks, return_index=True)
                out[first_landmarks] = dists[first_pos]
        own = self._landmark_index_of.get(vertex)
        if own is not None:
            out[own] = 0.0
        return out

    def landmark_distance(
        self,
        landmark_index: int,
        vertex: int,
        label_mask: int,
        direction: str = "from-landmark",
    ) -> float:
        """Exact constrained landmark distance (Theorem 1 reconstruction).

        ``direction`` matters for directed graphs only: ``"from-landmark"``
        is ``d_C(x → u)``, ``"to-landmark"`` is ``d_C(u → x)`` (served from
        the reversed-graph tables).  Undirected graphs ignore it.
        """
        self._require_built()
        if vertex == self.landmarks[landmark_index]:
            return 0.0
        if direction == "to-landmark" and self.graph.directed:
            pairs = self._flat_reverse[landmark_index].get(vertex)
            return self._first_subset_distance(pairs, label_mask)
        if self.storage == "packed":
            return float(self._packed_lookup(vertex, label_mask)[landmark_index])
        if self.storage == "trie":
            groups = self._tries[landmark_index].get(vertex)
            if groups is None:
                return INF
            for dist, trie in groups:
                if trie.contains_subset_of(label_mask):
                    return float(dist)
            return INF
        return self._first_subset_distance(
            self._flat[landmark_index].get(vertex), label_mask
        )

    @staticmethod
    def _first_subset_distance(
        pairs: list[tuple[int, int]] | None, label_mask: int
    ) -> float:
        if pairs is None:
            return INF
        for dist, mask in pairs:
            if mask & label_mask == mask:
                return float(dist)
        return INF

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, label_mask: int) -> float:
        return self.query_answer(source, target, label_mask).estimate

    def query_answer(self, source: int, target: int, label_mask: int) -> QueryAnswer:
        """Triangle-inequality estimate over all landmarks.

        Upper bound: ``min_x d_C(s,x) + d_C(x,t)`` (both legs collapse to
        the same table on undirected graphs).  Lower bound (undirected):
        ``max_x |d_C(x,s) - d_C(x,t)|`` over landmarks seeing both
        endpoints; for directed graphs the one-sided variants
        ``d_C(x,t) - d_C(x,s)`` and ``d_C(s,x) - d_C(t,x)`` are used.
        The headline estimate follows ``self.estimator``.
        """
        self._require_built()
        if source == target:
            return QueryAnswer(estimate=0.0, lower=0.0, upper=0.0)
        if label_mask == 0:
            return QueryAnswer(estimate=INF, lower=INF, upper=INF)
        if self.graph.directed:
            return self._directed_query_answer(source, target, label_mask)
        if self.storage == "packed":
            return self._packed_query_answer(source, target, label_mask)
        upper = INF
        lower = 0.0
        sums: list[float] = []
        for i in range(len(self.landmarks)):
            ds = self.landmark_distance(i, source, label_mask)
            if ds == INF:
                continue
            dt = self.landmark_distance(i, target, label_mask)
            if dt == INF:
                continue
            total = ds + dt
            sums.append(total)
            if total < upper:
                upper = total
            gap = abs(ds - dt)
            if gap > lower:
                lower = gap
        if not sums:
            return QueryAnswer(estimate=INF, lower=0.0, upper=INF)
        if self.estimator == "median":
            sums.sort()
            estimate = sums[len(sums) // 2]
        else:
            estimate = upper
        return QueryAnswer(estimate=estimate, lower=lower, upper=upper)

    def _directed_query_answer(
        self, source: int, target: int, label_mask: int
    ) -> QueryAnswer:
        """Directed triangle bounds: source→landmark then landmark→target."""
        upper = INF
        lower = 0.0
        sums: list[float] = []
        for i in range(len(self.landmarks)):
            source_to_x = self.landmark_distance(
                i, source, label_mask, direction="to-landmark"
            )
            x_to_target = self.landmark_distance(
                i, target, label_mask, direction="from-landmark"
            )
            if source_to_x != INF and x_to_target != INF:
                total = source_to_x + x_to_target
                sums.append(total)
                upper = min(upper, total)
            # One-sided lower bounds: d(s,t) >= d(x,t) - d(x,s) and
            # d(s,t) >= d(s,x) - d(t,x).
            x_to_source = self.landmark_distance(
                i, source, label_mask, direction="from-landmark"
            )
            if x_to_source != INF and x_to_target != INF:
                lower = max(lower, x_to_target - x_to_source)
            target_to_x = self.landmark_distance(
                i, target, label_mask, direction="to-landmark"
            )
            if source_to_x != INF and target_to_x != INF:
                lower = max(lower, source_to_x - target_to_x)
        if not sums:
            return QueryAnswer(estimate=INF, lower=max(lower, 0.0), upper=INF)
        if self.estimator == "median":
            sums.sort()
            estimate = sums[len(sums) // 2]
        else:
            estimate = upper
        return QueryAnswer(estimate=estimate, lower=max(lower, 0.0), upper=upper)

    def _packed_query_answer(
        self, source: int, target: int, label_mask: int
    ) -> QueryAnswer:
        """Vectorized triangle bounds over all landmarks (packed layout)."""
        to_source = self._packed_lookup(source, label_mask)
        to_target = self._packed_lookup(target, label_mask)
        sums = to_source + to_target
        finite = np.isfinite(sums)
        if not finite.any():
            return QueryAnswer(estimate=INF, lower=0.0, upper=INF)
        finite_sums = sums[finite]
        upper = float(finite_sums.min())
        lower = float(np.abs(to_source[finite] - to_target[finite]).max())
        if self.estimator == "median":
            finite_sums.sort()
            estimate = float(finite_sums[len(finite_sums) // 2])
        else:
            estimate = upper
        return QueryAnswer(estimate=estimate, lower=lower, upper=upper)

    # ------------------------------------------------------------------
    # Size accounting (Table 2)
    # ------------------------------------------------------------------
    def index_size_entries(self) -> int:
        """Total stored ``(label set, distance)`` entries across all pairs."""
        self._require_built()
        total = sum(result.total_entries for result in self.per_landmark)
        total += sum(result.total_entries for result in self.per_landmark_reverse)
        return total

    def reachable_pairs(self) -> int:
        """Landmark-vertex pairs with at least one stored entry."""
        self._require_built()
        pairs = sum(len(result.entries) for result in self.per_landmark)
        pairs += sum(len(result.entries) for result in self.per_landmark_reverse)
        return pairs

    def average_entries_per_pair(self) -> float:
        """Table 2's measure: avg stored distances per reachable pair."""
        pairs = self.reachable_pairs()
        return self.index_size_entries() / pairs if pairs else 0.0

    def max_entries_per_pair(self) -> int:
        """The paper's ``H`` (bounded by Proposition 1)."""
        self._require_built()
        return max(
            (result.max_entries_per_vertex() for result in self.per_landmark),
            default=0,
        )

    def describe(self) -> str:
        return (
            f"{self.name}(k={len(self.landmarks)}, builder={self.builder}, "
            f"storage={self.storage}) on {self.graph!r}"
        )


# ----------------------------------------------------------------------
# Build task functions.  Module-level so the process backend can ship them
# to workers by reference; serial and parallel builds share this single
# code path, which is what makes their outputs bit-for-bit identical.
# ----------------------------------------------------------------------
def _build_landmark(
    graph: EdgeLabeledGraph, landmark: int, extra: dict
) -> LandmarkSPMinimal:
    """One landmark's SP-minimal enumeration, parameterized by ``extra``."""
    with span("powcov.landmark", landmark=landmark) as landmark_span:
        result = _build_landmark_inner(graph, landmark, extra)
        landmark_span.count("entries", result.total_entries)
        landmark_span.count("sssp", result.num_sssp)
        landmark_span.count("full_tests", result.num_full_tests)
        landmark_span.count("auto_minimal", result.num_auto_minimal)
    return result


def _build_landmark_inner(
    graph: EdgeLabeledGraph, landmark: int, extra: dict
) -> LandmarkSPMinimal:
    weights = extra.get("weights")
    if weights is not None:
        from .weighted import weighted_sp_minimal  # local: avoids cycle

        return weighted_sp_minimal(graph, landmark, weights)
    builder = extra["builder"]
    kernel = extra.get("kernel")
    if builder == "brute":
        return brute_force_sp_minimal(graph, landmark)
    if builder == "traverse-paper":
        return traverse_powerset(graph, landmark)
    if builder == "wave":
        return traverse_powerset_waves(
            graph, landmark, use_obs4=False, kernel=kernel
        )
    if builder == "wave-paper":
        return traverse_powerset_waves(graph, landmark, kernel=kernel)
    return traverse_powerset(graph, landmark, use_obs4=False)


def _landmark_chunk_task(
    graphs: tuple[EdgeLabeledGraph, ...], items, extra: dict
) -> list[LandmarkSPMinimal]:
    """Chunk task: each item is ``(landmark, graph_index)``.

    ``graph_index`` selects the forward (0) or reversed (1) graph — the
    directed build fans both table families out over the same pool.
    """
    return [
        _build_landmark(graphs[graph_index], landmark, extra)
        for landmark, graph_index in items
    ]
