"""Exact LC-PPSPD computation (the evaluation's ground truth).

``ExactOracle`` answers every query exactly with a label-constrained
bidirectional BFS — precisely the strongest exact baseline the paper
measures speed-ups against (Section 5.2, footnote 3: on unweighted graphs
bidirectional Dijkstra degenerates to bidirectional BFS).

``ExactDijkstraOracle`` is the single-direction reference used in tests to
cross-check the bidirectional implementation, and the weighted-graph
extension mentioned in Section 2.
"""

from __future__ import annotations

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.traversal import (
    bidirectional_constrained_bfs,
    constrained_bfs,
    constrained_dijkstra,
)
from .types import INF, DistanceOracle

__all__ = ["ExactOracle", "ExactDijkstraOracle"]


class ExactOracle(DistanceOracle):
    """Exact answers via label-constrained bidirectional BFS (no index)."""

    name = "exact-bidirectional-bfs"

    def query(self, source: int, target: int, label_mask: int) -> float:
        return bidirectional_constrained_bfs(self.graph, source, target, label_mask)

    def sssp(self, source: int, label_mask: int) -> np.ndarray:
        """Full constrained SSSP from ``source`` (``-1`` = unreachable)."""
        return constrained_bfs(self.graph, source, label_mask)


class ExactDijkstraOracle(DistanceOracle):
    """Exact answers via unidirectional constrained Dijkstra.

    Slower than :class:`ExactOracle` on unweighted graphs but supports
    arbitrary non-negative arc ``weights`` (parallel to the graph's arc
    arrays), covering the paper's "easily extended to weighted graphs"
    remark.
    """

    name = "exact-dijkstra"

    def __init__(self, graph: EdgeLabeledGraph, weights: np.ndarray | None = None):
        super().__init__(graph)
        self.weights = weights

    def query(self, source: int, target: int, label_mask: int) -> float:
        distance = constrained_dijkstra(
            self.graph, source, label_mask, weights=self.weights, target=target
        )
        return float(distance) if distance != INF else INF
