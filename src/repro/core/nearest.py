"""Top-k nearest neighbors under a label constraint.

The knowledge-exploration application of the paper ranks candidate
entities by constrained distance from a query entity; this module packages
that pattern:

* :func:`constrained_nearest` — exact top-k over the whole graph via a
  truncated constrained BFS (stops as soon as k vertices are settled);
* :func:`rank_candidates` — rank an explicit candidate set through any
  :class:`DistanceOracle` (use an index for speed, the exact oracle for
  ground truth).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import full_mask
from ..graph.traversal import UNREACHABLE, label_filter, _frontier_arcs
from .types import DistanceOracle

__all__ = ["constrained_nearest", "rank_candidates"]


def constrained_nearest(
    graph: EdgeLabeledGraph,
    source: int,
    label_mask: int | None = None,
    k: int = 10,
    include_source: bool = False,
) -> list[tuple[int, int]]:
    """The ``k`` vertices closest to ``source`` within the constraint.

    Runs a constrained BFS that stops once at least ``k`` vertices are
    settled; ties at the cut-off distance are all returned (so the result
    may exceed ``k``), sorted by ``(distance, vertex id)``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if label_mask is None:
        label_mask = full_mask(graph.num_labels)
    allowed = label_filter(graph, label_mask)
    dist = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    results: list[tuple[int, int]] = [(0, source)] if include_source else []
    level = 0
    needed = k
    while len(frontier) and len(results) < needed:
        level += 1
        arc_idx = _frontier_arcs(graph, frontier)
        if len(arc_idx) == 0:
            break
        arc_idx = arc_idx[allowed[graph.edge_labels[arc_idx]]]
        targets = graph.neighbors[arc_idx]
        targets = targets[dist[targets] == UNREACHABLE]
        if len(targets) == 0:
            break
        frontier = np.unique(targets).astype(np.int64)
        dist[frontier] = level
        results.extend((level, int(v)) for v in frontier)
    results.sort()
    # Keep all ties at the k-th distance.
    if len(results) > k:
        cutoff = results[k - 1][0]
        results = [r for r in results if r[0] <= cutoff]
    return [(v, d) for d, v in results]


def rank_candidates(
    oracle: DistanceOracle,
    source: int,
    candidates: Iterable[int],
    label_mask: int,
    k: int | None = None,
) -> list[tuple[int, float]]:
    """Rank ``candidates`` by (estimated) constrained distance to ``source``.

    Unreachable candidates are dropped; ties break by candidate id for
    determinism.  ``k`` truncates the ranking when given.
    """
    scored = []
    for candidate in candidates:
        if candidate == source:
            continue
        distance = oracle.query(source, candidate, label_mask)
        if not math.isinf(distance):
            scored.append((distance, candidate))
    scored.sort()
    if k is not None:
        scored = scored[:k]
    return [(candidate, distance) for distance, candidate in scored]
