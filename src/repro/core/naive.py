"""The naive powerset landmark index (the straw-man of the introduction).

For each landmark ``x`` and *every* label set ``C ⊆ L`` the index stores the
full constrained distance vector ``d_C(x, ·)`` — i.e. one distance per
``(landmark, vertex, label set)`` triple, exponential in ``|L|``.  Queries
are answered in ``O(k)`` by direct lookup, exactly like the classic landmark
method on the graph instance for ``C``.

The index exists to quantify what PowCov saves (Table 2) and as a strong
correctness reference: its stored distances are exact, so its query answers
equal PowCov's on every query (both apply the same triangle inequality over
exact landmark distances).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import full_mask
from ..graph.traversal import UNREACHABLE, constrained_bfs
from .types import INF, DistanceOracle, QueryAnswer

__all__ = ["NaivePowersetIndex"]


class NaivePowersetIndex(DistanceOracle):
    """Landmark index materializing all ``2^|L| - 1`` label-set instances.

    Parameters
    ----------
    landmarks:
        The landmark vertex ids ``X``.
    """

    name = "naive-powerset"

    def __init__(self, graph: EdgeLabeledGraph, landmarks: Sequence[int]):
        super().__init__(graph)
        if graph.num_labels > 16:
            raise ValueError(
                "naive powerset index is intentionally exponential; refusing "
                f"to build 2^{graph.num_labels} instances (limit: 16 labels)"
            )
        self.landmarks = list(landmarks)
        if len(set(self.landmarks)) != len(self.landmarks):
            raise ValueError("landmarks must be distinct")
        # _distances[i][C] is the d_C(x_i, .) vector, int32 with -1 sentinel.
        self._distances: list[dict[int, np.ndarray]] = []
        self._built = False

    def build(self) -> "NaivePowersetIndex":
        """Run ``(2^|L| - 1) * k`` constrained BFS traversals."""
        num_masks = full_mask(self.graph.num_labels)
        self._distances = []
        for landmark in self.landmarks:
            per_mask: dict[int, np.ndarray] = {}
            for mask in range(1, num_masks + 1):
                per_mask[mask] = constrained_bfs(self.graph, landmark, mask)
            self._distances.append(per_mask)
        self._built = True
        return self

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() before querying the index")

    def query(self, source: int, target: int, label_mask: int) -> float:
        return self.query_answer(source, target, label_mask).estimate

    def query_answer(self, source: int, target: int, label_mask: int) -> QueryAnswer:
        """Triangle-inequality bounds over the stored exact distances."""
        self._require_built()
        if source == target:
            return QueryAnswer(estimate=0.0, lower=0.0, upper=0.0)
        if label_mask == 0:
            return QueryAnswer(estimate=INF, lower=INF, upper=INF)
        upper = INF
        lower = 0.0
        for per_mask in self._distances:
            vector = per_mask[label_mask]
            ds, dt = int(vector[source]), int(vector[target])
            if ds == UNREACHABLE or dt == UNREACHABLE:
                continue
            upper = min(upper, float(ds + dt))
            lower = max(lower, float(abs(ds - dt)))
        return QueryAnswer(estimate=upper, lower=lower, upper=upper)

    # ------------------------------------------------------------------
    # Size accounting (Table 2)
    # ------------------------------------------------------------------
    def index_size_entries(self) -> int:
        """Total finite distances stored (the paper's size measure)."""
        self._require_built()
        total = 0
        for landmark, per_mask in zip(self.landmarks, self._distances):
            for vector in per_mask.values():
                finite = int((vector != UNREACHABLE).sum())
                # The landmark itself (distance 0) is not an index entry.
                if vector[landmark] != UNREACHABLE:
                    finite -= 1
                total += finite
        return total

    def finite_counts_per_vertex(self) -> np.ndarray:
        """Finite stored distances per ``(landmark, vertex)`` pair.

        Returns a ``(k, n)`` array: entry ``[i, u]`` counts label sets ``C``
        with ``d_C(x_i, u) < ∞`` — the naive index's per-pair footprint used
        by Table 2.
        """
        self._require_built()
        counts = np.zeros((len(self.landmarks), self.graph.num_vertices), dtype=np.int64)
        for i, per_mask in enumerate(self._distances):
            for vector in per_mask.values():
                counts[i] += vector != UNREACHABLE
            counts[i, self.landmarks[i]] = 0
        return counts

    def average_entries_per_pair(self) -> float:
        """Average finite distances per reachable landmark-vertex pair."""
        counts = self.finite_counts_per_vertex()
        reachable = counts > 0
        if not reachable.any():
            return 0.0
        return float(counts[reachable].mean())
