"""Shared types for label-constrained distance oracles.

The paper's central object is the *label-constrained point-to-point
shortest-path distance query* (LC-PPSPD): a triple ``⟨s, t, C⟩`` asking for
``d_C(s, t)``, the length of a shortest path from ``s`` to ``t`` that uses
only edges with labels in ``C``.  This module defines the query/answer
dataclasses and the :class:`DistanceOracle` interface every index implements.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..graph.labeled_graph import EdgeLabeledGraph

__all__ = ["INF", "Query", "QueryAnswer", "DistanceOracle"]

#: Infinite distance, the answer to queries over disconnected label subgraphs.
INF = math.inf


@dataclass(frozen=True)
class Query:
    """An LC-PPSPD query ``⟨s, t, C⟩`` with ``C`` as a label bitmask."""

    source: int
    target: int
    label_mask: int

    def __post_init__(self):
        if self.label_mask < 0:
            raise ValueError("label_mask must be non-negative")

    @classmethod
    def of(cls, graph: EdgeLabeledGraph, source: int, target: int, labels: Iterable) -> "Query":
        """Build a query from label names/ids using the graph's universe."""
        return cls(source, target, graph.mask(labels))


@dataclass(frozen=True)
class QueryAnswer:
    """An oracle's answer together with the bounds it was derived from.

    ``estimate`` is the oracle's headline answer (the paper uses the
    triangle-inequality *upper* bound).  ``lower`` is the matching lower
    bound where the oracle can produce one (landmark indexes can);
    oracles that cannot report a bound leave it at 0.
    """

    estimate: float
    lower: float = 0.0
    upper: float = INF

    @property
    def is_unreachable(self) -> bool:
        """True iff the oracle claims no C-constrained path exists."""
        return math.isinf(self.estimate)


class DistanceOracle(ABC):
    """Interface implemented by every index and baseline in this package.

    Implementations are constructed from a graph (plus index-specific
    parameters), may run an expensive :meth:`build` step, and then answer
    queries via :meth:`query`.  ``query_answer`` exposes bound details for
    evaluation code.
    """

    #: Short name used in experiment tables.
    name: str = "oracle"

    def __init__(self, graph: EdgeLabeledGraph):
        self.graph = graph

    @abstractmethod
    def query(self, source: int, target: int, label_mask: int) -> float:
        """Approximate (or exact) ``d_C(source, target)``; ``inf`` if none."""

    def query_answer(self, source: int, target: int, label_mask: int) -> QueryAnswer:
        """Detailed answer; default wraps :meth:`query` with trivial bounds."""
        estimate = self.query(source, target, label_mask)
        return QueryAnswer(estimate=estimate, lower=0.0, upper=estimate)

    def query_labels(self, source: int, target: int, labels: Iterable) -> float:
        """Convenience overload taking label names/ids instead of a mask."""
        return self.query(source, target, self.graph.mask(labels))

    def batch_query(self, queries: Sequence[Query]) -> list[float]:
        """Answer a batch through the vectorized engine path.

        Delegates to :func:`repro.engine.execute_batch`, which plans the
        batch (grouping by label mask) and runs each group through the
        oracle's executor.  Results are bit-identical to
        :meth:`batch_query_scalar`, the per-call reference path.
        """
        from ..engine import execute_batch  # local: core must not cycle on engine

        return execute_batch(self, queries)

    def batch_query_scalar(self, queries: Sequence[Query]) -> list[float]:
        """Reference path: one scalar :meth:`query` per batch entry."""
        return [self.query(q.source, q.target, q.label_mask) for q in queries]

    # ------------------------------------------------------------------
    # Index accounting — used by the Table 2/3 experiments.
    # ------------------------------------------------------------------
    def index_size_entries(self) -> int:
        """Number of stored distance entries (0 for index-free oracles)."""
        return 0

    def describe(self) -> str:
        """One-line human-readable description for experiment logs."""
        return f"{self.name} on {self.graph!r}"
