"""Index persistence: save and load built oracles without rebuilding.

Index construction is the expensive step (minutes for PowCov on the larger
stand-ins); a deployed oracle builds once and serves forever.  This module
round-trips both indexes through numpy ``.npz`` archives — no pickle, so
the files are portable and safe to load.

Formats
-------
PowCov: the per-(landmark, vertex) SP-minimal entries are flattened into
four parallel arrays (``landmark_idx``, ``vertex``, ``distance``, ``mask``)
plus the landmark list and metadata; loading regroups them.  Directed
indexes store the reversed-table arrays alongside.

ChromLand: the ``mono`` / ``bi`` (and directed ``mono_in``) matrices plus
landmark/color arrays are stored verbatim.

The graph itself is *not* embedded — the caller supplies it on load (it
has its own persistence in :mod:`repro.graph.io`) and a fingerprint check
rejects mismatched graphs.

The ``.npz`` archives here are the *eager* format: loading regroups the
arrays into Python dicts before the first query.  The mmap-able store
format (:mod:`repro.store`) skips that cold-start cost entirely;
:func:`save_index` / :func:`load_index` dispatch between the two (the
loader sniffs the file magic, so either format round-trips through the
same call).  Malformed or version-skewed payloads raise
:class:`~repro.store.format.FormatError` from either path.
"""

from __future__ import annotations

import os

import numpy as np

from ..graph.fingerprint import graph_fingerprint
from ..graph.labeled_graph import EdgeLabeledGraph
from ..store.format import FormatError, is_store_file
from .chromland import ChromLandIndex
from .powcov import PowCovIndex
from .powcov.spminimal import LandmarkSPMinimal

__all__ = [
    "NPZ_FORMAT_VERSION",
    "graph_fingerprint",
    "save_powcov",
    "load_powcov",
    "save_chromland",
    "load_chromland",
    "save_index",
    "load_index",
]

#: Version stamped into every ``.npz`` payload; bumped on layout changes so
#: stale files fail with a clear :class:`FormatError`, not a ``KeyError``.
NPZ_FORMAT_VERSION = 1


# ``graph_fingerprint`` moved down into :mod:`repro.graph.fingerprint` so
# the delta layer can mint lineage fingerprints without a layering cycle;
# it is re-imported above and stays part of this module's public API.


def _entries_to_arrays(per_landmark: list[LandmarkSPMinimal]):
    total = sum(r.total_entries for r in per_landmark)
    landmark_idx = np.empty(total, dtype=np.int32)
    vertex = np.empty(total, dtype=np.int64)
    distance = np.empty(total, dtype=np.float64)
    mask = np.empty(total, dtype=np.int64)
    pos = 0
    for i, result in enumerate(per_landmark):
        for u, pairs in result.entries.items():
            for d, m in pairs:
                landmark_idx[pos] = i
                vertex[pos] = u
                distance[pos] = d
                mask[pos] = m
                pos += 1
    return landmark_idx, vertex, distance, mask


def _arrays_to_entries(
    num_landmarks: int,
    landmark_idx: np.ndarray,
    vertex: np.ndarray,
    distance: np.ndarray,
    mask: np.ndarray,
    landmarks: list[int],
) -> list[LandmarkSPMinimal]:
    per_landmark = [
        LandmarkSPMinimal(landmark=landmarks[i]) for i in range(num_landmarks)
    ]
    integral = np.all(distance == np.floor(distance))
    for i, u, d, m in zip(landmark_idx, vertex, distance, mask):
        value = int(d) if integral else float(d)
        per_landmark[int(i)].entries.setdefault(int(u), []).append((value, int(m)))
    for result in per_landmark:
        for pairs in result.entries.values():
            pairs.sort()
    return per_landmark


def _check_npz_version(path: str | os.PathLike, data) -> None:
    """Reject payloads with a missing or unknown format-version field."""
    if "format_version" not in data:
        raise FormatError(
            f"{path} has no format-version field "
            "(pre-versioned payload or not a repro index file)"
        )
    version = int(data["format_version"])
    if version != NPZ_FORMAT_VERSION:
        raise FormatError(
            f"{path}: unsupported npz index format version {version} "
            f"(this build reads version {NPZ_FORMAT_VERSION})"
        )


def _reject_mapped(index: PowCovIndex | ChromLandIndex) -> None:
    if getattr(index, "is_mapped", False):
        raise ValueError(
            "mapped indexes are serving-only; save the originally built index"
        )


def save_powcov(index: PowCovIndex, path: str | os.PathLike) -> None:
    """Serialize a built PowCov index (flat storage layouts only)."""
    _reject_mapped(index)
    if not index._built:  # noqa: SLF001 - serialization is a friend module
        raise ValueError("build the index before saving it")
    forward = _entries_to_arrays(index.per_landmark)
    payload = {
        "kind": np.str_("powcov"),
        "format_version": np.int64(NPZ_FORMAT_VERSION),
        "fingerprint": graph_fingerprint(index.graph),
        "landmarks": np.asarray(index.landmarks, dtype=np.int64),
        "estimator": np.str_(index.estimator),
        "fwd_landmark": forward[0],
        "fwd_vertex": forward[1],
        "fwd_distance": forward[2],
        "fwd_mask": forward[3],
        "directed": np.bool_(index.graph.directed),
    }
    if index.graph.directed:
        reverse = _entries_to_arrays(index.per_landmark_reverse)
        payload.update(
            rev_landmark=reverse[0], rev_vertex=reverse[1],
            rev_distance=reverse[2], rev_mask=reverse[3],
        )
    np.savez_compressed(path, **payload)


def load_powcov(path: str | os.PathLike, graph: EdgeLabeledGraph) -> PowCovIndex:
    """Load a PowCov index saved by :func:`save_powcov` for ``graph``."""
    with np.load(path, allow_pickle=False) as data:
        _check_npz_version(path, data)
        if str(data["kind"]) != "powcov":
            raise FormatError(f"{path} is not a PowCov index file")
        if np.int64(data["fingerprint"]) != graph_fingerprint(graph):
            raise FormatError("index file was built for a different graph")
        landmarks = [int(x) for x in data["landmarks"]]
        index = PowCovIndex(
            graph, landmarks, storage="flat", estimator=str(data["estimator"])
        )
        index.per_landmark = _arrays_to_entries(
            len(landmarks), data["fwd_landmark"], data["fwd_vertex"],
            data["fwd_distance"], data["fwd_mask"], landmarks,
        )
        index._flat = [r.entries for r in index.per_landmark]
        if bool(data["directed"]):
            index.per_landmark_reverse = _arrays_to_entries(
                len(landmarks), data["rev_landmark"], data["rev_vertex"],
                data["rev_distance"], data["rev_mask"], landmarks,
            )
            index._flat_reverse = [r.entries for r in index.per_landmark_reverse]
        index._built = True
        #: checked by the engine session against the live graph on open.
        index.stored_fingerprint = int(data["fingerprint"])
        return index


def save_chromland(index: ChromLandIndex, path: str | os.PathLike) -> None:
    """Serialize a built ChromLand index."""
    _reject_mapped(index)
    if index.mono is None:
        raise ValueError("build the index before saving it")
    payload = {
        "kind": np.str_("chromland"),
        "format_version": np.int64(NPZ_FORMAT_VERSION),
        "fingerprint": graph_fingerprint(index.graph),
        "landmarks": index.landmarks,
        "colors": index.colors,
        "query_mode": np.str_(index.query_mode),
        "mono": index.mono,
        "bi": index.bi,
        "directed": np.bool_(index.graph.directed),
    }
    if index.mono_in is not None:
        payload["mono_in"] = index.mono_in
    np.savez_compressed(path, **payload)


def load_chromland(
    path: str | os.PathLike, graph: EdgeLabeledGraph
) -> ChromLandIndex:
    """Load a ChromLand index saved by :func:`save_chromland` for ``graph``."""
    with np.load(path, allow_pickle=False) as data:
        _check_npz_version(path, data)
        if str(data["kind"]) != "chromland":
            raise FormatError(f"{path} is not a ChromLand index file")
        if np.int64(data["fingerprint"]) != graph_fingerprint(graph):
            raise FormatError("index file was built for a different graph")
        index = ChromLandIndex(
            graph,
            [int(x) for x in data["landmarks"]],
            [int(c) for c in data["colors"]],
            query_mode=str(data["query_mode"]),
        )
        index.mono = data["mono"]
        index.bi = data["bi"]
        if "mono_in" in data:
            index.mono_in = data["mono_in"]
        index._built = True  # noqa: SLF001
        #: checked by the engine session against the live graph on open.
        index.stored_fingerprint = int(data["fingerprint"])
        return index


# ----------------------------------------------------------------------
# Format-agnostic entry points (npz fallback + mmap store)
# ----------------------------------------------------------------------
def save_index(
    index: PowCovIndex | ChromLandIndex,
    path: str | os.PathLike,
    format: str | None = None,
    compress: bool = False,
) -> None:
    """Persist a built index in either format.

    ``format`` is ``"npz"``, ``"mmap"``, or ``None`` to infer from the
    path suffix (``.npz`` → npz, anything else → the mmap store format).
    ``compress`` applies to the store format only (varint/delta sections).
    """
    if format is None:
        format = "npz" if os.fspath(path).endswith(".npz") else "mmap"
    if format == "npz":
        if isinstance(index, PowCovIndex):
            save_powcov(index, path)
        elif isinstance(index, ChromLandIndex):
            save_chromland(index, path)
        else:
            raise TypeError(f"cannot save index of type {type(index).__name__}")
        return
    if format == "mmap":
        from ..store.index_store import save_index as store_save

        store_save(index, path, compress=compress)
        return
    raise ValueError(f"format must be 'npz', 'mmap' or None, got {format!r}")


def load_index(
    path: str | os.PathLike, graph: EdgeLabeledGraph
) -> PowCovIndex | ChromLandIndex:
    """Load any persisted index for ``graph``, autodetecting the format.

    Store files (sniffed by magic) open as zero-copy mapped indexes;
    ``.npz`` archives deserialize eagerly through :func:`load_powcov` /
    :func:`load_chromland`.  Either way the loaded index carries
    ``stored_fingerprint`` and has been verified against ``graph``.
    """
    if is_store_file(path):
        from ..store.index_store import open_index

        return open_index(path, graph)
    with np.load(path, allow_pickle=False) as data:
        _check_npz_version(path, data)
        kind = str(data["kind"])
    if kind == "powcov":
        return load_powcov(path, graph)
    if kind == "chromland":
        return load_chromland(path, graph)
    raise FormatError(f"{path} holds an unknown index kind {kind!r}")
