"""Core distance-oracle layer: exact baseline, PowCov, ChromLand, naive index."""

from __future__ import annotations

from .chromland import ChromLandIndex, local_search_selection
from .dynamic import (
    RepairStats,
    assert_repair_matches_rebuild,
    rebuild_reference,
    repair_chromland,
    repair_index,
    repair_powcov,
)
from .exact import ExactDijkstraOracle, ExactOracle
from .naive import NaivePowersetIndex
from .nearest import constrained_nearest, rank_candidates
from .powcov import PowCovIndex, WeightedPowCovIndex
from .serialize import (
    load_chromland,
    load_index,
    load_powcov,
    save_chromland,
    save_index,
    save_powcov,
)
from .trie import LabelSetTrie
from .types import INF, DistanceOracle, Query, QueryAnswer

__all__ = [
    "ChromLandIndex",
    "ExactDijkstraOracle",
    "ExactOracle",
    "NaivePowersetIndex",
    "PowCovIndex",
    "WeightedPowCovIndex",
    "LabelSetTrie",
    "INF",
    "DistanceOracle",
    "Query",
    "QueryAnswer",
    "RepairStats",
    "repair_index",
    "repair_powcov",
    "repair_chromland",
    "rebuild_reference",
    "assert_repair_matches_rebuild",
    "local_search_selection",
    "constrained_nearest",
    "rank_candidates",
    "load_chromland",
    "load_index",
    "load_powcov",
    "save_chromland",
    "save_index",
    "save_powcov",
]
