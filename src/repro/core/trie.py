"""Prefix tree (trie) over label sets.

Section 3.1 of the paper: "we organize any group of label sets sharing the
same distance into a small-redundancy data structure, e.g., a prefix tree".
``LabelSetTrie`` is that structure.  Label sets are stored as sorted label-id
sequences; common prefixes share nodes, and the query the PowCov index needs
— *does the trie contain a subset of* ``C``? — is answered by a DFS that only
descends into children whose label is in ``C``.

The trie also supports exact-match lookups and enumeration, and exposes
``node_count`` for the storage-ablation benchmark.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..graph.labelsets import label_bit, labels_from_mask

__all__ = ["LabelSetTrie"]


class _Node:
    __slots__ = ("children", "terminal")

    def __init__(self):
        self.children: dict[int, _Node] = {}
        self.terminal = False


class LabelSetTrie:
    """A set of label-set bitmasks with shared-prefix storage.

    >>> trie = LabelSetTrie()
    >>> trie.insert(0b011)
    True
    >>> trie.insert(0b100)
    True
    >>> trie.contains_subset_of(0b111)
    True
    >>> trie.contains_subset_of(0b001)
    False
    """

    def __init__(self, masks: Iterator[int] | None = None):
        self._root = _Node()
        self._size = 0
        if masks is not None:
            for mask in masks:
                self.insert(mask)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, mask: int) -> bool:
        node = self._root
        for label in labels_from_mask(mask):
            node = node.children.get(label)
            if node is None:
                return False
        return node.terminal

    def insert(self, mask: int) -> bool:
        """Add ``mask``; returns True if it was not present before."""
        node = self._root
        for label in labels_from_mask(mask):
            child = node.children.get(label)
            if child is None:
                child = _Node()
                node.children[label] = child
            node = child
        if node.terminal:
            return False
        node.terminal = True
        self._size += 1
        return True

    def contains_subset_of(self, constraint_mask: int) -> bool:
        """True iff some stored set ``S`` satisfies ``S ⊆ constraint_mask``.

        The DFS may only follow child labels present in the constraint and
        prunes whole subtrees otherwise; with sorted insertion order this is
        the standard subset-retrieval walk.
        """
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.terminal:
                return True
            for label, child in node.children.items():
                if constraint_mask & label_bit(label):
                    stack.append(child)
        return False

    def subsets_of(self, constraint_mask: int) -> list[int]:
        """All stored masks that are subsets of ``constraint_mask``."""
        results: list[int] = []
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, prefix = stack.pop()
            if node.terminal:
                results.append(prefix)
            for label, child in node.children.items():
                if constraint_mask & label_bit(label):
                    stack.append((child, prefix | label_bit(label)))
        return results

    def supersets_of(self, query_mask: int) -> list[int]:
        """All stored masks that are supersets of ``query_mask``.

        Used by tests for redundancy analysis; a superset walk must take
        every branch but only "consumes" required labels when it passes
        them (stored sequences are sorted, so a required label smaller than
        the branch label can no longer appear and the branch is pruned).
        """
        required = labels_from_mask(query_mask)
        results: list[int] = []
        stack: list[tuple[_Node, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, prefix, need_idx = stack.pop()
            if need_idx == len(required) and node.terminal:
                results.append(prefix)
            for label, child in node.children.items():
                next_need = need_idx
                if need_idx < len(required):
                    if label > required[need_idx]:
                        continue  # sorted order: the required label was skipped
                    if label == required[need_idx]:
                        next_need += 1
                stack.append((child, prefix | label_bit(label), next_need))
        return results

    def iter_masks(self) -> Iterator[int]:
        """Yield every stored mask (in no particular order)."""
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, prefix = stack.pop()
            if node.terminal:
                yield prefix
            for label, child in node.children.items():
                stack.append((child, prefix | label_bit(label)))

    def node_count(self) -> int:
        """Number of trie nodes (storage-cost proxy for the ablation bench)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
