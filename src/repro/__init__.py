"""repro — label-constrained distance oracles for edge-labeled graphs.

A from-scratch Python reproduction of

    F. Bonchi, A. Gionis, F. Gullo, A. Ukkonen.
    "Distance oracles in edge-labeled graphs", EDBT 2014.

Public API tour
---------------
Graphs::

    from repro import GraphBuilder, load_dataset
    builder = GraphBuilder()
    builder.add_edge("alice", "bob", "friend")
    graph = builder.build()

Indexes::

    from repro import PowCovIndex, ChromLandIndex, select_landmarks
    landmarks = select_landmarks(graph, k=16)
    oracle = PowCovIndex(graph, landmarks).build()

Serving::

    from repro import QuerySession
    session = QuerySession(oracle, cache_size=8192)
    answers = session.run([(source, target, mask), ...])

Dynamic graphs::

    from repro import GraphDelta, apply_delta, repair_index
    new_graph = apply_delta(graph, GraphDelta(insertions=((u, v, label),)))
    repair_index(oracle, new_graph)     # bit-identical to a fresh build
    session.rebind(oracle)              # still-valid answers migrate

Experiments::

    python -m repro.eval.cli all

See README.md for the full guide and DESIGN.md for the system inventory.
"""

from __future__ import annotations

from .baselines import (
    BidirectionalBFSBaseline,
    LabelConstrainedCH,
    UnidirectionalBFSBaseline,
)
from .core import (
    INF,
    ChromLandIndex,
    DistanceOracle,
    ExactDijkstraOracle,
    ExactOracle,
    LabelSetTrie,
    NaivePowersetIndex,
    PowCovIndex,
    Query,
    QueryAnswer,
    RepairStats,
    WeightedPowCovIndex,
    assert_repair_matches_rebuild,
    constrained_nearest,
    load_chromland,
    load_index,
    load_powcov,
    rank_candidates,
    repair_index,
    save_chromland,
    save_index,
    save_powcov,
)
from .core.chromland import local_search_selection, random_selection
from .engine import EngineConfig, QuerySession, execute_batch
from .graph import (
    EdgeLabeledGraph,
    GraphBuilder,
    GraphDelta,
    LabelUniverse,
    apply_delta,
    chromatic_cluster_graph,
    labeled_barabasi_albert,
    labeled_erdos_renyi,
    labeled_grid,
    load_dataset,
    load_edge_list,
    paper_synthetic,
)
from .landmarks import select_landmarks
from .workloads import Workload, generate_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BidirectionalBFSBaseline",
    "LabelConstrainedCH",
    "UnidirectionalBFSBaseline",
    "INF",
    "ChromLandIndex",
    "DistanceOracle",
    "ExactDijkstraOracle",
    "ExactOracle",
    "LabelSetTrie",
    "NaivePowersetIndex",
    "PowCovIndex",
    "WeightedPowCovIndex",
    "Query",
    "QueryAnswer",
    "local_search_selection",
    "constrained_nearest",
    "rank_candidates",
    "load_chromland",
    "load_index",
    "load_powcov",
    "save_chromland",
    "save_index",
    "save_powcov",
    "RepairStats",
    "repair_index",
    "assert_repair_matches_rebuild",
    "random_selection",
    "EngineConfig",
    "QuerySession",
    "execute_batch",
    "EdgeLabeledGraph",
    "GraphBuilder",
    "GraphDelta",
    "apply_delta",
    "LabelUniverse",
    "chromatic_cluster_graph",
    "labeled_barabasi_albert",
    "labeled_erdos_renyi",
    "labeled_grid",
    "load_dataset",
    "load_edge_list",
    "paper_synthetic",
    "select_landmarks",
    "Workload",
    "generate_workload",
]
