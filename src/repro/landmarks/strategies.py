"""Unified landmark-selection API.

Section 5.3 of the paper evaluates the proposed selectors (GreedyMVC for
PowCov, local-search ``k``-median for ChromLand) against baselines:

* ``random`` — B-Rnd, uniform random vertices;
* ``degree`` — TopDegreeMVC, the ``k`` highest-degree vertices;
* ``betweenness`` — highest approximate betweenness centrality;
* ``vertex-cover-degree`` / ``vertex-cover-betweenness`` — pick from a
  2-approximate vertex cover, ranked by degree or betweenness (a full
  cover restricted to ``k`` members);
* ``greedy-mvc`` — the paper's PowCov selector.

``select_landmarks(graph, k, strategy, seed)`` dispatches by name, which is
how the Figure 6 experiment sweeps strategies.
"""

from __future__ import annotations

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from .betweenness import approximate_betweenness, top_betweenness_vertices
from .vertex_cover import greedy_max_cover, two_approx_vertex_cover

__all__ = ["STRATEGIES", "select_landmarks"]


def _random(graph: EdgeLabeledGraph, k: int, seed: int | None) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.choice(graph.num_vertices, size=k, replace=False)]


def _degree(graph: EdgeLabeledGraph, k: int, seed: int | None) -> list[int]:
    ranked = np.argsort(-graph.degrees(), kind="stable")
    return [int(v) for v in ranked[:k]]


def _betweenness(graph: EdgeLabeledGraph, k: int, seed: int | None) -> list[int]:
    return top_betweenness_vertices(graph, k, seed=seed)


def _greedy_mvc(graph: EdgeLabeledGraph, k: int, seed: int | None) -> list[int]:
    return greedy_max_cover(graph, k)


def _cover_ranked(
    graph: EdgeLabeledGraph, k: int, seed: int | None, by: str
) -> list[int]:
    cover = two_approx_vertex_cover(graph, seed=seed)
    if by == "degree":
        scores = graph.degrees()[cover]
    else:
        scores = approximate_betweenness(graph, seed=seed)[cover]
    ranked = np.argsort(-scores, kind="stable")
    picked = [cover[int(i)] for i in ranked[:k]]
    if len(picked) < k:
        # Tiny graphs: the cover may have fewer than k vertices; pad with
        # the highest-degree non-cover vertices.
        chosen = set(picked)
        for v in np.argsort(-graph.degrees(), kind="stable"):
            if len(picked) == k:
                break
            if int(v) not in chosen:
                picked.append(int(v))
                chosen.add(int(v))
    return picked


STRATEGIES = {
    "random": _random,
    "degree": _degree,
    "betweenness": _betweenness,
    "greedy-mvc": _greedy_mvc,
    "vertex-cover-degree": lambda g, k, s: _cover_ranked(g, k, s, "degree"),
    "vertex-cover-betweenness": lambda g, k, s: _cover_ranked(g, k, s, "betweenness"),
}


def select_landmarks(
    graph: EdgeLabeledGraph, k: int, strategy: str = "greedy-mvc", seed: int | None = 0
) -> list[int]:
    """Select ``k`` landmark vertices with the named strategy."""
    if not 1 <= k <= graph.num_vertices:
        raise ValueError(f"k must be in [1, n], got {k}")
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; available: {', '.join(STRATEGIES)}"
        ) from None
    landmarks = fn(graph, k, seed)
    if len(landmarks) != k or len(set(landmarks)) != k:
        raise AssertionError(f"strategy {strategy} returned a bad landmark set")
    return landmarks
