"""Vertex-cover algorithms underlying PowCov landmark selection.

Theorem 3 of the paper: a landmark set makes the PowCov index exact on
*every* query iff it is a vertex cover of the graph; Corollary 1 reduces
exact landmark selection to minimum vertex cover.  Since minimum covers are
usually ``Ω(n)``, Section 3.3 relaxes to ``k``-MAX-VERTEX-COVER — pick ``k``
vertices covering as many edges as possible — solved greedily
(:func:`greedy_max_cover`, the paper's GreedyMVC) with the classic
``max(1 - 1/e, k/n)`` guarantee (Theorem 4).

This module provides:

* :func:`greedy_max_cover` — GreedyMVC;
* :func:`two_approx_vertex_cover` — the maximal-matching 2-approximation,
  used to quantify how large full covers are and as a Figure 6 baseline pool;
* :func:`is_vertex_cover` / :func:`exact_min_vertex_cover` — verification
  helpers (the exact solver is exponential and guarded for tiny graphs).
"""

from __future__ import annotations

import heapq
from itertools import combinations

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph

__all__ = [
    "greedy_max_cover",
    "two_approx_vertex_cover",
    "is_vertex_cover",
    "exact_min_vertex_cover",
    "covered_edges",
]


def greedy_max_cover(graph: EdgeLabeledGraph, k: int) -> list[int]:
    """GreedyMVC: repeatedly take the vertex covering most uncovered edges.

    Lazy-greedy implementation: marginal gains only decrease as edges get
    covered (submodularity), so stale heap entries are re-evaluated on pop
    instead of updating every neighbor eagerly.  Runs in
    ``O(m + n log n + k · Δ)`` in practice.
    """
    if not 1 <= k <= graph.num_vertices:
        raise ValueError(f"k must be in [1, n], got {k}")
    covered = np.zeros(graph.num_arcs, dtype=bool)  # per stored arc
    # For undirected graphs each edge appears as two arcs; covering one
    # covers its twin.  Twin lookup: sort arcs of v to find (v -> u).
    gains = graph.degrees().astype(np.int64)
    heap = [(-int(gains[v]), int(v)) for v in range(graph.num_vertices)]
    heapq.heapify(heap)
    selected: list[int] = []
    chosen = np.zeros(graph.num_vertices, dtype=bool)

    def current_gain(v: int) -> int:
        start, stop = graph.indptr[v], graph.indptr[v + 1]
        return int((~covered[start:stop]).sum())

    while heap and len(selected) < k:
        negative_gain, v = heapq.heappop(heap)
        if chosen[v]:
            continue
        gain = current_gain(v)
        if gain < -negative_gain:
            heapq.heappush(heap, (-gain, v))  # stale entry: re-queue
            continue
        selected.append(v)
        chosen[v] = True
        start, stop = graph.indptr[v], graph.indptr[v + 1]
        covered[start:stop] = True
        if not graph.directed:
            # Mark the reverse arcs (u -> v) covered as well.
            for i in range(start, stop):
                u = int(graph.neighbors[i])
                u_start, u_stop = graph.indptr[u], graph.indptr[u + 1]
                block = graph.neighbors[u_start:u_stop]
                covered[u_start:u_stop] |= block == v
    return selected


def covered_edges(graph: EdgeLabeledGraph, vertices: list[int]) -> int:
    """Number of edges with at least one endpoint in ``vertices``."""
    in_set = np.zeros(graph.num_vertices, dtype=bool)
    in_set[list(vertices)] = True
    count = 0
    for u, v, _label in graph.iter_edges():
        if in_set[u] or in_set[v]:
            count += 1
    return count


def is_vertex_cover(graph: EdgeLabeledGraph, vertices: list[int]) -> bool:
    """True iff every edge has an endpoint in ``vertices``."""
    return covered_edges(graph, vertices) == _distinct_edge_count(graph)


def _distinct_edge_count(graph: EdgeLabeledGraph) -> int:
    return sum(1 for _ in graph.iter_edges())


def two_approx_vertex_cover(
    graph: EdgeLabeledGraph, seed: int | None = 0
) -> list[int]:
    """Maximal-matching 2-approximation of minimum vertex cover.

    Scans edges in a seeded random order, adding both endpoints of every
    edge not yet covered.  The result is a genuine vertex cover at most
    twice the optimum — the construction referenced in Section 3.3.
    """
    edges = list(graph.iter_edges())
    rng = np.random.default_rng(seed)
    rng.shuffle(edges)
    in_cover = np.zeros(graph.num_vertices, dtype=bool)
    for u, v, _label in edges:
        if not in_cover[u] and not in_cover[v]:
            in_cover[u] = True
            in_cover[v] = True
    return [int(v) for v in np.nonzero(in_cover)[0]]


def exact_min_vertex_cover(graph: EdgeLabeledGraph) -> list[int]:
    """Exhaustive minimum vertex cover (tests only; guarded to n <= 16)."""
    if graph.num_vertices > 16:
        raise ValueError("exact cover is exponential; use graphs with n <= 16")
    vertices = range(graph.num_vertices)
    for size in range(graph.num_vertices + 1):
        for subset in combinations(vertices, size):
            if is_vertex_cover(graph, list(subset)):
                return list(subset)
    return list(vertices)  # pragma: no cover - loop always returns
