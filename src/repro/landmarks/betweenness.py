"""Sampling-based approximate betweenness centrality.

One of the Figure 6 baseline landmark selectors picks the vertices with the
highest (approximate) betweenness scores.  The estimator is the standard
Brandes accumulation restricted to a random sample of source vertices —
unweighted graphs only, which covers every dataset in the paper.
"""

from __future__ import annotations

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph

__all__ = ["approximate_betweenness", "top_betweenness_vertices"]


def approximate_betweenness(
    graph: EdgeLabeledGraph, num_samples: int = 64, seed: int | None = 0
) -> np.ndarray:
    """Betweenness estimates from ``num_samples`` Brandes source sweeps.

    Returns a float array over vertices; values are scaled per-sample
    averages, which is all ranking-based selection needs.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sources = rng.choice(n, size=min(num_samples, n), replace=False)
    centrality = np.zeros(n, dtype=np.float64)
    indptr, neighbors = graph.indptr, graph.neighbors

    for source in sources:
        # Brandes: BFS computing sigma (shortest-path counts), then a
        # reverse accumulation of pair dependencies.
        dist = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        dist[source] = 0
        sigma[source] = 1.0
        order: list[int] = [int(source)]
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            du = dist[u]
            for i in range(indptr[u], indptr[u + 1]):
                v = int(neighbors[i])
                if dist[v] == -1:
                    dist[v] = du + 1
                    order.append(v)
                if dist[v] == du + 1:
                    sigma[v] += sigma[u]
        delta = np.zeros(n, dtype=np.float64)
        for u in reversed(order):
            du = dist[u]
            for i in range(indptr[u], indptr[u + 1]):
                v = int(neighbors[i])
                if dist[v] == du + 1 and sigma[v] > 0:
                    delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
            if u != source:
                centrality[u] += delta[u]
    return centrality / len(sources)


def top_betweenness_vertices(
    graph: EdgeLabeledGraph, k: int, num_samples: int = 64, seed: int | None = 0
) -> list[int]:
    """The ``k`` vertices with the highest approximate betweenness."""
    if not 1 <= k <= graph.num_vertices:
        raise ValueError(f"k must be in [1, n], got {k}")
    scores = approximate_betweenness(graph, num_samples=num_samples, seed=seed)
    ranked = np.argsort(-scores, kind="stable")
    return [int(v) for v in ranked[:k]]
