"""Landmark-selection strategies (Sections 3.3, 4.3 and 5.3)."""

from __future__ import annotations

from .betweenness import approximate_betweenness, top_betweenness_vertices
from .strategies import STRATEGIES, select_landmarks
from .vertex_cover import (
    covered_edges,
    exact_min_vertex_cover,
    greedy_max_cover,
    is_vertex_cover,
    two_approx_vertex_cover,
)

__all__ = [
    "approximate_betweenness",
    "top_betweenness_vertices",
    "STRATEGIES",
    "select_landmarks",
    "covered_edges",
    "exact_min_vertex_cover",
    "greedy_max_cover",
    "is_vertex_cover",
    "two_approx_vertex_cover",
]
