"""Shared-memory graph handoff for multi-process index construction.

Pickling an :class:`~repro.graph.labeled_graph.EdgeLabeledGraph` per task
copies the full CSR arrays into every worker on every submission.  This
module instead shares the arrays physically and ships only a small
picklable :class:`GraphDescriptor` per submission, through one of two
paths chosen per array:

* **File-backed** (:class:`FileArraySpec`) — when an array is already a
  view over an ``np.memmap`` (a graph opened from the
  :mod:`repro.store` format), nothing is copied at all: the descriptor
  records ``(path, offset, shape, dtype)`` and every worker maps the same
  file region, sharing one physical copy through the page cache.
* **Shm-block** (:class:`ArraySpec`) — in-memory arrays are copied once
  into ``multiprocessing.shared_memory`` blocks; workers reconstruct
  zero-copy numpy views over the same pages.

Lifecycle
---------
The parent calls :func:`share_graphs` and is responsible for calling
:meth:`SharedGraphPack.close` and :meth:`SharedGraphPack.unlink` when the
pool is done — :func:`repro.perf.parallel.run_tasks` does this in a
``finally`` block so the blocks are released even when a worker raises.
(File-backed specs own nothing and need no cleanup.)  Workers call
:func:`attach_graph` and keep the returned :class:`AttachedGraph` alive
for as long as they use the graph (the numpy views borrow the shared
buffer or mapping).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph

__all__ = [
    "ArraySpec",
    "FileArraySpec",
    "GraphDescriptor",
    "SharedGraphPack",
    "AttachedGraph",
    "share_graphs",
    "attach_graph",
]


@dataclass(frozen=True)
class ArraySpec:
    """Picklable description of one shm-block-backed numpy array."""

    block_name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class FileArraySpec:
    """Picklable description of one file-backed (memmap) numpy array."""

    path: str
    #: absolute byte offset of the array's first element within the file.
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class GraphDescriptor:
    """Everything a worker needs to reattach one graph (small, picklable)."""

    indptr: "ArraySpec | FileArraySpec"
    neighbors: "ArraySpec | FileArraySpec"
    edge_labels: "ArraySpec | FileArraySpec"
    num_labels: int
    directed: bool
    num_edges: int


def _file_backing(array: np.ndarray) -> tuple[str, int] | None:
    """``(path, offset)`` when ``array`` is a contiguous memmap view.

    Walks the ``.base`` chain looking for an ``np.memmap``; the view's
    file offset is the memmap's own offset plus the pointer distance
    between the two buffers.  Returns ``None`` for plain in-memory arrays
    (and for non-contiguous views, which the shm path handles by copying).
    """
    if not array.flags["C_CONTIGUOUS"]:
        return None
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            filename = base.filename
            if filename is None:  # pragma: no cover - anonymous mapping
                return None
            pointer = array.__array_interface__["data"][0]
            base_pointer = base.__array_interface__["data"][0]
            return os.fspath(filename), int(base.offset) + (pointer - base_pointer)
        base = getattr(base, "base", None)
    return None


def _export_array(
    array: np.ndarray,
) -> tuple[shared_memory.SharedMemory | None, "ArraySpec | FileArraySpec"]:
    """Describe ``array`` for workers: by file region, or by shm copy."""
    backing = _file_backing(array)
    if backing is not None:
        path, offset = backing
        return None, FileArraySpec(path, offset, tuple(array.shape), array.dtype.str)
    array = np.ascontiguousarray(array)
    # SharedMemory rejects size 0; keep one byte for empty arrays and record
    # the true shape in the spec.
    block = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    try:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        spec = ArraySpec(block.name, tuple(array.shape), array.dtype.str)
    except Exception:
        # The segment exists in the OS already; without this it would
        # outlive the failed export until process exit (REPRO012).
        block.close()
        block.unlink()
        raise
    return block, spec


def _attach_array(
    spec: "ArraySpec | FileArraySpec",
) -> tuple[shared_memory.SharedMemory | None, np.ndarray]:
    """Zero-copy view over an exported array (worker side)."""
    if isinstance(spec, FileArraySpec):
        dtype = np.dtype(spec.dtype)
        if any(dim == 0 for dim in spec.shape):
            # np.memmap cannot map zero bytes; an empty array is free.
            return None, np.empty(spec.shape, dtype=dtype)
        view = np.memmap(
            spec.path, mode="r", dtype=dtype, shape=spec.shape, offset=spec.offset
        )
        return None, view
    try:
        # Python >= 3.13: opt out of resource tracking for attach-only
        # handles; cleanup belongs to the creating process alone.
        block = shared_memory.SharedMemory(name=spec.block_name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        # Older interpreters register the attach with the resource tracker.
        # Pool workers share the parent's tracker process, where the name is
        # already registered, so the extra registration is a harmless no-op
        # and the parent's unlink() still deregisters exactly once.
        block = shared_memory.SharedMemory(name=spec.block_name)
    try:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=block.buf)
    except Exception:
        # Attach-side handle: close our mapping but never unlink — the
        # segment belongs to the creating process.
        block.close()
        raise
    return block, view


class SharedGraphPack:
    """Parent-side owner of the shared blocks for a tuple of graphs."""

    def __init__(
        self,
        blocks: list[shared_memory.SharedMemory],
        descriptors: tuple[GraphDescriptor, ...],
    ):
        self._blocks = blocks
        self.descriptors = descriptors

    def block_names(self) -> list[str]:
        """Names of every owned shared-memory block."""
        return [block.name for block in self._blocks]

    def close(self) -> None:
        for block in self._blocks:
            try:
                block.close()
            except OSError:  # pragma: no cover - double close is harmless
                pass

    def unlink(self) -> None:
        for block in self._blocks:
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def release(self) -> None:
        """Close and unlink every block (idempotent)."""
        self.close()
        self.unlink()


class AttachedGraph:
    """Worker-side graph view; keeps the shared blocks alive."""

    def __init__(
        self, graph: EdgeLabeledGraph, blocks: list[shared_memory.SharedMemory]
    ):
        self.graph = graph
        self._blocks = blocks

    def close(self) -> None:
        for block in self._blocks:
            try:
                block.close()
            except OSError:  # pragma: no cover
                pass


def share_graphs(graphs: tuple[EdgeLabeledGraph, ...]) -> SharedGraphPack:
    """Export every graph's CSR arrays for zero-copy worker access.

    Arrays already backed by a mapped store file are described by their
    file region (no copy, no owned resource); the rest are copied into
    shared-memory blocks.  On failure mid-export the already-created
    blocks are released before re-raising, so no segment can leak.
    """
    blocks: list[shared_memory.SharedMemory] = []
    descriptors: list[GraphDescriptor] = []
    try:
        for graph in graphs:
            specs: list[ArraySpec | FileArraySpec] = []
            for array in (graph.indptr, graph.neighbors, graph.edge_labels):
                block, spec = _export_array(array)
                if block is not None:
                    blocks.append(block)
                specs.append(spec)
            descriptors.append(
                GraphDescriptor(
                    indptr=specs[0],
                    neighbors=specs[1],
                    edge_labels=specs[2],
                    num_labels=graph.num_labels,
                    directed=graph.directed,
                    num_edges=graph.num_edges,
                )
            )
    except Exception:
        pack = SharedGraphPack(blocks, ())
        pack.release()
        raise
    return SharedGraphPack(blocks, tuple(descriptors))


def attach_graph(descriptor: GraphDescriptor) -> AttachedGraph:
    """Reconstruct a zero-copy :class:`EdgeLabeledGraph` in a worker.

    The returned views share physical memory with the parent's export;
    ``EdgeLabeledGraph.__init__`` keeps already-contiguous arrays of the
    right dtype as-is, so no copy happens.
    """
    blocks: list[shared_memory.SharedMemory] = []
    arrays: list[np.ndarray] = []
    try:
        for spec in (descriptor.indptr, descriptor.neighbors, descriptor.edge_labels):
            block, view = _attach_array(spec)
            if block is not None:
                blocks.append(block)
            arrays.append(view)
    except Exception:
        for block in blocks:
            block.close()
        raise
    graph = EdgeLabeledGraph(
        arrays[0],
        arrays[1],
        arrays[2],
        num_labels=descriptor.num_labels,
        directed=descriptor.directed,
        num_edges=descriptor.num_edges,
    )
    return AttachedGraph(graph, blocks)
