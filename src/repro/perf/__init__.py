"""Performance subsystem: parallel index construction and batched kernels.

The paper's landmark indexes are embarrassingly parallel across landmarks
(one independent sweep per landmark), and their inner loops are dominated
by repeated CSR gathers that can be amortized across BFS sources.  This
package provides the three pieces that exploit both facts:

* :mod:`repro.perf.shm` — zero-copy handoff of a graph's CSR arrays to
  worker processes through ``multiprocessing.shared_memory`` (the graph is
  shared once instead of pickled per task);
* :mod:`repro.perf.parallel` — :class:`ParallelConfig` and the chunked
  fan-out engine used by ``PowCovIndex.build(parallel=...)`` and
  ``ChromLandIndex.build(parallel=...)``, with deterministic reassembly in
  landmark order (parallel output is bit-for-bit identical to serial);
* :mod:`repro.perf.batched` — a batched multi-source constrained BFS that
  expands one combined frontier over a ``(num_sources, num_vertices)``
  distance matrix, amortizing per-level Python and CSR-gather overhead
  across sources.
"""

from __future__ import annotations

from .batched import batched_constrained_bfs, exact_workload_distances
from .parallel import (
    ParallelConfig,
    get_default_parallel,
    resolve_parallel,
    run_tasks,
    set_default_parallel,
)
from .shm import SharedGraphPack, attach_graph, share_graphs

__all__ = [
    "ParallelConfig",
    "SharedGraphPack",
    "attach_graph",
    "batched_constrained_bfs",
    "exact_workload_distances",
    "get_default_parallel",
    "resolve_parallel",
    "run_tasks",
    "set_default_parallel",
    "share_graphs",
]
