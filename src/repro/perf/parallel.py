"""The parallel build executor: fan per-landmark work out over workers.

Landmark index construction is embarrassingly parallel — one independent
sweep per landmark — so the engine here is deliberately simple: split the
item list into contiguous chunks, run ``task(graphs, chunk, extra)`` for
each chunk on a backend, and concatenate the per-chunk result lists back in
submission order.  Because chunks are contiguous and reassembly is
order-preserving, the output is **bit-for-bit identical** to a serial run
for any deterministic task, regardless of worker count or scheduling.

Backends
--------
``"process"``
    ``ProcessPoolExecutor``.  The graphs are exported once through
    :mod:`repro.perf.shm` and every worker attaches zero-copy views in
    its initializer, so the graph is never pickled per task.  Graphs
    opened from a mapped store file (:mod:`repro.store`) are shared by
    file region — workers map the same file and the page cache holds one
    physical copy; in-memory graphs are copied once into shared-memory
    blocks, which are closed and unlinked in a ``finally`` block — also
    when a worker raises.
``"thread"``
    ``ThreadPoolExecutor`` over the in-process graphs.  Useful when the
    task releases the GIL or the graphs are too large to duplicate.
``"serial"``
    One ``task`` call over the full item list in the calling thread.  This
    is the default; it also lets chunk-aware tasks (e.g. the batched BFS
    sweeps of ChromLand) see every item at once.

Tracing
-------
When :mod:`repro.obs.trace` tracing is on, ``run_tasks`` opens a
``parallel.run_tasks`` span.  Serial-backend task spans nest under it
naturally.  Process workers receive the tracing flag through the pool
initializer, trace each chunk locally, and ship the finished span dicts
home inside the chunk payload, where they are grafted under the parent
span — so a process-parallel build renders as one tree.  Thread-backend
worker spans surface as separate trace roots (each worker thread has its
own span stack).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..graph.labeled_graph import EdgeLabeledGraph
from ..obs.trace import (
    attach_spans,
    export_trace,
    reset_trace,
    set_tracing,
    span,
    tracing_enabled,
)
from . import shm as _shm

__all__ = [
    "ParallelConfig",
    "SERIAL",
    "set_default_parallel",
    "get_default_parallel",
    "resolve_parallel",
    "run_tasks",
]

_BACKENDS = ("process", "thread", "serial")

#: A chunk task: ``task(graphs, items, extra) -> list[result]`` with one
#: result per item, in item order.  Must be a module-level callable (the
#: process backend ships it to workers by reference).
ChunkTask = Callable[[tuple[EdgeLabeledGraph, ...], Sequence[Any], Any], list]


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan an index build out over workers.

    Parameters
    ----------
    num_workers:
        Worker count; ``0`` means ``os.cpu_count()``.  ``1`` runs serially
        regardless of backend.
    chunk_size:
        Items per submitted chunk; ``None`` picks ``ceil(len(items) /
        num_workers)`` so every worker gets one contiguous slice.  Smaller
        chunks improve load balancing at the cost of more IPC.
    backend:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.
    """

    num_workers: int = 0
    chunk_size: int | None = None
    backend: str = "process"

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    @property
    def effective_workers(self) -> int:
        if self.backend == "serial":
            return 1
        if self.num_workers == 0:
            return os.cpu_count() or 1
        return self.num_workers


#: The do-nothing configuration every ``build()`` defaults to.
SERIAL = ParallelConfig(num_workers=1, backend="serial")

_default_parallel: ParallelConfig | None = None


def set_default_parallel(config: "ParallelConfig | int | None") -> None:
    """Set the process-wide default used when ``build(parallel=None)``.

    The CLI's ``--workers`` flag routes through this so that every index
    built during an experiment run picks up the same worker count without
    threading a parameter through every table function.  ``None`` restores
    the serial default.
    """
    global _default_parallel
    _default_parallel = None if config is None else _coerce(config)


def get_default_parallel() -> ParallelConfig:
    """The current process-wide default (serial unless explicitly set)."""
    return _default_parallel if _default_parallel is not None else SERIAL


def _coerce(parallel: "ParallelConfig | int") -> ParallelConfig:
    if isinstance(parallel, ParallelConfig):
        return parallel
    if isinstance(parallel, int) and not isinstance(parallel, bool):
        if parallel <= 1:
            return SERIAL
        return ParallelConfig(num_workers=parallel)
    raise TypeError(f"parallel must be a ParallelConfig or int, got {parallel!r}")


def resolve_parallel(parallel: "ParallelConfig | int | None") -> ParallelConfig:
    """Normalize a ``parallel=`` argument: None -> default, int -> config."""
    if parallel is None:
        return get_default_parallel()
    return _coerce(parallel)


def _chunks(items: Sequence[Any], config: ParallelConfig) -> list[Sequence[Any]]:
    size = config.chunk_size
    if size is None:
        size = max(1, -(-len(items) // config.effective_workers))
    return [items[i : i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------------------------
# Process-backend worker plumbing.  Everything the workers need is shipped
# once through the pool initializer; tasks then only carry their chunk.
# ----------------------------------------------------------------------
_worker_state: dict[str, Any] = {}


def _worker_init(descriptors, task, extra, tracing: bool = False) -> None:
    attached = [_shm.attach_graph(d) for d in descriptors]
    _worker_state["attached"] = attached  # keeps the shm blocks alive
    _worker_state["graphs"] = tuple(a.graph for a in attached)
    _worker_state["task"] = task
    _worker_state["extra"] = extra
    set_tracing(tracing)


#: Marker key identifying a traced chunk payload (vs. a plain result list).
_TRACE_KEY = "__repro_trace__"


def _worker_run(chunk) -> Any:
    task = _worker_state["task"]
    graphs = _worker_state["graphs"]
    extra = _worker_state["extra"]
    if not tracing_enabled():
        return task(graphs, chunk, extra)
    # Trace the chunk locally and ship the finished spans home with the
    # results; workers are reused, so drop the previous chunk's spans first.
    reset_trace()
    with span("parallel.worker_chunk", pid=os.getpid()) as chunk_span:
        chunk_span.count("items", len(chunk))
        results = task(graphs, chunk, extra)
    return {_TRACE_KEY: export_trace(), "results": results}


def run_tasks(
    task: ChunkTask,
    items: Sequence[Any],
    graphs: tuple[EdgeLabeledGraph, ...] = (),
    extra: Any = None,
    config: "ParallelConfig | int | None" = None,
) -> list:
    """Run ``task`` over ``items`` on the configured backend.

    Returns one result per item, **in item order** — the caller's
    reassembly is therefore deterministic and independent of worker count.
    """
    config = resolve_parallel(config)
    if len(items) == 0:
        return []
    if config.backend == "serial" or config.effective_workers <= 1 or len(items) == 1:
        with span("parallel.run_tasks", backend="serial") as serial_span:
            serial_span.count("items", len(items))
            return list(task(graphs, items, extra))

    chunks = _chunks(items, config)
    workers = min(config.effective_workers, len(chunks))

    with span(
        "parallel.run_tasks", backend=config.backend, workers=workers
    ) as run_span:
        run_span.count("items", len(items))
        run_span.count("chunks", len(chunks))
        if config.backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                chunk_results = list(
                    pool.map(lambda c: task(graphs, c, extra), chunks)
                )
        else:
            pack = _shm.share_graphs(graphs)
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(pack.descriptors, task, extra, tracing_enabled()),
                ) as pool:
                    chunk_results = list(pool.map(_worker_run, chunks))
            finally:
                pack.release()

        results: list = []
        for chunk_result in chunk_results:
            if isinstance(chunk_result, dict) and _TRACE_KEY in chunk_result:
                attach_spans(chunk_result[_TRACE_KEY])
                chunk_result = chunk_result["results"]
            results.extend(chunk_result)
        if len(results) != len(items):
            raise RuntimeError(
                f"task returned {len(results)} results for {len(items)} items"
            )
        return results
