"""Batched multi-source constrained BFS.

:func:`repro.graph.traversal.constrained_bfs` pays a fixed Python/numpy
overhead per BFS level (slicing ``indptr``, building the arc index,
gathering labels and targets).  When many sweeps run over the same graph —
ChromLand's ``k`` monochromatic sweeps, its bi-chromatic landmark rows, or
a workload's ground-truth distances — that overhead can be amortized by
expanding **one combined frontier** over a ``(num_sources, num_vertices)``
distance matrix: every level gathers the CSR slices of all active
``(source, vertex)`` pairs at once.

Each row of the result is exactly the distance array the single-source
BFS would produce (both compute exact constrained distances), which is
what lets ``ChromLandIndex.build()`` switch to this kernel with
bit-for-bit identical output.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import full_mask
from ..graph.traversal import UNREACHABLE, label_filter

__all__ = ["batched_constrained_bfs", "exact_workload_distances"]


def _allowed_table(
    graph: EdgeLabeledGraph,
    num_sources: int,
    mask: int | None,
    masks: "Sequence[int] | np.ndarray | None",
) -> tuple[np.ndarray, bool]:
    """``(table, per_source)``: per-source (S, L) or shared (L,) bool table."""
    if masks is not None:
        if len(masks) != num_sources:
            raise ValueError("masks must be parallel to sources")
        if graph.num_labels <= 63:
            mask_arr = np.asarray(list(masks), dtype=np.int64)
            shifts = np.arange(graph.num_labels, dtype=np.int64)
            table = ((mask_arr[:, None] >> shifts) & 1).astype(bool)
        else:  # rare wide-universe graphs: per-row scalar fallback
            table = np.stack([label_filter(graph, int(m)) for m in masks])
        return table, True
    if mask is None:
        mask = full_mask(graph.num_labels)
    return label_filter(graph, mask), False


def batched_constrained_bfs(
    graph: EdgeLabeledGraph,
    sources: "Sequence[int] | np.ndarray",
    mask: int | None = None,
    masks: "Sequence[int] | np.ndarray | None" = None,
) -> np.ndarray:
    """C-constrained BFS from many sources in one frontier-expansion loop.

    Parameters
    ----------
    sources:
        Source vertex per row; duplicates are allowed (rows are
        independent sweeps).
    mask:
        One constraint mask shared by every row (``None`` = all labels).
    masks:
        Per-row constraint masks, parallel to ``sources``; overrides
        ``mask``.  This is what lets ChromLand run its per-landmark
        monochromatic sweeps as a single batch.

    Returns
    -------
    ``(len(sources), num_vertices)`` ``int32`` matrix; ``row[i]`` equals
    ``constrained_bfs(graph, sources[i], masks[i])`` exactly.
    """
    source_arr = np.asarray(list(sources), dtype=np.int64)
    num_sources = len(source_arr)
    n = graph.num_vertices
    dist = np.full((num_sources, n), UNREACHABLE, dtype=np.int32)
    if num_sources == 0:
        return dist
    if source_arr.size and (source_arr.min() < 0 or source_arr.max() >= n):
        raise ValueError("source vertex out of range")
    allowed, per_source = _allowed_table(graph, num_sources, mask, masks)

    rows = np.arange(num_sources, dtype=np.int64)
    dist[rows, source_arr] = 0
    frontier_rows = rows
    frontier_vertices = source_arr
    indptr, neighbors, edge_labels = graph.indptr, graph.neighbors, graph.edge_labels
    level = 0
    while frontier_vertices.size:
        level += 1
        starts = indptr[frontier_vertices]
        counts = indptr[frontier_vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # One combined CSR gather for every (row, vertex) frontier pair.
        ends = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        arc_idx = np.repeat(starts, counts) + offsets
        arc_rows = np.repeat(frontier_rows, counts)
        labels = edge_labels[arc_idx]
        ok = allowed[arc_rows, labels] if per_source else allowed[labels]
        arc_rows = arc_rows[ok]
        targets = neighbors[arc_idx[ok]].astype(np.int64)
        if targets.size == 0:
            break
        # Deduplicate (row, target) pairs before the distance gather.
        keys = np.unique(arc_rows * n + targets)
        arc_rows = keys // n
        targets = keys - arc_rows * n
        fresh = dist[arc_rows, targets] == UNREACHABLE
        arc_rows = arc_rows[fresh]
        targets = targets[fresh]
        if targets.size == 0:
            break
        dist[arc_rows, targets] = level
        frontier_rows = arc_rows
        frontier_vertices = targets
    return dist


def exact_workload_distances(
    graph: EdgeLabeledGraph,
    queries: "Sequence[tuple[int, int, int]]",
    batch_size: int = 64,
) -> np.ndarray:
    """Exact ``d_C(s, t)`` for many ``(s, t, mask)`` triples, batched.

    Groups the queries by constraint mask, deduplicates sources within a
    group, and runs :func:`batched_constrained_bfs` over ``batch_size``
    sources at a time — the eval runner's workload ground-truth pass this
    way amortizes the CSR gathers that a per-query bidirectional BFS would
    repeat from scratch.  Returns a ``float64`` array parallel to
    ``queries`` with ``inf`` for unreachable pairs.
    """
    out = np.full(len(queries), np.inf, dtype=np.float64)
    by_mask: dict[int, list[int]] = {}
    for position, (_s, _t, query_mask) in enumerate(queries):
        by_mask.setdefault(int(query_mask), []).append(position)
    for query_mask, positions in by_mask.items():
        unique_sources = sorted({int(queries[p][0]) for p in positions})
        row_of = {s: i for i, s in enumerate(unique_sources)}
        for lo in range(0, len(unique_sources), max(1, batch_size)):
            chunk = unique_sources[lo : lo + max(1, batch_size)]
            dist = batched_constrained_bfs(graph, chunk, mask=query_mask)
            for p in positions:
                s, t, _m = queries[p]
                row = row_of[int(s)] - lo
                if 0 <= row < len(chunk):
                    value = int(dist[row, int(t)])
                    if value != UNREACHABLE:
                        out[p] = float(value)
    return out
