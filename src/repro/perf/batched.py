"""Batched multi-source constrained BFS.

:func:`repro.graph.traversal.constrained_bfs` pays a fixed Python/numpy
overhead per BFS level (slicing ``indptr``, building the arc index,
gathering labels and targets).  When many sweeps run over the same graph —
ChromLand's ``k`` monochromatic sweeps, its bi-chromatic landmark rows, or
a workload's ground-truth distances — that overhead can be amortized by
expanding **one combined frontier** over a ``(num_sources, num_vertices)``
distance matrix: every level gathers the CSR slices of all active
``(source, vertex)`` pairs at once.

Each row of the result is exactly the distance array the single-source
BFS would produce (both compute exact constrained distances), which is
what lets ``ChromLandIndex.build()`` and the wave-batched PowCov builder
(:mod:`repro.core.powcov.waves`) switch to this kernel with bit-for-bit
identical output.

Two refinements keep heterogeneous batches cheap:

* **Active-row compaction** — per-row constraint masks make frontiers die
  at very different levels (a singleton-mask row may exhaust its component
  in two hops while the full-mask row sweeps the whole graph).  Rows whose
  frontier produced no fresh vertices are dropped from the working set:
  the per-source ``allowed`` table and the dedup key space shrink to the
  live rows, so later level gathers never touch dead rows again.
* **Early-exit distance bound** — ``max_level`` stops the expansion once
  every remaining undiscovered vertex would lie beyond the bound; callers
  that only need distances up to a radius (e.g. Observation 2 style
  cutoffs) skip the long tail of the sweep.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import full_mask
from ..graph.traversal import UNREACHABLE, label_filter
from ..kernels import KernelBackend, resolve_kernel

__all__ = ["batched_constrained_bfs", "exact_workload_distances"]

#: Per-row-mask batches at least this tall run the bit-parallel kernel;
#: smaller ones stay on the sparse frontier expansion, whose cost scales
#: with the touched subgraph rather than with whole-arc sweeps.
_BITSET_MIN_ROWS = 4


def _allowed_table(
    graph: EdgeLabeledGraph,
    num_sources: int,
    mask: int | None,
    masks: "Sequence[int] | np.ndarray | None",
) -> tuple[np.ndarray, bool]:
    """``(table, per_source)``: per-source (S, L) or shared (L,) bool table."""
    if masks is not None:
        if len(masks) != num_sources:
            raise ValueError("masks must be parallel to sources")
        if graph.num_labels <= 63:
            mask_arr = np.asarray(list(masks), dtype=np.int64)
            shifts = np.arange(graph.num_labels, dtype=np.int64)
            table = ((mask_arr[:, None] >> shifts) & 1).astype(bool)
        else:  # rare wide-universe graphs: per-row scalar fallback
            table = np.stack([label_filter(graph, int(m)) for m in masks])
        return table, True
    if mask is None:
        mask = full_mask(graph.num_labels)
    return label_filter(graph, mask), False


def batched_constrained_bfs(
    graph: EdgeLabeledGraph,
    sources: "Sequence[int] | np.ndarray",
    mask: int | None = None,
    masks: "Sequence[int] | np.ndarray | None" = None,
    max_level: int | None = None,
    kernel: "str | KernelBackend | None" = None,
) -> np.ndarray:
    """C-constrained BFS from many sources in one frontier-expansion loop.

    Parameters
    ----------
    sources:
        Source vertex per row; duplicates are allowed (rows are
        independent sweeps).
    mask:
        One constraint mask shared by every row (``None`` = all labels).
    masks:
        Per-row constraint masks, parallel to ``sources``; overrides
        ``mask``.  This is what lets ChromLand run its per-landmark
        monochromatic sweeps — and the wave-batched PowCov builder its
        per-cardinality candidate waves — as a single batch.
    max_level:
        Optional early-exit distance bound: expansion stops after the
        ``max_level`` frontier, leaving strictly farther vertices marked
        unreachable.  ``None`` (default) runs every row to exhaustion.
    kernel:
        Which :mod:`repro.kernels` backend runs the sweep: a backend
        name (``"numpy"``/``"numba"``/``"cext"``/``"auto"``), an already
        resolved backend instance, or ``None`` for the process default
        (``set_default_kernel`` → ``REPRO_KERNEL`` → ``"auto"``).  All
        backends are bit-identical; only wall-clock time changes.

    Returns
    -------
    ``(len(sources), num_vertices)`` ``int32`` matrix; ``row[i]`` equals
    ``constrained_bfs(graph, sources[i], masks[i])`` exactly (entries
    beyond ``max_level``, when given, are ``-1``).

    Rows whose frontier dies are compacted out of the working set, so a
    batch mixing quickly-exhausted masks with long sweeps only pays for
    the rows that are still expanding at each level.
    """
    source_arr = np.asarray(list(sources), dtype=np.int64)
    num_sources = len(source_arr)
    n = graph.num_vertices
    dist = np.full((num_sources, n), UNREACHABLE, dtype=np.int32)
    if num_sources == 0:
        return dist
    if source_arr.size and (source_arr.min() < 0 or source_arr.max() >= n):
        raise ValueError("source vertex out of range")
    if max_level is not None and max_level < 0:
        raise ValueError("max_level must be non-negative")
    allowed, per_source = _allowed_table(graph, num_sources, mask, masks)
    backend = resolve_kernel(kernel)
    level_cap = -1 if max_level is None else int(max_level)

    rows64 = np.arange(num_sources, dtype=np.int64)
    dist[rows64, source_arr] = 0
    if per_source and num_sources >= _BITSET_MIN_ROWS:
        in_graph = graph.reversed()
        backend.msbfs_bitset(
            in_graph.indptr,
            in_graph.neighbors,
            in_graph.edge_labels,
            n,
            source_arr,
            allowed,
            dist,
            level_cap,
        )
        return dist
    # Sparse path: compiled backends run one sequential BFS per row and
    # return True; the numpy backend declines (False) so the vectorized
    # label-grouped-CSR expansion below keeps serving it.  The broadcast
    # for a shared mask is zero-copy (numpy never touches it).
    allowed2d = (
        allowed
        if per_source
        else np.broadcast_to(allowed, (num_sources, allowed.shape[0]))
    )
    if backend.msbfs_sparse(
        graph.indptr,
        graph.neighbors,
        graph.edge_labels,
        n,
        source_arr,
        allowed2d,
        dist,
        level_cap,
    ):
        return dist
    dist_flat = dist.reshape(-1)
    # 32-bit addressing whenever the flat (row, vertex) space fits: the
    # claim scratch, stamps, and flat indices then move half the bytes.
    wide = num_sources * n >= 2**31
    idx = np.int64 if wide else np.int32
    # ``row_ids[c]`` maps the compacted row slot ``c`` back to its global
    # row in ``dist``; frontier bookkeeping runs in compacted space, and
    # while no row has died yet (``identity``) the indirection is skipped.
    # The ``astype(idx)`` casts below are guarded narrowings: ``idx`` is
    # int32 only when ``num_sources * n < 2**31``, so every row id, vertex
    # id and flat index provably fits.  REPRO009 cannot see the guard
    # (the dtype joins to int32|int64 after the branch), hence the noqas.
    row_ids = rows64.astype(idx)  # noqa: REPRO009
    identity = True
    frontier_rows = row_ids
    frontier_vertices = source_arr.astype(idx)  # noqa: REPRO009
    # Scatter-stamp dedup scratch: ``claim[flat]`` holds the stamp of the
    # last arc that reached that (row, vertex) pair; an arc whose stamp
    # survives the read-back is the unique winner for its pair.  One
    # scatter + one gather replaces a hash/sort-based ``np.unique`` over
    # combined keys.  Stamps only disambiguate arcs *within* one level
    # (freshness comes from ``dist``), so the scratch can be wiped when
    # the 32-bit stamp space runs out.
    claim = np.full(num_sources * n, -1, dtype=idx)
    stamp_stop = 2**62 if wide else 2**31 - 1
    stamp_base = 0
    indptr, neighbors, edge_labels = graph.indptr, graph.neighbors, graph.edge_labels
    if per_source:
        # Per-row masks: expand through the label-grouped CSR so only the
        # arcs a row's mask allows are ever gathered — no per-arc label
        # test.  ``lab_pad[r, :row_nlab[r]]`` lists row ``r``'s labels.
        group_indptr, grouped_neighbors = graph.label_grouped_csr()
        num_labels = graph.num_labels
        lab_rows, lab_cols = np.nonzero(allowed)
        row_nlab = np.bincount(lab_rows, minlength=num_sources)
        lab_ends = np.cumsum(row_nlab)
        pos = np.arange(lab_rows.size, dtype=np.int64) - np.repeat(
            lab_ends - row_nlab, row_nlab
        )
        lab_pad = np.zeros((num_sources, num_labels), dtype=np.int64)
        lab_pad[lab_rows, pos] = lab_cols
        # Same label count on every row (always true for one cardinality
        # wave of the PowCov build) lets the (pair, label) expansion be a
        # broadcast instead of a ragged repeat/cumsum cascade.
        uniform = int(row_nlab.min(initial=0)) == int(row_nlab.max(initial=0))
    level = 0
    while frontier_vertices.size:
        level += 1
        if max_level is not None and level > max_level:
            break
        if per_source:
            # Expand (pair, allowed-label) groups, then their arcs.
            if uniform:
                nlab = int(row_nlab[0]) if row_nlab.size else 0
                if nlab == 0:
                    break
                key = frontier_vertices.astype(np.int64)[:, None] * num_labels
                key += lab_pad[frontier_rows, :nlab]
                key = key.ravel()
                pair_rows = np.broadcast_to(
                    frontier_rows[:, None], (frontier_rows.size, nlab)
                ).ravel()
            else:
                counts_lab = row_nlab[frontier_rows]
                total_lab = int(counts_lab.sum())
                if total_lab == 0:
                    break
                ends_lab = np.cumsum(counts_lab)
                off_lab = np.arange(total_lab, dtype=np.int64) - np.repeat(
                    ends_lab - counts_lab, counts_lab
                )
                pair_rows = np.repeat(frontier_rows, counts_lab)
                labs = lab_pad[pair_rows, off_lab]
                key = np.repeat(frontier_vertices, counts_lab).astype(np.int64)
                key *= num_labels
                key += labs
            starts = group_indptr[key]
            counts = group_indptr[key + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            ends = np.cumsum(counts)
            offsets = np.arange(total, dtype=group_indptr.dtype) - np.repeat(
                ends - counts, counts
            )
            arc_idx = np.repeat(starts, counts) + offsets
            arc_rows = np.repeat(pair_rows, counts)
            targets = grouped_neighbors[arc_idx]
        else:
            starts = indptr[frontier_vertices]
            counts = indptr[frontier_vertices + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # One combined CSR gather for every (row, vertex) frontier pair.
            ends = np.cumsum(counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                ends - counts, counts
            )
            arc_idx = np.repeat(starts, counts) + offsets
            arc_rows = np.repeat(frontier_rows, counts)
            ok = allowed[edge_labels[arc_idx]]
            arc_rows = arc_rows[ok]
            targets = neighbors[arc_idx[ok]]
        if targets.size == 0:
            break
        # One flat (row, vertex) address shared by the freshness gather,
        # the distance scatter, and the dedup claim scatter/gather.
        glob = arc_rows if identity else row_ids[arc_rows]
        flat = glob * idx(n) + targets
        fresh = dist_flat[flat] == UNREACHABLE
        arc_rows = arc_rows[fresh]
        targets = targets[fresh]
        if targets.size == 0:
            break
        flat = flat[fresh]
        # Duplicate (row, target) scatters all write the same level.
        dist_flat[flat] = level
        if stamp_base + targets.size > stamp_stop:
            claim.fill(-1)
            stamp_base = 0
        stamps = np.arange(stamp_base, stamp_base + targets.size, dtype=idx)
        stamp_base += int(targets.size)
        claim[flat] = stamps
        winner = claim[flat] == stamps
        arc_rows = arc_rows[winner]
        targets = targets[winner]
        # Active-row compaction: ``arc_rows`` is sorted (``frontier_rows``
        # is sorted and ``np.repeat``/boolean filters preserve order), so
        # its first occurrences are the rows still alive.  Dead rows are
        # dropped from the per-source table before the next level's
        # gathers.
        live = arc_rows[np.flatnonzero(np.diff(arc_rows, prepend=-1))]
        if live.size < row_ids.size:
            row_ids = row_ids[live]
            identity = False
            if per_source:
                row_nlab = row_nlab[live]
                lab_pad = lab_pad[live]
            # Guarded narrowing: searchsorted returns positions < live.size
            # <= num_sources, which fits ``idx`` by the 2**31 guard above.
            arc_rows = np.searchsorted(live, arc_rows).astype(  # noqa: REPRO009
                idx, copy=False
            )
        frontier_rows = arc_rows
        frontier_vertices = targets
    return dist


def exact_workload_distances(
    graph: EdgeLabeledGraph,
    queries: "Sequence[tuple[int, int, int]]",
    batch_size: int = 64,
) -> np.ndarray:
    """Exact ``d_C(s, t)`` for many ``(s, t, mask)`` triples, batched.

    Groups the queries by constraint mask, deduplicates sources within a
    group, and runs :func:`batched_constrained_bfs` over ``batch_size``
    sources at a time — the eval runner's workload ground-truth pass this
    way amortizes the CSR gathers that a per-query bidirectional BFS would
    repeat from scratch.  Returns a ``float64`` array parallel to
    ``queries`` with ``inf`` for unreachable pairs.
    """
    out = np.full(len(queries), np.inf, dtype=np.float64)
    by_mask: dict[int, list[int]] = {}
    for position, (_s, _t, query_mask) in enumerate(queries):
        by_mask.setdefault(int(query_mask), []).append(position)
    for query_mask, positions in by_mask.items():
        unique_sources = sorted({int(queries[p][0]) for p in positions})
        row_of = {s: i for i, s in enumerate(unique_sources)}
        for lo in range(0, len(unique_sources), max(1, batch_size)):
            chunk = unique_sources[lo : lo + max(1, batch_size)]
            dist = batched_constrained_bfs(graph, chunk, mask=query_mask)
            for p in positions:
                s, t, _m = queries[p]
                row = row_of[int(s)] - lo
                if 0 <= row < len(chunk):
                    value = int(dist[row, int(t)])
                    if value != UNREACHABLE:
                        out[p] = float(value)
    return out
