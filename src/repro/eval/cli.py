"""Command-line entry point for the full experiment reproduction.

Usage::

    python -m repro.eval.cli table1
    python -m repro.eval.cli table2 --scale 0.5 --k 10
    python -m repro.eval.cli table3
    python -m repro.eval.cli table3 --workers 4
    python -m repro.eval.cli table4 --ks 10,20,30,40,50 --pairs 250
    python -m repro.eval.cli fig6    --ks 10,20,30,40
    python -m repro.eval.cli scaling --ks 20
    python -m repro.eval.cli profile
    python -m repro.eval.cli temporal --updates 20 --windows 6
    python -m repro.eval.cli all     --out results.txt --csv-dir results/

Every command prints the regenerated table/figure (optionally teeing into
``--out`` and exporting machine-readable CSVs into ``--csv-dir``).
Defaults are sized so that ``all`` completes in tens of minutes on a
laptop; pass a larger ``--scale`` to push toward the paper's dataset
sizes.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .export import write_csv
from .figures import figure6, render_figure6
from .report import (
    check_figure6,
    check_table2,
    check_table3,
    check_table4,
    render_report,
)
from .scaling import render_scaling, scaling_sweep
from .tables import (
    render_rows,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1,
    table2,
    table3,
    table4,
)

__all__ = ["main"]


def _parse_ks(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.eval.cli",
        description="Reproduce the tables and figures of "
        "'Distance oracles in edge-labeled graphs' (EDBT 2014).",
    )
    parser.add_argument(
        "what",
        choices=["table1", "table2", "table3", "table4", "fig6",
                 "scaling", "profile", "temporal", "all"],
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (1.0 = default stand-in size)")
    parser.add_argument("--pairs", type=int, default=250,
                        help="connected vertex pairs per workload")
    parser.add_argument("--k", type=int, default=10,
                        help="landmarks for the size/time tables")
    parser.add_argument("--ks", type=_parse_ks, default=(10, 20, 30, 40, 50),
                        help="comma-separated landmark counts for table4/fig6")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for index construction "
                        "(1 = serial, 0 = all cores); output is identical "
                        "for every worker count")
    parser.add_argument("--build-kernel", choices=["scalar", "wave"],
                        default="scalar",
                        help="PowCov per-landmark build kernel: 'scalar' "
                        "runs one constrained BFS per candidate mask, "
                        "'wave' answers whole cardinality waves with the "
                        "batched multi-mask BFS; the built index is "
                        "bit-identical either way, only build time and "
                        "memory differ")
    parser.add_argument("--kernel", choices=["numpy", "numba", "cext", "auto"],
                        default=None,
                        help="compiled-kernel backend for the hot loops "
                        "(MS-BFS sweeps, Theorem 2 pass, auxiliary "
                        "Dijkstra): 'numba' or 'cext' need the optional "
                        "native toolchain and fall back to numpy with a "
                        "single warning when unavailable; 'auto' (the "
                        "default) probes numba then cext silently; all "
                        "backends produce bit-identical results")
    parser.add_argument("--engine", action="store_true",
                        help="answer queries through the batch engine "
                        "(vectorized, cached QuerySession); answers are "
                        "bit-identical to the scalar path, only timings "
                        "and the engine-counter summary change")
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="engine answer-cache entries per session "
                        "(0 disables answer caching; only meaningful "
                        "with --engine)")
    parser.add_argument("--save-index", metavar="DIR", default=None,
                        help="persist every index built during the run into "
                        "DIR (fingerprint-addressed files) and reuse any "
                        "already present, instead of rebuilding from "
                        "scratch on every invocation")
    parser.add_argument("--load-index", metavar="DIR", default=None,
                        help="like --save-index but read-only: reuse cached "
                        "indexes from DIR without ever writing to it")
    parser.add_argument("--index-format", choices=["mmap", "npz"],
                        default="mmap",
                        help="on-disk index format for --save-index: 'mmap' "
                        "is the zero-copy store format (lazy, page-cache-"
                        "shared cold start), 'npz' the eager archive; "
                        "loading autodetects either")
    parser.add_argument("--index-compress", action="store_true",
                        help="with --save-index and the mmap format: varint/"
                        "delta-compress the integer index sections (smaller "
                        "files, eager decode on open)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="before running the command, build small "
                        "instances of both indexes and run the invariant "
                        "auditors (repro.analysis.audit) against them; "
                        "exits non-zero on any violation")
    parser.add_argument("--audit", action="store_true",
                        help="with --engine: audit every oracle a session "
                        "wraps before serving queries (slow; debug only)")
    parser.add_argument("--trace", action="store_true",
                        help="record structured spans (build waves, engine "
                        "batches, table rows) and print the rendered span "
                        "tree after the run")
    parser.add_argument("--trace-out", type=str, default=None,
                        help="write the recorded spans as JSONL to this "
                        "file (implies --trace)")
    parser.add_argument("--metrics-out", type=str, default=None,
                        help="enable the optional hot-path metrics (wave "
                        "widths, pruning counts, per-oracle query-latency "
                        "histograms) and write the registry snapshot as "
                        "JSON to this file")
    parser.add_argument("--profile", action="store_true",
                        help="profile each build/query phase with cProfile "
                        "+ tracemalloc, writing profile-<phase>.pstats/.txt "
                        "artifacts next to the results (--csv-dir if set, "
                        "else the working directory)")
    parser.add_argument("--updates", type=int, default=20,
                        help="edge mutations interleaved into the temporal "
                        "command's mixed query/update stream (each absorbed "
                        "by incremental index repair, never a rebuild)")
    parser.add_argument("--windows", type=int, default=6,
                        help="time windows for the temporal command's "
                        "snapshot sweep (edges get synthetic validity "
                        "intervals; one oracle is repaired forward across "
                        "the sequence)")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the output to this file")
    parser.add_argument("--csv-dir", type=str, default=None,
                        help="export machine-readable CSVs into this directory")
    args = parser.parse_args(argv)

    if args.workers < 0:
        parser.error("argument --workers: must be >= 0")
    tracing = args.trace or args.trace_out is not None
    if tracing:
        from ..obs.trace import reset_trace, set_tracing

        set_tracing(True)
        reset_trace()
    if args.metrics_out is not None:
        from ..obs.metrics import set_metrics

        set_metrics(True)
    if args.profile:
        from ..obs.profiling import set_profiling

        set_profiling(True, directory=args.csv_dir or ".")
    if args.workers != 1:
        from ..perf.parallel import ParallelConfig, set_default_parallel

        set_default_parallel(ParallelConfig(num_workers=args.workers))
    if args.build_kernel == "wave":
        from ..core.powcov import set_default_builder

        set_default_builder("wave")
    if args.kernel is not None:
        from ..kernels import set_default_kernel

        set_default_kernel(args.kernel)
    if args.save_index and args.load_index:
        parser.error("--save-index and --load-index are mutually exclusive; "
                     "--save-index already reuses cached indexes")
    if args.save_index or args.load_index:
        from ..store.cache import IndexStore, set_default_index_store

        set_default_index_store(IndexStore(
            args.save_index or args.load_index,
            format=args.index_format,
            compress=args.index_compress,
            writable=args.save_index is not None,
        ))
    if args.cache_size < 0:
        parser.error("argument --cache-size: must be >= 0")
    if args.audit and not args.engine:
        parser.error("argument --audit: requires --engine")
    if args.engine:
        from ..engine import EngineConfig, reset_global, set_default_engine

        set_default_engine(
            EngineConfig(enabled=True, cache_size=args.cache_size,
                         audit=args.audit, kernel=args.kernel)
        )
        reset_global()
    if args.selfcheck:
        from ..analysis.audit import format_report, run_selfcheck

        violations = run_selfcheck(scale=min(args.scale, 0.5), seed=args.seed)
        if violations:
            print(format_report(violations), file=sys.stderr)
            return 1
        print("[repro.eval.cli] selfcheck passed: graph substrate and both "
              "index builders uphold their invariants")

    sections: list[str] = []

    def emit(text: str) -> None:
        print(text)
        print()
        sections.append(text)

    def export(name: str, rows) -> None:
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            write_csv(rows, os.path.join(args.csv_dir, f"{name}.csv"))

    started = time.perf_counter()
    claims = []
    if args.what in ("table1", "all"):
        rows = table1(scale=args.scale, num_pairs=args.pairs, seed=args.seed)
        emit(render_table1(rows))
        export("table1", rows)
    if args.what in ("table2", "all"):
        rows = table2(scale=args.scale, k=args.k, seed=args.seed)
        emit(render_table2(rows))
        export("table2", rows)
        claims.extend(check_table2(rows))
    if args.what in ("table3", "all"):
        rows = table3(scale=args.scale, k=max(3, args.k // 2), seed=args.seed)
        emit(render_table3(rows))
        export("table3", rows)
        claims.extend(check_table3(rows))
    if args.what in ("table4", "all"):
        cells = table4(scale=args.scale, ks=args.ks, num_pairs=args.pairs,
                       seed=args.seed)
        emit(render_table4(cells))
        export("table4", cells)
        claims.extend(check_table4(cells))
    if args.what in ("fig6", "all"):
        panels = figure6(scale=min(args.scale, 0.4), ks=args.ks[:4],
                         num_pairs=args.pairs // 2 + 50, seed=args.seed)
        emit(render_figure6(panels))
        export("figure6", panels)
        claims.extend(check_figure6(panels))
    if claims:
        emit("Paper-claim verification\n" + render_report(claims))
    if args.what in ("scaling", "all"):
        points = scaling_sweep(scales=(0.25, 0.5, min(1.0, args.scale * 2)),
                               k=args.ks[0] if args.ks else 20,
                               num_pairs=max(60, args.pairs // 3),
                               seed=args.seed)
        emit(render_scaling(points))
        export("scaling", points)
    if args.what == "temporal":
        from .temporal import render_temporal_report, temporal_report

        if args.updates < 1:
            parser.error("argument --updates: must be >= 1")
        if args.windows < 2:
            parser.error("argument --windows: must be >= 2")
        rows = temporal_report(
            scale=min(args.scale, 0.5), num_windows=args.windows,
            num_updates=args.updates, k=max(3, args.k // 2),
            num_queries=max(100, args.pairs), seed=args.seed,
        )
        emit(render_temporal_report(rows))
        export("temporal", rows)
    if args.what == "profile":
        from ..graph.datasets import dataset_names, load_dataset
        from ..graph.stats import graph_profile

        headers = ["dataset", "n", "m", "|L|", "dominant label share",
                   "label entropy", "mean per-label giant", "degree gini"]
        body = []
        for name in dataset_names():
            graph, _spec = load_dataset(name, scale=args.scale, seed=args.seed)
            profile = graph_profile(graph)
            body.append([
                name, str(profile.num_vertices), str(profile.num_edges),
                str(profile.num_labels),
                f"{profile.dominant_label_share:.2f}",
                f"{profile.label_entropy_bits:.2f}",
                f"{profile.mean_giant_fraction:.2f}",
                f"{profile.degree_gini:.2f}",
            ])
        emit("Dataset structural profiles\n" + render_rows(headers, body))
    if args.engine:
        from ..engine import format_stats, global_snapshot

        stats = global_snapshot()
        emit(format_stats(stats, title="engine stats (all sessions)"))
    if tracing:
        from ..obs.trace import render_trace, write_jsonl

        emit(render_trace(title=f"trace ({args.what})"))
        if args.trace_out:
            write_jsonl(args.trace_out)
            print(f"[repro.eval.cli] trace JSONL written to {args.trace_out}")
    if args.metrics_out is not None:
        from ..obs.metrics import registry

        emit(registry().render(title="metrics"))
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry().to_json() + "\n")
        print(f"[repro.eval.cli] metrics snapshot written to {args.metrics_out}")
    elapsed = time.perf_counter() - started
    footer = f"[repro.eval.cli] completed {args.what} in {elapsed:.1f}s"
    print(footer)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n" + footer + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
