"""Evaluation metrics for LC-PPSPD oracles — the Table 4 measures.

For every (index, workload) pair the paper reports:

* average **absolute error** and **relative error** of the estimates with
  respect to the exact distances (over queries answered with a finite
  estimate — an infinite estimate has no meaningful error);
* fraction of **exact answers**;
* fraction of **false negatives** — finite true distance but the index
  says ``∞`` (the converse, a false positive, is impossible by
  construction and is asserted here);
* **speed-up factor** over the fastest exact baseline.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..core.types import DistanceOracle
from ..workloads.queries import Workload

__all__ = ["OracleMetrics", "evaluate_oracle", "time_oracle"]


@dataclass(frozen=True)
class OracleMetrics:
    """Aggregated query-quality and query-time measurements."""

    num_queries: int
    absolute_error: float
    relative_error: float
    exact_fraction: float
    false_negative_fraction: float
    mean_query_seconds: float

    @property
    def exact_percent(self) -> float:
        return 100.0 * self.exact_fraction

    @property
    def false_negative_percent(self) -> float:
        return 100.0 * self.false_negative_fraction


def evaluate_oracle(
    oracle: DistanceOracle, workload: Workload, time_queries: bool = True
) -> OracleMetrics:
    """Run every workload query through ``oracle`` and aggregate.

    Workload queries all have finite ground truth (the paper's setup), so a
    non-finite estimate counts as a false negative.  Raises
    ``AssertionError`` on any estimate *below* the exact distance — every
    oracle in this package returns upper bounds, so that would be a bug,
    not a measurement.
    """
    if len(workload) == 0:
        raise ValueError("workload is empty")
    abs_errors: list[float] = []
    rel_errors: list[float] = []
    exact_hits = 0
    false_negatives = 0
    started = time.perf_counter()
    for query in workload:
        estimate = oracle.query(query.source, query.target, query.label_mask)
        if math.isinf(estimate):
            false_negatives += 1
            continue
        error = estimate - query.exact
        if error < 0:
            raise AssertionError(
                f"oracle {oracle.name} returned {estimate} < exact "
                f"{query.exact} for query {query}"
            )
        abs_errors.append(error)
        rel_errors.append(error / query.exact if query.exact > 0 else 0.0)
        if error == 0:
            exact_hits += 1
    elapsed = time.perf_counter() - started

    finite = len(abs_errors)
    return OracleMetrics(
        num_queries=len(workload),
        absolute_error=sum(abs_errors) / finite if finite else math.inf,
        relative_error=sum(rel_errors) / finite if finite else math.inf,
        exact_fraction=exact_hits / len(workload),
        false_negative_fraction=false_negatives / len(workload),
        mean_query_seconds=(elapsed / len(workload)) if time_queries else 0.0,
    )


def time_oracle(
    oracle: DistanceOracle, workload: Workload, limit: int | None = None
) -> float:
    """Mean seconds per query over (a prefix of) the workload."""
    queries = workload.queries[:limit] if limit else workload.queries
    if not queries:
        raise ValueError("no queries to time")
    started = time.perf_counter()
    for query in queries:
        oracle.query(query.source, query.target, query.label_mask)
    return (time.perf_counter() - started) / len(queries)
