"""Evaluation metrics for LC-PPSPD oracles — the Table 4 measures.

For every (index, workload) pair the paper reports:

* average **absolute error** and **relative error** of the estimates with
  respect to the exact distances (over queries answered with a finite
  estimate — an infinite estimate has no meaningful error);
* fraction of **exact answers**;
* fraction of **false negatives** — finite true distance but the index
  says ``∞`` (the converse, a false positive, is impossible by
  construction and is asserted here);
* **speed-up factor** over the fastest exact baseline.

Accuracy bookkeeping and timing are separate passes: the accounting loop
carries error/exactness bookkeeping whose overhead would pollute a timing
measured around it, so ``mean_query_seconds`` comes from a dedicated
bookkeeping-free pass (skipped entirely when ``time_queries=False``).

Both passes can run through the batch engine (``engine=True`` or the
process-wide default installed by the CLI's ``--engine`` flag); engine
answers are bit-identical to the scalar path, so only the timing — and
the engine-counter aggregate reported by the CLI — changes.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.types import DistanceOracle
from ..engine import EngineConfig, QuerySession, resolve_engine
from ..obs.trace import span
from ..workloads.queries import LabeledQuery, Workload

__all__ = ["OracleMetrics", "evaluate_oracle", "time_oracle"]


@dataclass(frozen=True)
class OracleMetrics:
    """Aggregated query-quality and query-time measurements."""

    num_queries: int
    absolute_error: float
    relative_error: float
    exact_fraction: float
    false_negative_fraction: float
    mean_query_seconds: float

    @property
    def exact_percent(self) -> float:
        return 100.0 * self.exact_fraction

    @property
    def false_negative_percent(self) -> float:
        return 100.0 * self.false_negative_fraction


def _answer_workload(
    oracle: DistanceOracle, queries: Sequence[LabeledQuery], config: EngineConfig
) -> list[float]:
    """One estimate per query, scalar or batched per ``config``."""
    if not config.enabled:
        return [oracle.query(q.source, q.target, q.label_mask) for q in queries]
    session = QuerySession(
        oracle,
        cache_size=config.cache_size,
        plan_cache_size=config.plan_cache_size,
        audit=config.audit,
        kernel=config.kernel,
    )
    estimates = session.run([(q.source, q.target, q.label_mask) for q in queries])
    session.publish_stats()
    return estimates


def evaluate_oracle(
    oracle: DistanceOracle,
    workload: Workload,
    time_queries: bool = True,
    engine: "EngineConfig | bool | None" = None,
) -> OracleMetrics:
    """Run every workload query through ``oracle`` and aggregate.

    Workload queries all have finite ground truth (the paper's setup), so a
    non-finite estimate counts as a false negative.  Raises
    ``AssertionError`` on any estimate *below* the exact distance — every
    oracle in this package returns upper bounds, so that would be a bug,
    not a measurement.

    ``engine`` selects the execution path: ``None`` picks up the
    process-wide default (see :func:`repro.engine.set_default_engine`),
    a bool forces scalar/batched, an :class:`~repro.engine.EngineConfig`
    gives full control.  ``mean_query_seconds`` is measured in a dedicated
    pass via :func:`time_oracle` when ``time_queries`` is true, so error
    bookkeeping never inflates it; with ``time_queries=False`` no timing
    pass runs and the field is 0.
    """
    if len(workload) == 0:
        raise ValueError("workload is empty")
    config = resolve_engine(engine)
    with span("eval.evaluate_oracle", oracle=oracle.name) as eval_span:
        eval_span.count("queries", len(workload))
        estimates = _answer_workload(oracle, workload.queries, config)

    abs_errors: list[float] = []
    rel_errors: list[float] = []
    exact_hits = 0
    false_negatives = 0
    for query, estimate in zip(workload, estimates):
        if math.isinf(estimate):
            false_negatives += 1
            continue
        error = estimate - query.exact
        if error < 0:
            raise AssertionError(
                f"oracle {oracle.name} returned {estimate} < exact "
                f"{query.exact} for query {query}"
            )
        abs_errors.append(error)
        rel_errors.append(error / query.exact if query.exact > 0 else 0.0)
        if error == 0:
            exact_hits += 1

    mean_seconds = (
        time_oracle(oracle, workload, engine=config) if time_queries else 0.0
    )
    finite = len(abs_errors)
    return OracleMetrics(
        num_queries=len(workload),
        absolute_error=sum(abs_errors) / finite if finite else math.inf,
        relative_error=sum(rel_errors) / finite if finite else math.inf,
        exact_fraction=exact_hits / len(workload),
        false_negative_fraction=false_negatives / len(workload),
        mean_query_seconds=mean_seconds,
    )


def time_oracle(
    oracle: DistanceOracle,
    workload: Workload,
    limit: int | None = None,
    engine: "EngineConfig | bool | None" = None,
) -> float:
    """Mean seconds per query over (a prefix of) the workload.

    A pure timing pass — no bookkeeping inside the measured region.  With
    the engine enabled, the measurement covers a fresh session's batched
    run (cold caches: the steady-state serving cost, not a warm-cache
    replay).
    """
    queries = workload.queries[:limit] if limit else workload.queries
    if not queries:
        raise ValueError("no queries to time")
    config = resolve_engine(engine)
    if config.enabled:
        session = QuerySession(
            oracle,
            cache_size=config.cache_size,
            plan_cache_size=config.plan_cache_size,
            audit=config.audit,
            kernel=config.kernel,
        )
        triples = [(q.source, q.target, q.label_mask) for q in queries]
        started = time.perf_counter()
        session.run(triples)
        elapsed = time.perf_counter() - started
        session.publish_stats()
        return elapsed / len(queries)
    query = oracle.query
    started = time.perf_counter()
    for q in queries:
        query(q.source, q.target, q.label_mask)
    return (time.perf_counter() - started) / len(queries)
