"""Automated verification of the paper's qualitative claims.

A reproduction is only convincing if the *shape* of every result matches
the paper: who wins, what grows with what, where the pathologies sit.
This module encodes each such claim as a programmatic check over the
regenerated tables/figures, and renders the verdicts as a markdown section
(consumed by EXPERIMENTS.md and printable from the CLI).

A failed check does not raise — reproductions on reduced-scale substrates
legitimately wobble at individual data points — but every verdict is
reported so drift is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from .figures import Figure6Series
from .tables import Table2Row, Table3Row, Table4Cell

__all__ = [
    "ClaimCheck",
    "check_table2",
    "check_table3",
    "check_table4",
    "check_figure6",
    "render_report",
]


@dataclass(frozen=True)
class ClaimCheck:
    """Verdict on one qualitative claim."""

    claim_id: str
    description: str
    passed: bool
    detail: str = ""


def _fraction_true(pairs) -> tuple[int, int]:
    outcomes = [bool(p) for p in pairs]
    return sum(outcomes), len(outcomes)


def check_table2(rows: list[Table2Row]) -> list[ClaimCheck]:
    """Claims over index sizes (paper Table 2)."""
    checks = []
    good, total = _fraction_true(r.powcov_avg <= r.naive_avg for r in rows)
    checks.append(
        ClaimCheck(
            "T2.1", "PowCov stores fewer distances per pair than the naive index",
            good == total, f"{good}/{total} rows",
        )
    )
    real = [r for r in rows if not r.dataset.startswith("synthetic")]
    if real:
        good, total = _fraction_true(r.saving_percent >= 50 for r in real)
        checks.append(
            ClaimCheck(
                "T2.2", "real-dataset savings are large (paper: 83.8-94.8%)",
                good == total,
                "; ".join(f"{r.dataset}={r.saving_percent:.0f}%" for r in real),
            )
        )
    synth = sorted(
        (r for r in rows if r.dataset.startswith("synthetic")),
        key=lambda r: r.num_labels,
    )
    if len(synth) >= 2:
        increasing = all(
            a.saving_percent <= b.saving_percent + 2  # small tolerance
            for a, b in zip(synth, synth[1:])
        )
        checks.append(
            ClaimCheck(
                "T2.3", "synthetic savings grow with |L| (paper: 31.9% -> 87%)",
                increasing,
                " -> ".join(f"{r.saving_percent:.0f}%" for r in synth),
            )
        )
        naive_growth = all(
            b.naive_avg >= 1.5 * a.naive_avg for a, b in zip(synth, synth[1:])
        )
        checks.append(
            ClaimCheck(
                "T2.4", "naive per-pair footprint grows ~exponentially with |L|",
                naive_growth,
                " -> ".join(f"{r.naive_avg:.0f}" for r in synth),
            )
        )
    return checks


def check_table3(rows: list[Table3Row]) -> list[ClaimCheck]:
    """Claims over indexing times (paper Table 3)."""
    checks = []
    powcov_rows = [r for r in rows if r.brute_tests > 0]
    good, total = _fraction_true(
        r.chromland_seconds < r.brute_seconds for r in powcov_rows
    )
    checks.append(
        ClaimCheck(
            "T3.1", "ChromLand indexing is much cheaper than PowCov per landmark",
            good == total, f"{good}/{total} rows",
        )
    )
    good, total = _fraction_true(
        r.traverse_tests <= r.brute_tests for r in powcov_rows
    )
    checks.append(
        ClaimCheck(
            "T3.2", "TraversePowerset performs fewer SP-minimality tests "
            "than BruteForce (paper's wall-clock savings, counter form)",
            good == total, f"{good}/{total} rows",
        )
    )
    synth = sorted(
        (r for r in powcov_rows if r.dataset.startswith("synthetic")),
        key=lambda r: r.num_labels,
    )
    if len(synth) >= 2:
        trend = synth[-1].test_reduction_percent >= synth[0].test_reduction_percent
        checks.append(
            ClaimCheck(
                "T3.3", "pruning effectiveness grows with |L| (paper: 31% -> 68%)",
                trend,
                " -> ".join(f"{r.test_reduction_percent:.0f}%" for r in synth),
            )
        )
    return checks


def check_table4(cells: list[Table4Cell]) -> list[ClaimCheck]:
    """Claims over query processing (paper Table 4)."""
    checks = []
    by_key = {(c.dataset, c.index, c.k): c.run for c in cells}
    datasets = sorted({c.dataset for c in cells})
    ks = sorted({c.k for c in cells})

    comparisons = []
    for dataset in datasets:
        for k in ks:
            powcov = by_key.get((dataset, "PowCov", k))
            chroml = by_key.get((dataset, "ChromLand", k))
            if powcov and chroml:
                comparisons.append(
                    powcov.metrics.absolute_error
                    <= chroml.metrics.absolute_error + 1e-9
                )
    good, total = _fraction_true(comparisons)
    checks.append(
        ClaimCheck(
            "T4.1", "PowCov is the more accurate index at every (dataset, k)",
            good == total, f"{good}/{total} cells",
        )
    )

    monotone = []
    for dataset in datasets:
        errors = [
            by_key[(dataset, "PowCov", k)].metrics.absolute_error
            for k in ks if (dataset, "PowCov", k) in by_key
        ]
        monotone.append(all(a >= b - 0.05 for a, b in zip(errors, errors[1:])))
    good, total = _fraction_true(monotone)
    checks.append(
        ClaimCheck(
            "T4.2", "PowCov error falls as landmarks increase",
            good == total, f"{good}/{total} datasets",
        )
    )

    fn_small = [
        by_key[(dataset, "PowCov", ks[-1])].metrics.false_negative_percent <= 2.0
        for dataset in datasets if (dataset, "PowCov", ks[-1]) in by_key
    ]
    good, total = _fraction_true(fn_small)
    checks.append(
        ClaimCheck(
            "T4.3", "PowCov false negatives are rare at k=max "
            "(paper: <=0.33% except String)",
            good >= total - 1, f"{good}/{total} datasets under 2%",
        )
    )

    speedups = [run.speedup >= 1.0 for run in by_key.values()]
    good, total = _fraction_true(speedups)
    checks.append(
        ClaimCheck(
            "T4.4", "both indexes answer faster than the exact baseline",
            good >= int(0.9 * total), f"{good}/{total} runs at >=1x",
        )
    )
    return checks


def check_figure6(panels: list[Figure6Series]) -> list[ClaimCheck]:
    """Claims over landmark selection (paper Figure 6)."""
    checks = []
    for index_name in ("PowCov", "ChromLand"):
        wins_rnd = []
        wins_best = []
        for series in panels:
            if series.index != index_name:
                continue
            for proposed, rnd, best in zip(
                series.proposed, series.b_rnd, series.b_best
            ):
                wins_rnd.append(proposed <= rnd * 1.05)
                wins_best.append(proposed <= best * 1.15)
        good, total = _fraction_true(wins_rnd)
        checks.append(
            ClaimCheck(
                f"F6.{index_name}.rnd",
                f"{index_name}'s proposed selection beats B-Rnd",
                good >= int(0.8 * total), f"{good}/{total} points",
            )
        )
        good, total = _fraction_true(wins_best)
        checks.append(
            ClaimCheck(
                f"F6.{index_name}.best",
                f"{index_name}'s proposed selection matches or beats B-Best",
                good >= int(0.7 * total), f"{good}/{total} points",
            )
        )
    return checks


def render_report(checks: list[ClaimCheck]) -> str:
    """Markdown rendering of the claim verdicts."""
    lines = ["| claim | description | verdict | detail |",
             "|---|---|---|---|"]
    for check in checks:
        verdict = "PASS" if check.passed else "DRIFT"
        lines.append(
            f"| {check.claim_id} | {check.description} | {verdict} | "
            f"{check.detail} |"
        )
    passed = sum(1 for c in checks if c.passed)
    lines.append("")
    lines.append(f"**{passed}/{len(checks)} claims reproduced.**")
    return "\n".join(lines)
