"""Dynamic-graph evaluation: incremental repair vs. rebuild, temporal sweeps.

Not part of the paper's (static) evaluation — this report exercises the
versioned mutation layer the repo grows on top of it.  Two measurements
per dataset stand-in:

* **mixed query/update serving** — a size-skewed query stream with
  single-edge deltas interleaved (:func:`repro.workloads.streams.
  mixed_update_stream`) drained through the batch engine; each delta is
  absorbed by incremental repair (:func:`repro.core.dynamic.repair_index`)
  and the report records how much of the index was reused;
* **time-sliced temporal queries** — edges get synthetic validity
  windows, one oracle is repaired forward across the snapshot sequence
  (:class:`repro.workloads.streams.SnapshotOracleSequence`), and answers
  are spot-checked bit-identical against a from-scratch build on the
  final snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.dynamic import repair_index
from ..core.powcov import PowCovIndex
from ..graph.datasets import load_dataset
from ..graph.labeled_graph import EdgeLabeledGraph
from ..landmarks import select_landmarks
from ..workloads.streams import (
    SnapshotOracleSequence,
    TemporalEdge,
    mixed_update_stream,
    run_stream_throughput,
    run_temporal_queries,
    temporal_query_stream,
)
from .tables import render_rows

__all__ = ["TemporalReportRow", "temporal_report", "render_temporal_report"]

#: Dataset stand-ins exercised by the report (small enough for tier-2 CI).
_REPORT_DATASETS = ("biogrid-sim", "dblp-sim")


@dataclass(frozen=True)
class TemporalReportRow:
    """One dataset's mixed-stream and snapshot-sweep measurements."""

    dataset: str
    num_vertices: int
    num_edges: int
    updates: int
    queries_per_second: float
    update_seconds: float
    rebuild_seconds: float
    answers_migrated: int
    windows: int
    temporal_queries: int
    sweep_seconds: float
    landmarks_clean: int
    landmarks_repaired: int
    landmarks_resweep: int


def _undirected_edges(graph: EdgeLabeledGraph) -> list[tuple[int, int, int]]:
    edges: list[tuple[int, int, int]] = []
    for u in range(graph.num_vertices):
        for neighbor, label in zip(graph.neighbors_of(u), graph.labels_of(u)):
            if u < int(neighbor):
                edges.append((u, int(neighbor), int(label)))
    return edges


def _temporal_edge_set(
    graph: EdgeLabeledGraph, num_windows: int, churn: float, seed: int
) -> list[TemporalEdge]:
    """Assign validity windows: most edges persistent, a churn slice cycling.

    A ``churn`` fraction of edges gets a random sub-interval of the window
    range; the rest span every window, keeping the snapshots connected
    enough to be interesting.
    """
    rng = np.random.default_rng(seed)
    edges: list[TemporalEdge] = []
    for u, v, label in _undirected_edges(graph):
        if rng.random() < churn and num_windows > 1:
            start = int(rng.integers(num_windows))
            end = start + 1 + int(rng.integers(num_windows - start))
            edges.append(TemporalEdge(u, v, label, start, end))
        else:
            edges.append(TemporalEdge(u, v, label, 0, num_windows))
    return edges


def temporal_report(
    scale: float = 0.5,
    num_windows: int = 6,
    num_updates: int = 20,
    k: int = 6,
    num_queries: int = 400,
    seed: int = 7,
) -> list[TemporalReportRow]:
    """One row per dataset: mixed-stream and snapshot-sweep measurements."""
    if num_windows < 2:
        raise ValueError("num_windows must be >= 2")
    if num_updates < 1:
        raise ValueError("num_updates must be >= 1")
    rows: list[TemporalReportRow] = []
    for name in _REPORT_DATASETS:
        graph, _spec = load_dataset(name, scale=scale, seed=seed)
        landmarks = select_landmarks(graph, k, strategy="greedy-mvc", seed=seed)

        # Mixed query/update serving.
        index = PowCovIndex(graph, landmarks).build()
        build_started = time.perf_counter()
        PowCovIndex(graph, landmarks).build()
        rebuild_seconds = time.perf_counter() - build_started
        stream = mixed_update_stream(
            graph, num_queries=num_queries, num_updates=num_updates, seed=seed
        )
        _answers, report = run_stream_throughput(index, stream)

        # Snapshot sweep across the window sequence.
        edges = _temporal_edge_set(graph, num_windows, churn=0.15, seed=seed)
        sequence = SnapshotOracleSequence(
            graph.num_vertices,
            edges,
            graph.num_labels,
            lambda g: PowCovIndex(g, landmarks).build(),
        )
        queries = temporal_query_stream(sequence, num_queries // 4, seed=seed)
        sweep_started = time.perf_counter()
        answers = run_temporal_queries(sequence, queries)
        sweep_seconds = time.perf_counter() - sweep_started
        # Spot-check: the repaired-forward oracle matches a fresh build on
        # the final snapshot it reached.
        final = PowCovIndex(sequence.graph, landmarks).build()
        tail = [q for q in queries if q.window == sequence.window][:25]
        for query in tail:
            expected = final.query(query.source, query.target, query.label_mask)
            got = sequence.query(query.source, query.target, query.label_mask)
            if got != expected:
                raise AssertionError(
                    f"temporal sweep diverged from rebuild on {query}"
                )
        stats = sequence.repair_stats
        rows.append(TemporalReportRow(
            dataset=name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            updates=report.num_updates,
            queries_per_second=round(report.queries_per_second, 1),
            update_seconds=round(report.update_seconds, 4),
            rebuild_seconds=round(rebuild_seconds, 4),
            answers_migrated=report.answers_migrated,
            windows=num_windows,
            temporal_queries=len(answers),
            sweep_seconds=round(sweep_seconds, 4),
            landmarks_clean=stats.landmarks_clean if stats else 0,
            landmarks_repaired=stats.landmarks_repaired if stats else 0,
            landmarks_resweep=stats.landmarks_resweep if stats else 0,
        ))
    return rows


def render_temporal_report(rows: list[TemporalReportRow]) -> str:
    headers = [
        "dataset", "n", "m", "updates", "q/s", "repair s", "rebuild s",
        "migrated", "windows", "clean", "repaired", "resweep",
    ]
    body = [
        [
            row.dataset, str(row.num_vertices), str(row.num_edges),
            str(row.updates), f"{row.queries_per_second:,.0f}",
            f"{row.update_seconds:.3f}", f"{row.rebuild_seconds:.3f}",
            str(row.answers_migrated), str(row.windows),
            str(row.landmarks_clean), str(row.landmarks_repaired),
            str(row.landmarks_resweep),
        ]
        for row in rows
    ]
    return (
        "Dynamic graphs: mixed update streams and temporal snapshot sweeps\n"
        "('repair s' = total incremental-repair time across all updates;\n"
        " 'rebuild s' = one from-scratch index build for comparison;\n"
        " clean/repaired/resweep = landmark-level repair scope over the\n"
        " snapshot sweep)\n"
        + render_rows(headers, body)
    )
