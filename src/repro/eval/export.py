"""Export experiment results to CSV and JSON.

The table/figure functions in :mod:`repro.eval.tables` and
:mod:`repro.eval.figures` return dataclass rows; these helpers serialize
them so downstream analysis (spreadsheets, plotting notebooks) can consume
a reproduction run without re-running anything.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
import os
from collections.abc import Sequence

__all__ = ["rows_to_dicts", "write_csv", "write_json"]


def _jsonable(value):
    """Make a value JSON-serializable (inf/nan become strings)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def rows_to_dicts(rows: Sequence) -> list[dict]:
    """Flatten a sequence of dataclass rows into plain dictionaries.

    Nested dataclasses (e.g. ``Table4Cell.run.metrics``) are flattened with
    dotted keys so the CSV stays two-dimensional.
    """
    dicts = []
    for row in rows:
        if not dataclasses.is_dataclass(row):
            raise TypeError(f"expected a dataclass row, got {type(row)!r}")
        flat: dict = {}

        def flatten(prefix: str, obj) -> None:
            for field in dataclasses.fields(obj):
                value = getattr(obj, field.name)
                key = f"{prefix}{field.name}"
                if dataclasses.is_dataclass(value) and not isinstance(value, type):
                    flatten(key + ".", value)
                elif isinstance(value, (list, tuple)):
                    flat[key] = json.dumps(_jsonable(value))
                else:
                    flat[key] = _jsonable(value)

        flatten("", row)
        dicts.append(flat)
    return dicts


def write_csv(rows: Sequence, path: str | os.PathLike) -> None:
    """Write dataclass rows as a CSV file with a header."""
    dicts = rows_to_dicts(rows)
    if not dicts:
        raise ValueError("nothing to export")
    fieldnames: list[str] = []
    for record in dicts:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(dicts)


def write_json(rows: Sequence, path: str | os.PathLike) -> None:
    """Write dataclass rows as a JSON array."""
    payload = [_jsonable(row) for row in rows]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
