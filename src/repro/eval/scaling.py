"""Speed-up scaling experiment (extends the paper's Table 4 discussion).

The paper observes that index speed-ups *grow with graph size* — three
orders of magnitude on the million-edge BioMine/String versus one-two
orders on the smaller graphs — because exact query cost grows with the
graph while index query cost depends only on ``k`` (and stored entry
counts).  Our stand-ins are 10-200x smaller than the paper's graphs, so
absolute speed-ups are correspondingly smaller; this experiment makes the
*trend* measurable by sweeping the dataset scale factor and reporting the
speed-up curve.

``python -m repro.eval.scaling`` prints the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.datasets import load_dataset
from ..workloads.queries import generate_workload
from .runner import baseline_query_seconds, run_powcov, run_chromland
from .tables import render_rows

__all__ = ["ScalingPoint", "scaling_sweep", "render_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (scale, index) measurement of the speed-up curve."""

    dataset: str
    scale: float
    num_vertices: int
    num_edges: int
    exact_query_seconds: float
    powcov_speedup: float
    chromland_speedup: float
    powcov_rel_error: float
    chromland_rel_error: float


def scaling_sweep(
    dataset: str = "biogrid-sim",
    scales: tuple[float, ...] = (0.25, 0.5, 1.0),
    k: int = 20,
    num_pairs: int = 120,
    seed: int = 7,
    chromland_iterations: int = 200,
) -> list[ScalingPoint]:
    """Measure exact cost and index speed-ups across dataset scales."""
    points = []
    for scale in scales:
        graph, _spec = load_dataset(dataset, scale=scale, seed=seed)
        workload = generate_workload(graph, num_pairs=num_pairs, seed=seed)
        base = baseline_query_seconds(graph, workload, include_ch=False)
        powcov = run_powcov(graph, workload, k, seed=seed, baseline_seconds=base)
        chroml = run_chromland(
            graph, workload, k, iterations=chromland_iterations, seed=seed,
            baseline_seconds=base,
        )
        points.append(
            ScalingPoint(
                dataset=dataset,
                scale=scale,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                exact_query_seconds=base,
                powcov_speedup=powcov.speedup,
                chromland_speedup=chroml.speedup,
                powcov_rel_error=powcov.metrics.relative_error,
                chromland_rel_error=chroml.metrics.relative_error,
            )
        )
    return points


def render_scaling(points: list[ScalingPoint]) -> str:
    headers = ["dataset", "scale", "n", "m", "exact ms/q",
               "PowCov speed-up", "ChromLand speed-up",
               "PowCov rel err", "ChromLand rel err"]
    rows = [
        [p.dataset, f"{p.scale:.2f}", str(p.num_vertices), str(p.num_edges),
         f"{p.exact_query_seconds * 1e3:.2f}",
         f"{p.powcov_speedup:.0f}x", f"{p.chromland_speedup:.0f}x",
         f"{p.powcov_rel_error:.2f}", f"{p.chromland_rel_error:.2f}"]
        for p in points
    ]
    return (
        "Speed-up scaling sweep (speed-ups grow with graph size, as in the "
        "paper)\n" + render_rows(headers, rows)
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render_scaling(scaling_sweep()))
