"""Regeneration of the paper's Figure 6 (landmark-selection comparison).

Figure 6 plots, per dataset and index, the average relative error as a
function of the number of landmarks ``k``, for three selectors:

* the proposed one (GreedyMVC for PowCov, local-search k-median for
  ChromLand);
* **B-Rnd** — uniformly random landmarks (random colors for ChromLand);
* **B-Best** — the best of the smarter baselines (top degree, approximate
  betweenness, vertex-cover restricted variants; majority/random colors
  for ChromLand).

:func:`figure6` computes the three series; :func:`render_figure6` prints
them as aligned text plus a coarse ASCII chart, which is what a terminal
reproduction can offer in place of the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.datasets import dataset_names, load_dataset
from ..workloads.queries import generate_workload
from .runner import baseline_query_seconds, run_chromland, run_powcov

__all__ = ["Figure6Series", "figure6", "render_figure6"]

#: Baseline strategies pooled into B-Best for each index.
POWCOV_BBEST_POOL = ("degree", "betweenness", "vertex-cover-degree")
CHROMLAND_BBEST_POOL = ("degree-majority", "degree-random", "random-majority")


@dataclass
class Figure6Series:
    """Relative-error curves for one (dataset, index) panel."""

    dataset: str
    index: str
    ks: list[int]
    proposed: list[float] = field(default_factory=list)
    b_rnd: list[float] = field(default_factory=list)
    b_best: list[float] = field(default_factory=list)
    b_best_strategy: list[str] = field(default_factory=list)


def figure6(
    scale: float = 0.4,
    ks: tuple[int, ...] = (10, 20, 30, 40),
    num_pairs: int = 150,
    seed: int = 7,
    datasets: tuple[str, ...] | None = None,
    chromland_iterations: int = 4000,
) -> list[Figure6Series]:
    """Compute the Figure 6 panels for every dataset."""
    panels = []
    for name in datasets if datasets is not None else dataset_names():
        graph, _spec = load_dataset(name, scale=scale, seed=seed)
        workload = generate_workload(graph, num_pairs=num_pairs, seed=seed)
        base = baseline_query_seconds(graph, workload, include_ch=False)

        powcov = Figure6Series(dataset=name, index="PowCov", ks=list(ks))
        chroml = Figure6Series(dataset=name, index="ChromLand", ks=list(ks))
        for k in ks:
            run = run_powcov(graph, workload, k, strategy="greedy-mvc",
                             seed=seed, baseline_seconds=base)
            powcov.proposed.append(run.metrics.relative_error)
            run = run_powcov(graph, workload, k, strategy="random",
                             seed=seed, baseline_seconds=base)
            powcov.b_rnd.append(run.metrics.relative_error)
            best_err, best_name = float("inf"), "-"
            for strategy in POWCOV_BBEST_POOL:
                run = run_powcov(graph, workload, k, strategy=strategy,
                                 seed=seed, baseline_seconds=base)
                if run.metrics.relative_error < best_err:
                    best_err = run.metrics.relative_error
                    best_name = strategy
            powcov.b_best.append(best_err)
            powcov.b_best_strategy.append(best_name)

            run = run_chromland(graph, workload, k, selection="local-search",
                                iterations=chromland_iterations, seed=seed,
                                baseline_seconds=base)
            chroml.proposed.append(run.metrics.relative_error)
            run = run_chromland(graph, workload, k, selection="random",
                                seed=seed, baseline_seconds=base)
            chroml.b_rnd.append(run.metrics.relative_error)
            best_err, best_name = float("inf"), "-"
            for strategy in CHROMLAND_BBEST_POOL:
                run = run_chromland(graph, workload, k, selection=strategy,
                                    seed=seed, baseline_seconds=base)
                if run.metrics.relative_error < best_err:
                    best_err = run.metrics.relative_error
                    best_name = strategy
            chroml.b_best.append(best_err)
            chroml.b_best_strategy.append(best_name)
        panels.extend([powcov, chroml])
    return panels


def _ascii_chart(series: Figure6Series, width: int = 40) -> str:
    """Coarse horizontal-bar rendering of the three curves."""
    finite = [v for curve in (series.proposed, series.b_rnd, series.b_best)
              for v in curve if v == v and v != float("inf")]
    top = max(finite) if finite else 1.0
    top = top if top > 0 else 1.0
    lines = []
    for k, p, r, b in zip(series.ks, series.proposed, series.b_rnd, series.b_best):
        for label, value in (("ours", p), ("BRnd", r), ("BBst", b)):
            bar = "#" * int(round(width * min(value, top) / top))
            lines.append(f"  k={k:<4d} {label} {value:6.3f} |{bar}")
        lines.append("")
    return "\n".join(lines)


def render_figure6(panels: list[Figure6Series], charts: bool = True) -> str:
    """Text rendering of every Figure 6 panel."""
    blocks = []
    for series in panels:
        header = f"Figure 6 — {series.dataset} / {series.index} (avg relative error)"
        rows = ["  k    proposed   B-Rnd    B-Best   (best baseline)"]
        for i, k in enumerate(series.ks):
            rows.append(
                f"  {k:<4d} {series.proposed[i]:8.3f} {series.b_rnd[i]:8.3f} "
                f"{series.b_best[i]:8.3f}   {series.b_best_strategy[i]}"
            )
        block = header + "\n" + "\n".join(rows)
        if charts:
            block += "\n" + _ascii_chart(series)
        blocks.append(block)
    return "\n\n".join(blocks)
