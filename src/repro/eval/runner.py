"""Experiment orchestration: build an index, evaluate it, time everything.

The harness functions here are consumed by :mod:`repro.eval.tables` /
:mod:`repro.eval.figures` (and the benchmark suite) to regenerate the
paper's Tables 2-4 and Figure 6 rows.  Each function returns plain
dataclasses so callers can render, assert on, or serialize them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..baselines import BidirectionalBFSBaseline, LabelConstrainedCH
from ..core.chromland import ChromLandIndex, local_search_selection, majority_colors, random_selection
from ..core.naive import NaivePowersetIndex
from ..core.powcov import PowCovIndex
from ..engine import EngineConfig
from ..graph.labeled_graph import EdgeLabeledGraph
from ..landmarks import select_landmarks
from ..obs.profiling import profile_phase
from ..obs.trace import span
from ..perf.parallel import ParallelConfig
from ..store.cache import IndexStore, get_default_index_store
from ..workloads.queries import Workload
from .metrics import OracleMetrics, evaluate_oracle, time_oracle

__all__ = [
    "IndexRun",
    "run_powcov",
    "run_chromland",
    "run_naive",
    "baseline_query_seconds",
    "speedup_factor",
]


@dataclass(frozen=True)
class IndexRun:
    """Result of building + evaluating one index configuration."""

    index_name: str
    num_landmarks: int
    build_seconds: float
    metrics: OracleMetrics
    speedup: float
    #: average entries stored per landmark-vertex pair (PowCov/naive only).
    avg_entries_per_pair: float = 0.0

    @property
    def per_landmark_build_seconds(self) -> float:
        return self.build_seconds / max(1, self.num_landmarks)


def baseline_query_seconds(
    graph: EdgeLabeledGraph,
    workload: Workload,
    limit: int = 100,
    include_ch: bool = True,
    ch_degree_limit: int = 16,
    engine: "EngineConfig | bool | None" = None,
) -> float:
    """Per-query seconds of the *fastest* exact baseline (paper's choice).

    Runs bidirectional BFS and (optionally) the Rice–Tsotras-style CH over
    a workload prefix and returns the better mean.  On every non-road graph
    in this reproduction bidirectional BFS wins, mirroring the paper.

    ``engine`` matches :func:`evaluate_oracle`'s parameter: with the batch
    engine on, the baselines are timed through their (trivial, scalar-loop)
    engine adapters so speed-up factors compare like with like.
    """
    bidi = time_oracle(
        BidirectionalBFSBaseline(graph), workload, limit=limit, engine=engine
    )
    if not include_ch:
        return bidi
    try:
        ch = LabelConstrainedCH(graph, degree_limit=ch_degree_limit).build()
        ch_time = time_oracle(ch, workload, limit=min(limit, 30), engine=engine)
    except Exception:  # CH build can be impractical on dense graphs
        return bidi
    return min(bidi, ch_time)


def speedup_factor(baseline_seconds: float, metrics: OracleMetrics) -> float:
    """Speed-up of the index over the exact baseline (Table 4, last row)."""
    if metrics.mean_query_seconds <= 0:
        return float("inf")
    return baseline_seconds / metrics.mean_query_seconds


def run_powcov(
    graph: EdgeLabeledGraph,
    workload: Workload,
    k: int,
    strategy: str = "greedy-mvc",
    seed: int | None = 0,
    baseline_seconds: float | None = None,
    builder: str | None = None,
    storage: str = "flat",
    parallel: "ParallelConfig | int | None" = None,
    engine: "EngineConfig | bool | None" = None,
    index_store: "IndexStore | None" = None,
) -> IndexRun:
    """Build a PowCov index with ``k`` landmarks and evaluate it.

    ``parallel`` is forwarded to :meth:`PowCovIndex.build`; ``None`` picks
    up the process-wide default (the CLI's ``--workers`` flag), keeping the
    built index bit-for-bit identical either way.  ``builder=None``
    likewise defers to the process-wide default build kernel (the CLI's
    ``--build-kernel`` flag).  ``engine`` selects the
    query-execution path (scalar vs. batched, see
    :func:`repro.eval.metrics.evaluate_oracle`); answers are identical,
    only timing and engine counters change.

    ``index_store`` (defaulting to the process-wide store installed by the
    CLI's ``--save-index`` / ``--load-index`` flags) short-circuits the
    build: a cached index for this exact (graph, k, strategy, seed) is
    loaded instead of rebuilt — ``build_seconds`` then measures the load —
    and a freshly built index is persisted back.  Loaded indexes answer
    queries bit-identically to freshly built ones, so the evaluated
    metrics are unchanged; a store-format load serves through the mapped
    (zero-copy) query path, whose layout the loader picks, superseding
    ``storage``.
    """
    store = index_store if index_store is not None else get_default_index_store()
    tag = f"k{k}-{strategy}-s{seed}"
    started = time.perf_counter()
    index = store.load("powcov", graph, tag=tag) if store is not None else None
    if index is None:
        landmarks = select_landmarks(graph, k, strategy=strategy, seed=seed)
        with span("eval.powcov_build", k=k, strategy=strategy), profile_phase(
            f"powcov-build-k{k}"
        ):
            index = PowCovIndex(
                graph, landmarks, builder=builder, storage=storage
            ).build(parallel=parallel)
        if store is not None:
            store.save(index, tag=tag)
    build_seconds = time.perf_counter() - started
    with profile_phase(f"powcov-query-k{k}"):
        metrics = evaluate_oracle(index, workload, engine=engine)
    if baseline_seconds is None:
        baseline_seconds = baseline_query_seconds(graph, workload, engine=engine)
    return IndexRun(
        index_name=f"powcov[{strategy}]",
        num_landmarks=k,
        build_seconds=build_seconds,
        metrics=metrics,
        speedup=speedup_factor(baseline_seconds, metrics),
        avg_entries_per_pair=index.average_entries_per_pair(),
    )


def run_chromland(
    graph: EdgeLabeledGraph,
    workload: Workload,
    k: int,
    selection: str = "local-search",
    iterations: int = 2000,
    seed: int | None = 0,
    baseline_seconds: float | None = None,
    query_mode: str = "auxiliary",
    parallel: "ParallelConfig | int | None" = None,
    engine: "EngineConfig | bool | None" = None,
    index_store: "IndexStore | None" = None,
) -> IndexRun:
    """Build a ChromLand index with ``k`` landmarks and evaluate it.

    ``selection`` is one of:

    * ``"local-search"`` — the paper's k-median local search (Section 4.3);
    * ``"random"`` — random landmarks with random colors (B-Rnd);
    * ``"random-majority"`` — random landmarks, majority-incident colors;
    * ``"degree-majority"`` / ``"degree-random"`` — top-degree landmarks
      with majority / random colors (B-Best candidates of Section 5.3).

    ``index_store`` behaves as in :func:`run_powcov`: a cached index for
    this exact configuration is loaded instead of re-selected and rebuilt,
    and fresh builds are persisted back.
    """
    import numpy as np

    store = index_store if index_store is not None else get_default_index_store()
    tag = f"k{k}-{selection}-i{iterations}-s{seed}-{query_mode}"
    started = time.perf_counter()
    cached = store.load("chromland", graph, tag=tag) if store is not None else None
    if cached is not None:
        build_seconds = time.perf_counter() - started
        with profile_phase(f"chromland-query-k{k}"):
            metrics = evaluate_oracle(cached, workload, engine=engine)
        if baseline_seconds is None:
            baseline_seconds = baseline_query_seconds(graph, workload, engine=engine)
        return IndexRun(
            index_name=f"chromland[{selection}]",
            num_landmarks=k,
            build_seconds=build_seconds,
            metrics=metrics,
            speedup=speedup_factor(baseline_seconds, metrics),
        )
    if selection == "local-search":
        result = local_search_selection(graph, k, iterations=iterations, seed=seed)
        landmarks, colors = result.landmarks, result.colors
    elif selection == "random":
        result = random_selection(graph, k, seed=seed, color_mode="random")
        landmarks, colors = result.landmarks, result.colors
    elif selection == "random-majority":
        result = random_selection(graph, k, seed=seed, color_mode="majority")
        landmarks, colors = result.landmarks, result.colors
    elif selection in ("degree-majority", "degree-random"):
        landmarks = select_landmarks(graph, k, strategy="degree", seed=seed)
        if selection == "degree-majority":
            colors = majority_colors(graph, landmarks)
        else:
            rng = np.random.default_rng(seed)
            colors = [int(c) for c in rng.integers(0, graph.num_labels, size=k)]
    else:
        raise ValueError(f"unknown ChromLand selection {selection!r}")
    with span("eval.chromland_build", k=k, selection=selection), profile_phase(
        f"chromland-build-k{k}"
    ):
        index = ChromLandIndex(graph, landmarks, colors, query_mode=query_mode).build(
            parallel=parallel
        )
    if store is not None:
        store.save(index, tag=tag)
    build_seconds = time.perf_counter() - started
    with profile_phase(f"chromland-query-k{k}"):
        metrics = evaluate_oracle(index, workload, engine=engine)
    if baseline_seconds is None:
        baseline_seconds = baseline_query_seconds(graph, workload, engine=engine)
    return IndexRun(
        index_name=f"chromland[{selection}]",
        num_landmarks=k,
        build_seconds=build_seconds,
        metrics=metrics,
        speedup=speedup_factor(baseline_seconds, metrics),
    )


def run_naive(
    graph: EdgeLabeledGraph,
    workload: Workload,
    k: int,
    strategy: str = "greedy-mvc",
    seed: int | None = 0,
    baseline_seconds: float | None = None,
    engine: "EngineConfig | bool | None" = None,
) -> IndexRun:
    """Build the naive powerset index (Table 2's straw man) and evaluate."""
    landmarks = select_landmarks(graph, k, strategy=strategy, seed=seed)
    started = time.perf_counter()
    with span("eval.naive_build", k=k):
        index = NaivePowersetIndex(graph, landmarks).build()
    build_seconds = time.perf_counter() - started
    metrics = evaluate_oracle(index, workload, engine=engine)
    if baseline_seconds is None:
        baseline_seconds = baseline_query_seconds(graph, workload, engine=engine)
    return IndexRun(
        index_name="naive-powerset",
        num_landmarks=k,
        build_seconds=build_seconds,
        metrics=metrics,
        speedup=speedup_factor(baseline_seconds, metrics),
        avg_entries_per_pair=index.average_entries_per_pair(),
    )
