"""Experiment harness: metrics, runners, and table/figure regeneration."""

from __future__ import annotations

from .metrics import OracleMetrics, evaluate_oracle, time_oracle
from .runner import (
    IndexRun,
    baseline_query_seconds,
    run_chromland,
    run_naive,
    run_powcov,
    speedup_factor,
)
from .tables import table1, table2, table3, table4
from .figures import figure6
from .scaling import render_scaling, scaling_sweep
from .export import write_csv, write_json
from .repetition import RepeatedRun, repeat_index_run
from .report import (
    check_figure6,
    check_table2,
    check_table3,
    check_table4,
    render_report,
)

__all__ = [
    "OracleMetrics",
    "evaluate_oracle",
    "time_oracle",
    "IndexRun",
    "baseline_query_seconds",
    "run_chromland",
    "run_naive",
    "run_powcov",
    "speedup_factor",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure6",
    "render_scaling",
    "scaling_sweep",
    "write_csv",
    "write_json",
    "RepeatedRun",
    "repeat_index_run",
    "check_figure6",
    "check_table2",
    "check_table3",
    "check_table4",
    "render_report",
]
