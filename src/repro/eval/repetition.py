"""Multi-seed repetition of experiments with dispersion statistics.

Single-seed experiment rows hide run-to-run variance (landmark selection,
workload sampling and the synthetic generators are all randomized).  This
module repeats a runner across seeds and reports mean ± standard deviation
for every quality metric, which is what a careful reproduction should
quote when a comparison is close (e.g. the Figure 6 proposed-vs-B-Best
margins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graph.datasets import load_dataset
from ..workloads.queries import generate_workload
from .runner import baseline_query_seconds, run_chromland, run_powcov

__all__ = ["MetricSummary", "RepeatedRun", "repeat_index_run"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean and sample standard deviation of one metric across seeds."""

    mean: float
    std: float
    num_seeds: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.num_seeds})"


def _summarize(values: list[float]) -> MetricSummary:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return MetricSummary(math.inf, 0.0, len(values))
    mean = sum(finite) / len(finite)
    if len(finite) > 1:
        variance = sum((v - mean) ** 2 for v in finite) / (len(finite) - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return MetricSummary(mean, std, len(values))


@dataclass(frozen=True)
class RepeatedRun:
    """Seed-aggregated quality of one (dataset, index, k) configuration."""

    dataset: str
    index: str
    k: int
    absolute_error: MetricSummary
    relative_error: MetricSummary
    exact_percent: MetricSummary
    false_negative_percent: MetricSummary
    speedup: MetricSummary


def repeat_index_run(
    dataset: str,
    index: str,
    k: int,
    seeds: tuple[int, ...] = (1, 2, 3),
    scale: float = 0.25,
    num_pairs: int = 80,
    chromland_iterations: int = 1000,
) -> RepeatedRun:
    """Run one configuration across ``seeds`` and aggregate the metrics.

    Each seed draws its own graph instance, workload and landmark
    selection, so the dispersion covers the full pipeline.
    """
    if index not in ("powcov", "chromland"):
        raise ValueError("index must be 'powcov' or 'chromland'")
    if not seeds:
        raise ValueError("at least one seed is required")
    abs_errors, rel_errors, exacts, fns, speedups = [], [], [], [], []
    for seed in seeds:
        graph, _spec = load_dataset(dataset, scale=scale, seed=seed)
        workload = generate_workload(graph, num_pairs=num_pairs, seed=seed)
        base = baseline_query_seconds(graph, workload, include_ch=False)
        if index == "powcov":
            run = run_powcov(graph, workload, k, seed=seed, baseline_seconds=base)
        else:
            run = run_chromland(
                graph, workload, k, iterations=chromland_iterations,
                seed=seed, baseline_seconds=base,
            )
        abs_errors.append(run.metrics.absolute_error)
        rel_errors.append(run.metrics.relative_error)
        exacts.append(run.metrics.exact_percent)
        fns.append(run.metrics.false_negative_percent)
        speedups.append(run.speedup)
    return RepeatedRun(
        dataset=dataset,
        index=index,
        k=k,
        absolute_error=_summarize(abs_errors),
        relative_error=_summarize(rel_errors),
        exact_percent=_summarize(exacts),
        false_negative_percent=_summarize(fns),
        speedup=_summarize(speedups),
    )
