"""Regeneration of the paper's Tables 1-4.

Every ``tableN`` function computes the corresponding table's rows on the
reproduction's datasets and returns structured results; the matching
``render_tableN`` turns them into the paper's layout as plain text.  The
functions take ``scale`` / ``num_pairs`` knobs so that the benchmark suite
can exercise them quickly while ``python -m repro.eval.cli`` runs the full
reproduction.

Paper reference values are attached where the paper reports them, so the
rendered output doubles as the paper-vs-measured record used by
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.chromland import ChromLandIndex, local_search_selection
from ..core.naive import NaivePowersetIndex
from ..core.powcov import (
    PowCovIndex,
    brute_force_sp_minimal,
    traverse_powerset,
    traverse_powerset_waves,
)
from ..engine import EngineConfig
from ..graph.datasets import dataset_names, load_dataset, paper_synthetic
from ..graph.traversal import estimate_diameter
from ..landmarks import select_landmarks
from ..obs.trace import span
from ..workloads.queries import generate_workload
from .runner import IndexRun, baseline_query_seconds, run_chromland, run_powcov

__all__ = [
    "Table1Row",
    "table1",
    "render_table1",
    "Table2Row",
    "table2",
    "render_table2",
    "Table3Row",
    "table3",
    "render_table3",
    "Table4Cell",
    "table4",
    "render_table4",
    "render_rows",
]


def render_rows(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 1 — dataset characteristics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    dataset: str
    num_vertices: int
    num_edges: int
    num_labels: int
    diameter: int
    num_queries: int
    paper_vertices: int
    paper_edges: int
    paper_diameter: int
    paper_queries: int


def table1(
    scale: float = 1.0, num_pairs: int = 300, seed: int = 7
) -> list[Table1Row]:
    """Characteristics of every dataset stand-in, next to the paper's."""
    rows = []
    for name in dataset_names():
        graph, spec = load_dataset(name, scale=scale, seed=seed)
        workload = generate_workload(graph, num_pairs=num_pairs, seed=seed)
        rows.append(
            Table1Row(
                dataset=name,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                num_labels=graph.num_labels,
                diameter=estimate_diameter(graph, sweeps=3, seed=seed),
                num_queries=len(workload),
                paper_vertices=spec.paper_vertices,
                paper_edges=spec.paper_edges,
                paper_diameter=spec.paper_diameter,
                paper_queries=spec.paper_queries,
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    headers = ["dataset", "n", "m", "|L|", "diam", "#queries",
               "paper n", "paper m", "paper diam", "paper #q"]
    body = [
        [r.dataset, str(r.num_vertices), str(r.num_edges), str(r.num_labels),
         str(r.diameter), str(r.num_queries), str(r.paper_vertices),
         str(r.paper_edges), str(r.paper_diameter), str(r.paper_queries)]
        for r in rows
    ]
    return "Table 1: dataset characteristics\n" + render_rows(headers, body)


# ----------------------------------------------------------------------
# Table 2 — index sizes (PowCov vs naive powerset)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    dataset: str
    num_labels: int
    powcov_avg: float
    naive_avg: float
    paper_powcov: float | None = None
    paper_naive: float | None = None

    @property
    def saving_percent(self) -> float:
        if self.naive_avg == 0:
            return 0.0
        return 100.0 * (1.0 - self.powcov_avg / self.naive_avg)


#: Paper Table 2 values (avg distances per landmark-vertex pair).
_PAPER_TABLE2 = {
    "biogrid-sim": (5.79, 84.24),
    "biomine-sim": (3.88, 74.43),
    "string-sim": (2.01, 34.66),
    "dblp-sim": (8.63, 116.3),
    "youtube-sim": (4.72, 29.21),
    "synthetic-4": (9.12, 13.39),
    "synthetic-5": (14.73, 27.69),
    "synthetic-6": (24.35, 56.59),
    "synthetic-7": (39.09, 115.1),
    "synthetic-8": (60.36, 233.3),
    "synthetic-9": (92.19, 470.68),
    "synthetic-10": (123.7, 950.7),
}


def _size_row(graph, name: str, k: int, seed: int) -> Table2Row:
    landmarks = select_landmarks(graph, k, strategy="greedy-mvc", seed=seed)
    powcov = PowCovIndex(graph, landmarks).build()
    naive = NaivePowersetIndex(graph, landmarks).build()
    paper = _PAPER_TABLE2.get(name, (None, None))
    return Table2Row(
        dataset=name,
        num_labels=graph.num_labels,
        powcov_avg=powcov.average_entries_per_pair(),
        naive_avg=naive.average_entries_per_pair(),
        paper_powcov=paper[0],
        paper_naive=paper[1],
    )


def table2(
    scale: float = 0.5,
    k: int = 10,
    seed: int = 7,
    synthetic_labels: tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10),
    synthetic_vertices: int = 2000,
    synthetic_edges: int = 10_000,
    datasets: tuple[str, ...] | None = None,
) -> list[Table2Row]:
    """Index sizes on the real stand-ins and the synthetic |L| sweep."""
    rows = []
    for name in datasets if datasets is not None else dataset_names():
        graph, _spec = load_dataset(name, scale=scale, seed=seed)
        rows.append(_size_row(graph, name, k, seed))
    for num_labels in synthetic_labels:
        graph = paper_synthetic(
            num_labels, num_vertices=synthetic_vertices,
            num_edges=synthetic_edges, seed=seed,
        )
        rows.append(_size_row(graph, f"synthetic-{num_labels}", k, seed))
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    headers = ["dataset", "|L|", "PowCov", "Naive", "saving%",
               "paper PowCov", "paper Naive"]
    body = [
        [r.dataset, str(r.num_labels), f"{r.powcov_avg:.2f}",
         f"{r.naive_avg:.2f}", f"{r.saving_percent:.1f}",
         "-" if r.paper_powcov is None else f"{r.paper_powcov:.2f}",
         "-" if r.paper_naive is None else f"{r.paper_naive:.2f}"]
        for r in rows
    ]
    return (
        "Table 2: avg stored distances per landmark-vertex pair\n"
        + render_rows(headers, body)
    )


# ----------------------------------------------------------------------
# Table 3 — indexing time per landmark
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    dataset: str
    num_labels: int
    chromland_seconds: float
    traverse_seconds: float
    brute_seconds: float
    traverse_tests: int
    brute_tests: int
    traverse_sssps: int
    brute_sssps: int
    #: Algorithm 2 with Observations 1-3 only — the index default, which
    #: avoids Observation 4's bookkeeping (slower than it saves under numpy).
    traverse_fast_seconds: float = float("nan")
    #: Wave-batched Algorithm 2 (Observations 1-3, whole cardinality waves
    #: answered by one batched multi-mask BFS each) — same entries, faster.
    wave_seconds: float = float("nan")

    @property
    def time_reduction_percent(self) -> float:
        if self.brute_seconds == 0:
            return 0.0
        return 100.0 * (1.0 - self.traverse_seconds / self.brute_seconds)

    @property
    def test_reduction_percent(self) -> float:
        if self.brute_tests == 0:
            return 0.0
        return 100.0 * (1.0 - self.traverse_tests / self.brute_tests)


def _time_row(graph, name: str, k: int, seed: int, iterations: int = 30) -> Table3Row:
    with span("table3.row", dataset=name, k=k):
        return _time_row_inner(graph, name, k, seed, iterations)


def _time_row_inner(
    graph, name: str, k: int, seed: int, iterations: int = 30
) -> Table3Row:
    landmarks = select_landmarks(graph, k, strategy="greedy-mvc", seed=seed)
    # ChromLand per-landmark time: build with k landmarks / local colors.
    selection = local_search_selection(graph, k, iterations=iterations, seed=seed)
    started = time.perf_counter()
    ChromLandIndex(graph, selection.landmarks, selection.colors).build()
    chrom_per_landmark = (time.perf_counter() - started) / k

    traverse_seconds = 0.0
    traverse_fast_seconds = 0.0
    wave_seconds = 0.0
    brute_seconds = 0.0
    traverse_tests = brute_tests = 0
    traverse_sssps = brute_sssps = 0
    for landmark in landmarks:
        started = time.perf_counter()
        tp = traverse_powerset(graph, landmark)
        traverse_seconds += time.perf_counter() - started
        started = time.perf_counter()
        traverse_powerset(graph, landmark, use_obs4=False)
        traverse_fast_seconds += time.perf_counter() - started
        started = time.perf_counter()
        traverse_powerset_waves(graph, landmark, use_obs4=False)
        wave_seconds += time.perf_counter() - started
        started = time.perf_counter()
        bf = brute_force_sp_minimal(graph, landmark)
        brute_seconds += time.perf_counter() - started
        traverse_tests += tp.num_full_tests
        brute_tests += bf.num_full_tests
        traverse_sssps += tp.num_sssp
        brute_sssps += bf.num_sssp
    return Table3Row(
        dataset=name,
        num_labels=graph.num_labels,
        chromland_seconds=chrom_per_landmark,
        traverse_seconds=traverse_seconds / k,
        brute_seconds=brute_seconds / k,
        traverse_tests=traverse_tests // k,
        brute_tests=brute_tests // k,
        traverse_sssps=traverse_sssps // k,
        brute_sssps=brute_sssps // k,
        traverse_fast_seconds=traverse_fast_seconds / k,
        wave_seconds=wave_seconds / k,
    )


def table3(
    scale: float = 0.5,
    k: int = 5,
    seed: int = 7,
    synthetic_labels: tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10),
    chromland_labels: tuple[int, ...] = (20, 30, 40),
    synthetic_vertices: int = 2000,
    synthetic_edges: int = 10_000,
    datasets: tuple[str, ...] | None = None,
) -> list[Table3Row]:
    """Per-landmark indexing time: ChromLand, TraversePowerset, BruteForce.

    ``chromland_labels`` extends the sweep to label counts where PowCov is
    no longer built (the paper goes to 100; ChromLand's cost must stay
    roughly flat, then *decrease*).
    """
    rows = []
    for name in datasets if datasets is not None else dataset_names():
        graph, _spec = load_dataset(name, scale=scale, seed=seed)
        rows.append(_time_row(graph, name, k, seed))
    for num_labels in synthetic_labels:
        graph = paper_synthetic(
            num_labels, num_vertices=synthetic_vertices,
            num_edges=synthetic_edges, seed=seed,
        )
        rows.append(_time_row(graph, f"synthetic-{num_labels}", k, seed))
    for num_labels in chromland_labels:
        graph = paper_synthetic(
            num_labels, num_vertices=synthetic_vertices,
            num_edges=synthetic_edges, seed=seed,
        )
        selection = local_search_selection(graph, k, iterations=20, seed=seed)
        started = time.perf_counter()
        ChromLandIndex(graph, selection.landmarks, selection.colors).build()
        chrom = (time.perf_counter() - started) / k
        rows.append(
            Table3Row(
                dataset=f"synthetic-{num_labels} (ChromLand only)",
                num_labels=num_labels,
                chromland_seconds=chrom,
                traverse_seconds=float("nan"),
                brute_seconds=float("nan"),
                traverse_tests=0,
                brute_tests=0,
                traverse_sssps=0,
                brute_sssps=0,
            )
        )
    return rows


def render_table3(rows: list[Table3Row]) -> str:
    headers = ["dataset", "|L|", "ChromLand s/lm", "Alg2 s/lm",
               "Alg2-fast s/lm", "Wave s/lm", "Brute s/lm", "tests T/B",
               "test red.%", "SSSPs T/B"]
    body = []
    for r in rows:
        powcov_built = r.brute_tests > 0
        body.append([
            r.dataset, str(r.num_labels), f"{r.chromland_seconds:.3f}",
            f"{r.traverse_seconds:.3f}" if powcov_built else "-",
            f"{r.traverse_fast_seconds:.3f}" if powcov_built else "-",
            f"{r.wave_seconds:.3f}" if powcov_built else "-",
            f"{r.brute_seconds:.3f}" if powcov_built else "-",
            f"{r.traverse_tests}/{r.brute_tests}" if powcov_built else "-",
            f"{r.test_reduction_percent:.0f}" if powcov_built else "-",
            f"{r.traverse_sssps}/{r.brute_sssps}" if powcov_built else "-",
        ])
    return (
        "Table 3: per-landmark indexing time (and pruning counters)\n"
        + render_rows(headers, body)
    )


# ----------------------------------------------------------------------
# Table 4 — query-processing quality and speed-up
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table4Cell:
    dataset: str
    index: str
    k: int
    run: IndexRun


def table4(
    scale: float = 0.5,
    ks: tuple[int, ...] = (10, 20, 30, 40, 50),
    num_pairs: int = 250,
    seed: int = 7,
    datasets: tuple[str, ...] | None = None,
    chromland_iterations: int = 4000,
    engine: "EngineConfig | bool | None" = None,
) -> list[Table4Cell]:
    """Full query evaluation of PowCov and ChromLand across ``ks``.

    ``engine`` selects the query-execution path (scalar vs. batched) for
    every index *and* baseline timing; answers — and thus every accuracy
    column — are identical either way.
    """
    cells = []
    for name in datasets if datasets is not None else dataset_names():
        graph, _spec = load_dataset(name, scale=scale, seed=seed)
        workload = generate_workload(graph, num_pairs=num_pairs, seed=seed)
        base = baseline_query_seconds(graph, workload, engine=engine)
        for k in ks:
            with span("table4.row", dataset=name, index="PowCov", k=k):
                powcov = run_powcov(
                    graph, workload, k, seed=seed, baseline_seconds=base,
                    engine=engine,
                )
            cells.append(Table4Cell(name, "PowCov", k, powcov))
            with span("table4.row", dataset=name, index="ChromLand", k=k):
                chroml = run_chromland(
                    graph, workload, k, iterations=chromland_iterations,
                    seed=seed, baseline_seconds=base, engine=engine,
                )
            cells.append(Table4Cell(name, "ChromLand", k, chroml))
    return cells


def render_table4(cells: list[Table4Cell]) -> str:
    headers = ["dataset", "index", "k", "abs err", "rel err", "exact%",
               "falseneg%", "speed-up", "build s"]
    body = [
        [c.dataset, c.index, str(c.k),
         f"{c.run.metrics.absolute_error:.2f}",
         f"{c.run.metrics.relative_error:.2f}",
         f"{c.run.metrics.exact_percent:.1f}",
         f"{c.run.metrics.false_negative_percent:.2f}",
         f"{c.run.speedup:.0f}x",
         f"{c.run.build_seconds:.1f}"]
        for c in cells
    ]
    return (
        "Table 4: query-processing results (vs fastest exact baseline)\n"
        + render_rows(headers, body)
    )
