"""Numba kernel backend: ``@njit(cache=True, nogil=True)`` hot loops.

Importing this module requires the optional ``[native]`` extra
(``pip install .[native]``); the import only ever happens through the
:func:`repro.kernels.resolve_kernel` registry probe, which memoizes a
failure and falls back to numpy with a single structured warning.

The kernels are explicit-loop mirrors of the C backend (and therefore of
the numpy reference): exact integer BFS levels, integer Theorem 2
min/compare, and a Dijkstra replaying numpy's IEEE operation order —
first-minimum selection, the same ``di + w`` addition order, the same
early-exit predicate — so all backends are bit-identical by
construction.  ``cache=True`` persists the compiled machine code across
processes (JIT warm-up is paid once per machine, not once per run);
``nogil=True`` lets thread-parallel builds overlap inside the kernels.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 - optional dependency, probe-gated

__all__ = ["NumbaKernel"]


@njit(cache=True, nogil=True)
def _msbfs_bitset(
    in_indptr: np.ndarray,
    in_neighbors: np.ndarray,
    in_labels: np.ndarray,
    n: int,
    sources: np.ndarray,
    allowed: np.ndarray,
    dist: np.ndarray,
    max_level: int,
) -> None:  # pragma: no cover - exercised only when numba is installed
    num_rows = sources.shape[0]
    if n == 0 or num_rows == 0:
        return
    if in_indptr[n] == 0:
        return  # no arcs: sources stay level 0
    num_labels = allowed.shape[1]
    one = np.uint64(1)
    zero = np.uint64(0)
    frontier = np.zeros(n, dtype=np.uint64)
    nxt = np.zeros(n, dtype=np.uint64)
    visited = np.zeros(n, dtype=np.uint64)
    label_bits = np.zeros(num_labels, dtype=np.uint64)
    for lo in range(0, num_rows, 64):
        chunk = min(64, num_rows - lo)
        for lab in range(num_labels):
            bits = zero
            for b in range(chunk):
                if allowed[lo + b, lab]:
                    bits |= one << np.uint64(b)
            label_bits[lab] = bits
        for v in range(n):
            frontier[v] = zero
        for b in range(chunk):
            frontier[sources[lo + b]] |= one << np.uint64(b)
        for v in range(n):
            visited[v] = frontier[v]
        level = 0
        while True:
            level += 1
            if max_level >= 0 and level > max_level:
                break
            any_new = False
            for v in range(n):
                acc = zero
                for a in range(in_indptr[v], in_indptr[v + 1]):
                    acc |= frontier[in_neighbors[a]] & label_bits[in_labels[a]]
                fresh = acc & ~visited[v]
                nxt[v] = fresh  # every v assigned: no clear needed
                if fresh != zero:
                    any_new = True
                    visited[v] |= fresh
                    bits = fresh
                    b = 0
                    while bits != zero:
                        if bits & one != zero:
                            dist[lo + b, v] = level
                        bits >>= one
                        b += 1
            if not any_new:
                break
            tmp = frontier
            frontier = nxt
            nxt = tmp


@njit(cache=True, nogil=True)
def _msbfs_sparse(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    labels: np.ndarray,
    n: int,
    sources: np.ndarray,
    allowed: np.ndarray,
    dist: np.ndarray,
    max_level: int,
) -> None:  # pragma: no cover - exercised only when numba is installed
    num_rows = sources.shape[0]
    if n == 0 or num_rows == 0:
        return
    queue = np.empty(n, dtype=np.int32)
    for r in range(num_rows):
        head = 0
        tail = 0
        queue[tail] = np.int32(sources[r])
        tail += 1
        # Rows expand independently; a dead frontier simply drains its
        # queue — the compiled analogue of active-row compaction.
        while head < tail:
            u = queue[head]
            head += 1
            d = dist[r, u]
            if max_level >= 0 and d >= max_level:
                continue
            for a in range(indptr[u], indptr[u + 1]):
                if not allowed[r, labels[a]]:
                    continue
                v = neighbors[a]
                if dist[r, v] == -1:  # UNREACHABLE
                    dist[r, v] = d + 1
                    queue[tail] = v
                    tail += 1


@njit(cache=True, nogil=True)
def _one_removed(
    dist: np.ndarray,
    prev_rows: np.ndarray,
    sub_rows: np.ndarray,
    out: np.ndarray,
) -> None:  # pragma: no cover - exercised only when numba is installed
    wave_rows = dist.shape[0]
    n = dist.shape[1]
    size = sub_rows.shape[1]
    best = np.empty(n, dtype=np.int32)
    for i in range(wave_rows):
        first = sub_rows[i, 0]
        for v in range(n):
            best[v] = prev_rows[first, v]
        for j in range(1, size):
            row = sub_rows[i, j]
            for v in range(n):
                if prev_rows[row, v] < best[v]:
                    best[v] = prev_rows[row, v]
        for v in range(n):
            out[i, v] = dist[i, v] < best[v]


@njit(cache=True, nogil=True)
def _aux_dijkstra(
    weights: np.ndarray, ds: np.ndarray, dt: np.ndarray, best: float
) -> float:  # pragma: no cover - exercised only when numba is installed
    k = ds.shape[0]
    dist = ds.copy()
    settled = np.zeros(k, dtype=np.bool_)
    for _ in range(k):
        i = -1
        di = np.inf
        for j in range(k):
            if not settled[j] and dist[j] < di:
                di = dist[j]
                i = j
        if i < 0 or not np.isfinite(di) or di >= best:
            break  # every remaining completion is at least `best`
        settled[i] = True
        for j in range(k):
            nd = di + weights[i, j]
            if nd < dist[j]:
                dist[j] = nd
        completion = di + dt[i]
        if completion < best:
            best = completion
    return best


class NumbaKernel:
    """JIT-compiled implementations of the three hot loops."""

    name = "numba"

    def msbfs_bitset(
        self,
        in_indptr: np.ndarray,
        in_neighbors: np.ndarray,
        in_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> None:
        _msbfs_bitset(
            np.ascontiguousarray(in_indptr, dtype=np.int64),
            np.ascontiguousarray(in_neighbors, dtype=np.int32),
            np.ascontiguousarray(in_labels, dtype=np.int16),
            int(num_vertices),
            np.ascontiguousarray(sources, dtype=np.int64),
            np.ascontiguousarray(allowed),
            dist,
            int(max_level),
        )

    def msbfs_sparse(
        self,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        edge_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> bool:
        _msbfs_sparse(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(neighbors, dtype=np.int32),
            np.ascontiguousarray(edge_labels, dtype=np.int16),
            int(num_vertices),
            np.ascontiguousarray(sources, dtype=np.int64),
            np.ascontiguousarray(allowed),
            dist,
            int(max_level),
        )
        return True

    def one_removed_pass(
        self, dist: np.ndarray, prev_rows: np.ndarray, sub_rows: np.ndarray
    ) -> np.ndarray:
        out = np.empty(dist.shape, dtype=np.bool_)
        _one_removed(
            np.ascontiguousarray(dist, dtype=np.int32),
            np.ascontiguousarray(prev_rows, dtype=np.int32),
            np.ascontiguousarray(sub_rows, dtype=np.int64),
            out,
        )
        return out

    def aux_dijkstra(
        self,
        weights: np.ndarray,
        ds: np.ndarray,
        dt: np.ndarray,
        best: float,
    ) -> float:
        return float(
            _aux_dijkstra(
                np.ascontiguousarray(weights, dtype=np.float64),
                np.ascontiguousarray(ds, dtype=np.float64),
                np.ascontiguousarray(dt, dtype=np.float64),
                float(best),
            )
        )
