"""The pure-numpy kernel backend — always available, bit-identity reference.

These are the loop bodies that previously lived inline in
``repro.perf.batched`` (bit-parallel MS-BFS), ``repro.core.powcov.waves``
(Theorem 2 one-removed sweep) and ``repro.core.chromland.query`` (dense
auxiliary Dijkstra), moved behind the :class:`~repro.kernels.KernelBackend`
protocol verbatim.  The compiled backends are checked against this one
bit-for-bit, so any change here is a semantic change for all three.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyKernel"]

_INF = np.float64(np.inf)


class NumpyKernel:
    """Vectorized numpy implementations of the three hot loops."""

    name = "numpy"

    def msbfs_bitset(
        self,
        in_indptr: np.ndarray,
        in_neighbors: np.ndarray,
        in_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> None:
        """Bit-parallel multi-source constrained BFS (MS-BFS style).

        Rows are packed 64 to a ``uint64`` lane: ``frontier[v]`` holds one
        bit per row whose BFS front currently contains ``v``, and a level
        expands *every* row of a chunk with one full-arc sweep — gather
        the frontier word of each arc's source, AND it with the arc
        label's row mask, and OR-reduce per target vertex
        (``np.bitwise_or.reduceat`` over the in-arc CSR).  Per-level cost
        is therefore independent of how many rows the chunk holds, which
        is what makes wide PowCov waves cheap.  Writes levels into
        ``dist`` in place (rows already seeded with 0 at their sources).
        """
        n = num_vertices
        num_arcs = len(in_neighbors)
        if num_arcs == 0:
            return
        seg_starts = in_indptr[:-1]
        # Reduce over non-empty segments only, then scatter.  Empty
        # segments have zero width, so consecutive non-empty starts are
        # exact segment boundaries — and no reduceat index can go out of
        # range or (the subtle failure) truncate the preceding vertex's
        # arc range the way a clamped trailing start would.
        nonempty_idx = np.nonzero(in_indptr[1:] != seg_starts)[0]
        nonempty_starts = seg_starts[nonempty_idx]
        for lo in range(0, len(sources), 64):
            chunk_rows = min(64, len(sources) - lo)
            row_bits = np.uint64(1) << np.arange(chunk_rows, dtype=np.uint64)
            # ``label_bits[l]``: rows of this chunk whose mask allows ``l``.
            label_bits = (allowed[lo : lo + chunk_rows].astype(np.uint64)
                          * row_bits[:, None]).sum(axis=0)
            frontier = np.zeros(n, dtype=np.uint64)
            np.bitwise_or.at(frontier, sources[lo : lo + chunk_rows], row_bits)
            visited = frontier.copy()
            level = 0
            while True:
                level += 1
                if max_level >= 0 and level > max_level:
                    break
                contrib = frontier[in_neighbors] & label_bits[in_labels]
                reached = np.zeros(n, dtype=np.uint64)
                reached[nonempty_idx] = np.bitwise_or.reduceat(
                    contrib, nonempty_starts
                )
                new = reached & ~visited
                hit = np.nonzero(new)[0]
                if hit.size == 0:
                    break
                visited |= new
                cols = (new[hit][:, None]
                        >> np.arange(chunk_rows, dtype=np.uint64)) & np.uint64(1)
                vv, rr = np.nonzero(cols)
                dist[lo + rr, hit[vv]] = level
                frontier = new

    def msbfs_sparse(
        self,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        edge_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> bool:
        """Decline: the caller's vectorized frontier expansion IS the
        numpy sparse path (label-grouped CSR gathers + active-row
        compaction), and it needs caller-side state this protocol does not
        carry.  Returning ``False`` routes the batch there unchanged."""
        return False

    def one_removed_pass(
        self, dist: np.ndarray, prev_rows: np.ndarray, sub_rows: np.ndarray
    ) -> np.ndarray:
        """Gather each mask's one-removed rows and minimum-reduce them."""
        best = prev_rows[sub_rows[:, 0]]
        for j in range(1, sub_rows.shape[1]):
            np.minimum(best, prev_rows[sub_rows[:, j]], out=best)
        return dist < best

    def aux_dijkstra(
        self,
        weights: np.ndarray,
        ds: np.ndarray,
        dt: np.ndarray,
        best: float,
    ) -> float:
        """O(k^2) dense Dijkstra from the virtual source node.

        Initialize landmark tentative distances with the s—x edges,
        repeatedly settle the nearest landmark, relax through its
        bi-chromatic row, and keep the running best completion through
        the t—x edges.
        """
        k = len(ds)
        dist = ds.copy()
        settled = np.zeros(k, dtype=bool)
        for _ in range(k):
            dist_masked = np.where(settled, _INF, dist)
            i = int(dist_masked.argmin())
            di = dist_masked[i]
            if not np.isfinite(di) or di >= best:
                break  # every remaining completion is at least `best`
            settled[i] = True
            np.minimum(dist, di + weights[i], out=dist)
            completion = di + dt[i]
            if completion < best:
                best = completion
        return float(best)
